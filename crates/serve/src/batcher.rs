//! Dynamic request batching with backpressure and hot-swap.
//!
//! Requests land on a bounded queue. A single dispatcher coalesces up to
//! `batch_max` of them (or waits at most `batch_timeout_us` from the
//! first dequeue), then runs ONE batched forward pass and fans the rows
//! back out to the waiting callers. The MLP/CNN forward in eval mode is
//! row-independent, so each row of the batched logits is bitwise equal
//! to a single-input forward — the determinism suite asserts this.
//!
//! Hot-swap: the serving `(generation, Classifier)` pair sits behind a
//! mutex the dispatcher holds for the duration of one batch. A
//! [`Engine::rescan`] that finds a newer valid generation installs it
//! under that same mutex, so swaps land exactly on batch boundaries and
//! in-flight batches always finish on the generation they started on.
//! Generations that fail to load or decode are skipped (counter
//! `serve/generation_skipped`) and the engine keeps serving the last
//! valid one.
//!
//! Backpressure: when the queue holds `queue_cap` requests,
//! [`Engine::submit`] fails fast with [`ServeError::Rejected`] — the
//! caller maps that to HTTP 503. Nothing is dropped silently.

use crate::error::ServeError;
use crate::model::ServedModel;
use crate::protocol::{PredictRequest, PredictResponse};
use crate::stats::{StatsRegistry, StatsSnapshot};
use simpadv_nn::{Classifier, GradientModel};
use simpadv_resilience::CheckpointStore;
use simpadv_tensor::Tensor;
use simpadv_trace::clock::WallTimer;
use simpadv_trace::{FieldValue, TraceContext};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Batching and backpressure knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest coalesced batch.
    pub batch_max: usize,
    /// Longest the dispatcher waits (µs) to fill a batch once the first
    /// request of the batch has been dequeued.
    pub batch_timeout_us: u64,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { batch_max: 16, batch_timeout_us: 500, queue_cap: 64 }
    }
}

/// Outcome of one [`Engine::rescan`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SwapReport {
    /// Generation installed by this rescan, if any.
    pub installed: Option<u64>,
    /// Newer generations skipped because they failed to load/decode.
    pub skipped: u64,
}

/// One response slot a submitting thread parks on.
struct ResponseSlot {
    result: Mutex<Option<Result<PredictResponse, ServeError>>>,
    ready: Condvar,
}

/// A queued request plus where to deliver its answer.
struct Pending {
    request: PredictRequest,
    timer: WallTimer,
    slot: std::sync::Arc<ResponseSlot>,
    /// Caller's trace context (from `X-Simpadv-Traceparent`), carried
    /// through coalescing so the request span opens under the remote
    /// parent even though a dispatcher thread executes it.
    remote: Option<TraceContext>,
}

/// Locks a mutex, recovering from poisoning: the engine's shared state
/// is monotonic counters and a replaceable model, both safe to reuse.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The batching inference engine. Shared between the listener threads
/// (submitting), the dispatcher (coalescing + forward), and the
/// checkpoint watcher (rescans).
pub struct Engine {
    cfg: BatchConfig,
    store: CheckpointStore,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    model: Mutex<(u64, Classifier)>,
    current_gen: AtomicU64,
    method: Mutex<String>,
    input_len: usize,
    stop: AtomicBool,
    stats: StatsRegistry,
    progress: Mutex<()>,
    progress_cv: Condvar,
}

impl Engine {
    /// Opens the engine on a checkpoint store, loading the newest
    /// servable generation.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModel`] when the store holds no valid
    /// generation, [`ServeError::Persist`] on store failures.
    pub fn new(store: CheckpointStore, cfg: BatchConfig) -> Result<Self, ServeError> {
        let (generation, served) = crate::model::load_latest_servable(&store)?;
        let clf = served.restore()?;
        Ok(Engine {
            cfg,
            store,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            model: Mutex::new((generation, clf)),
            current_gen: AtomicU64::new(generation),
            method: Mutex::new(served.method),
            input_len: simpadv_data::IMAGE_PIXELS,
            stop: AtomicBool::new(false),
            stats: StatsRegistry::new(),
            progress: Mutex::new(()),
            progress_cv: Condvar::new(),
        })
    }

    /// Batching configuration this engine runs with.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Generation currently serving new batches.
    pub fn current_generation(&self) -> u64 {
        self.current_gen.load(Ordering::SeqCst)
    }

    /// Training method of the serving model (for `/healthz`).
    pub fn method(&self) -> String {
        lock(&self.method).clone()
    }

    /// Expected pixel count per request.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Statistics snapshot (latency percentiles, per-generation
    /// accuracy, occupancy).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// True once [`Engine::shutdown`] has been called.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Submits one request and blocks until its answer is ready.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the queue is at capacity (the
    /// request was NOT enqueued), [`ServeError::BadRequest`] on a wrong
    /// pixel count, [`ServeError::ShuttingDown`] during drain.
    pub fn submit(&self, request: PredictRequest) -> Result<PredictResponse, ServeError> {
        self.submit_traced(request, None)
    }

    /// [`Engine::submit`] with the caller's propagated trace context
    /// attached: the answered request's `serve/request` span opens under
    /// `remote` instead of the server's own span chain, stitching the
    /// request into the caller's campaign tree.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::submit`].
    pub fn submit_traced(
        &self,
        request: PredictRequest,
        remote: Option<TraceContext>,
    ) -> Result<PredictResponse, ServeError> {
        self.validate(&request)?;
        let slot =
            std::sync::Arc::new(ResponseSlot { result: Mutex::new(None), ready: Condvar::new() });
        {
            let mut q = lock(&self.queue);
            if self.stopping() {
                return Err(ServeError::ShuttingDown);
            }
            if q.len() >= self.cfg.queue_cap {
                drop(q);
                self.stats.record_rejected();
                self.notify_progress();
                return Err(ServeError::Rejected { capacity: self.cfg.queue_cap });
            }
            q.push_back(Pending {
                request,
                timer: WallTimer::start(),
                slot: std::sync::Arc::clone(&slot),
                remote,
            });
        }
        self.queue_cv.notify_all();
        let mut result = lock(&slot.result);
        loop {
            if let Some(outcome) = result.take() {
                return outcome;
            }
            result = match slot.ready.wait(result) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Runs batches synchronously over already-validated requests,
    /// bypassing the queue: used by tests and the determinism suite to
    /// drive the exact batch path without timing.
    ///
    /// Requests are processed in order, `batch_max` at a time, emitting
    /// the same trace events and stats the dispatcher would.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] if any request fails validation (no
    /// work is done in that case).
    pub fn infer_batch(
        &self,
        requests: &[PredictRequest],
    ) -> Result<Vec<PredictResponse>, ServeError> {
        for request in requests {
            self.validate(request)?;
        }
        let mut out = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(self.cfg.batch_max.max(1)) {
            let timers: Vec<WallTimer> = chunk.iter().map(|_| WallTimer::start()).collect();
            let remotes = vec![None; chunk.len()];
            out.extend(self.forward_batch(chunk, &timers, &remotes));
        }
        Ok(out)
    }

    /// The dispatcher loop: coalesce, forward, deliver. Returns once
    /// [`Engine::shutdown`] has been called and the queue is drained.
    pub fn run_dispatch(&self) {
        loop {
            let first = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(p) = q.pop_front() {
                        break p;
                    }
                    if self.stopping() {
                        return;
                    }
                    q = match self.queue_cv.wait(q) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            };
            let batch = self.coalesce(first);
            self.dispatch(batch);
            self.notify_progress();
        }
    }

    /// Blocks until `target` requests have been answered (used by the
    /// CLI's `--requests` exit condition and by tests). Progress is
    /// signalled by the dispatcher; the periodic timeout guards against
    /// a missed wakeup.
    pub fn wait_served(&self, target: u64) {
        let mut guard = lock(&self.progress);
        while self.stats.served() < target && !self.stopping() {
            guard = match self.progress_cv.wait_timeout(guard, Duration::from_millis(50)) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Initiates shutdown: new submissions fail, the dispatcher drains
    /// the queue and exits, waiters are woken.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        self.notify_progress();
        // Fail any requests still queued after the dispatcher exits;
        // run_dispatch drains before honoring stop, so this only fires
        // for submissions that raced the flag.
        let drained: Vec<Pending> = lock(&self.queue).drain(..).collect();
        for pending in drained {
            deliver(&pending.slot, Err(ServeError::ShuttingDown));
        }
    }

    /// Rescans the checkpoint store for generations newer than the one
    /// currently serving; installs the newest valid one at a batch
    /// boundary. Unreadable generations increment the
    /// `serve/generation_skipped` counter and are never retried at a
    /// lower priority than a valid newer generation.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when the store cannot be listed.
    pub fn rescan(&self) -> Result<SwapReport, ServeError> {
        let current = self.current_generation();
        let mut gens = self.store.generations()?;
        gens.retain(|g| *g > current);
        gens.reverse();
        let mut skipped = 0u64;
        for gen in gens {
            let loaded = self
                .store
                .load(gen)
                .map_err(ServeError::from)
                .and_then(|payload| ServedModel::decode(&payload))
                .and_then(|served| {
                    let clf = served.restore()?;
                    Ok((clf, served.method))
                });
            match loaded {
                Ok((clf, method)) => {
                    {
                        let mut model = lock(&self.model);
                        *model = (gen, clf);
                    }
                    self.current_gen.store(gen, Ordering::SeqCst);
                    *lock(&self.method) = method;
                    self.stats.record_swapped_generation();
                    simpadv_trace::counter_with(
                        "serve/generation_swapped",
                        1,
                        &[("generation", FieldValue::U64(gen))],
                    );
                    return Ok(SwapReport { installed: Some(gen), skipped });
                }
                Err(_) => {
                    skipped += 1;
                    self.stats.record_skipped_generation();
                    simpadv_trace::counter_with(
                        "serve/generation_skipped",
                        1,
                        &[("generation", FieldValue::U64(gen))],
                    );
                }
            }
        }
        Ok(SwapReport { installed: None, skipped })
    }

    fn validate(&self, request: &PredictRequest) -> Result<(), ServeError> {
        if request.pixels.len() != self.input_len {
            return Err(ServeError::BadRequest(format!(
                "expected {} pixels, got {}",
                self.input_len,
                request.pixels.len()
            )));
        }
        if request.pixels.iter().any(|p| !p.is_finite()) {
            return Err(ServeError::BadRequest("pixels must be finite".to_string()));
        }
        Ok(())
    }

    /// Pulls more work until the batch is full or the timeout from the
    /// first dequeue expires.
    fn coalesce(&self, first: Pending) -> Vec<Pending> {
        let window = WallTimer::start();
        let mut batch = vec![first];
        let mut q = lock(&self.queue);
        while batch.len() < self.cfg.batch_max {
            if let Some(p) = q.pop_front() {
                batch.push(p);
                continue;
            }
            if self.stopping() {
                break;
            }
            let elapsed = window.elapsed_us();
            if elapsed >= self.cfg.batch_timeout_us {
                break;
            }
            let remaining = Duration::from_micros(self.cfg.batch_timeout_us - elapsed);
            q = match self.queue_cv.wait_timeout(q, remaining) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        batch
    }

    /// Runs one coalesced batch and delivers every answer.
    fn dispatch(&self, batch: Vec<Pending>) {
        let requests: Vec<PredictRequest> = batch.iter().map(|p| p.request.clone()).collect();
        let timers: Vec<WallTimer> = batch.iter().map(|p| p.timer).collect();
        let remotes: Vec<Option<TraceContext>> = batch.iter().map(|p| p.remote).collect();
        let responses = self.forward_batch(&requests, &timers, &remotes);
        for (pending, response) in batch.into_iter().zip(responses) {
            deliver(&pending.slot, Ok(response));
        }
    }

    /// One batched forward pass plus per-request accounting. The model
    /// mutex is held across the forward, so a concurrent rescan can only
    /// install a new generation between batches.
    fn forward_batch(
        &self,
        requests: &[PredictRequest],
        timers: &[WallTimer],
        remotes: &[Option<TraceContext>],
    ) -> Vec<PredictResponse> {
        let n = requests.len();
        let mut pixels = Vec::with_capacity(n * self.input_len);
        for request in requests {
            pixels.extend_from_slice(&request.pixels);
        }
        let x = Tensor::from_vec(pixels, &[n, self.input_len]);
        let mut model = lock(&self.model);
        let (generation, clf) = &mut *model;
        let generation = *generation;
        let span = simpadv_trace::span!("serve/batch", generation = generation, size = n as u64);
        let logits = clf.logits(&x);
        drop(span);
        drop(model);
        let predictions = logits.argmax_rows();
        self.stats.record_batch(n);
        simpadv_trace::observe("serve/batch_occupancy", n as f64);
        let mut out = Vec::with_capacity(n);
        for (i, request) in requests.iter().enumerate() {
            let prediction = predictions[i];
            let row = logits.row(i).into_vec();
            let correct = request.label.map(|l| l == prediction);
            // Opened via span_with_remote so a propagated client
            // context re-parents the span under the caller; without a
            // remote this is identical to the span! macro.
            let request_span = simpadv_trace::span_with_remote(
                "serve/request",
                vec![
                    ("generation".to_string(), FieldValue::U64(generation)),
                    ("adversarial".to_string(), FieldValue::Bool(request.adversarial)),
                    ("prediction".to_string(), FieldValue::U64(prediction as u64)),
                ],
                remotes.get(i).copied().flatten(),
            );
            drop(request_span);
            let mut fields: Vec<(&str, FieldValue)> = vec![
                ("generation", FieldValue::U64(generation)),
                ("adversarial", FieldValue::Bool(request.adversarial)),
            ];
            if let Some(label) = request.label {
                fields.push(("label", FieldValue::U64(label as u64)));
            }
            simpadv_trace::counter_with("serve/served", 1, &fields);
            if correct == Some(true) {
                simpadv_trace::counter_with("serve/correct", 1, &fields);
            }
            self.stats.record_request(
                generation,
                request.adversarial,
                request.label,
                prediction,
                timers[i].elapsed_us(),
            );
            out.push(PredictResponse { prediction, logits: row, generation });
        }
        out
    }

    fn notify_progress(&self) {
        drop(lock(&self.progress));
        self.progress_cv.notify_all();
    }
}

/// Places an outcome in a slot and wakes its waiter.
fn deliver(slot: &ResponseSlot, outcome: Result<PredictResponse, ServeError>) {
    let mut result = lock(&slot.result);
    *result = Some(outcome);
    drop(result);
    slot.ready.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServedModel;
    use simpadv::ModelSpec;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("simpadv-serve-batcher-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    fn publish_tiny(store: &CheckpointStore, seed: u64) -> u64 {
        let spec = ModelSpec::small_mlp();
        let clf = spec.build(seed);
        ServedModel::capture(&spec, &clf, "mnist", "test").publish(store).unwrap()
    }

    fn clean_request(seed: u64) -> PredictRequest {
        let pixels = (0..simpadv_data::IMAGE_PIXELS)
            .map(|i| (((i as u64 * 31 + seed * 7) % 255) as f32) / 255.0)
            .collect();
        PredictRequest { pixels, label: Some((seed % 10) as usize), adversarial: false }
    }

    #[test]
    fn engine_refuses_to_start_without_a_model() {
        let store = temp_store("empty");
        let err = Engine::new(store, BatchConfig::default())
            .err()
            .expect("engine must refuse an empty store");
        assert!(matches!(err, ServeError::NoModel(_)), "{err}");
    }

    #[test]
    fn wrong_pixel_count_is_a_bad_request() {
        let store = temp_store("validate");
        publish_tiny(&store, 1);
        let engine = Engine::new(store, BatchConfig::default()).unwrap();
        let bad = PredictRequest { pixels: vec![0.0; 3], label: None, adversarial: false };
        let err = engine.infer_batch(&[bad]).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }

    #[test]
    fn batched_rows_match_single_request_inference() {
        let store = temp_store("rows");
        publish_tiny(&store, 2);
        let engine = Engine::new(store, BatchConfig::default()).unwrap();
        let requests: Vec<PredictRequest> = (0..5).map(clean_request).collect();
        let batched = engine.infer_batch(&requests).unwrap();
        for (i, request) in requests.iter().enumerate() {
            let single = engine.infer_batch(std::slice::from_ref(request)).unwrap();
            assert_eq!(single[0].prediction, batched[i].prediction);
            let a: Vec<u32> = single[0].logits.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = batched[i].logits.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "row {i} must be bitwise identical");
        }
    }

    #[test]
    fn rescan_installs_newer_generation_and_reports_it() {
        let store = temp_store("swap");
        let dir = store.dir().to_path_buf();
        publish_tiny(&store, 3);
        let engine = Engine::new(store, BatchConfig::default()).unwrap();
        let g1 = engine.current_generation();
        let publisher = CheckpointStore::open(dir).unwrap();
        let g2 = publish_tiny(&publisher, 4);
        assert!(g2 > g1);
        let report = engine.rescan().unwrap();
        assert_eq!(report, SwapReport { installed: Some(g2), skipped: 0 });
        assert_eq!(engine.current_generation(), g2);
        // A second rescan with nothing new is a no-op.
        let report = engine.rescan().unwrap();
        assert_eq!(report, SwapReport { installed: None, skipped: 0 });
    }

    #[test]
    fn responses_carry_the_serving_generation() {
        let store = temp_store("gen-tag");
        publish_tiny(&store, 5);
        let engine = Engine::new(store, BatchConfig::default()).unwrap();
        let out = engine.infer_batch(&[clean_request(0)]).unwrap();
        assert_eq!(out[0].generation, engine.current_generation());
        let snap = engine.stats();
        assert_eq!(snap.served, 1);
        assert_eq!(snap.batch_occupancy.batches, 1);
        assert_eq!(snap.batch_occupancy.max, 1);
    }
}
