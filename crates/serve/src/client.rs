//! A blocking HTTP client for the serve endpoints.
//!
//! This is the ONLY sanctioned way for other crates (the load
//! generator, integration tests, the CLI) to talk to the server: rule
//! R11 confines `std::net` to `crates/serve`, so everything else takes
//! a `&str` address and calls through here. Each call opens a fresh
//! connection — at this project's scale connection reuse would only
//! complicate the failure modes.

use crate::batcher::SwapReport;
use crate::error::ServeError;
use crate::protocol::{
    read_response, write_request, HealthBody, HttpResponse, PredictRequest, PredictResponse,
    RejectBody,
};
use crate::stats::StatsSnapshot;
use simpadv_trace::clock::WallTimer;
use std::io::BufReader;
use std::net::TcpStream;

/// Outcome of a predict call that reached the server.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictOutcome {
    /// The request was answered.
    Predicted(PredictResponse),
    /// The request was shed by backpressure (HTTP 503).
    Rejected(RejectBody),
}

/// Submits one inference request.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures, [`ServeError::BadRequest`]
/// when the server answered 400, [`ServeError::Persist`] never (kept in
/// the shared error type for uniformity).
pub fn predict(addr: &str, request: &PredictRequest) -> Result<PredictOutcome, ServeError> {
    let body = serde_json::to_string(request)
        .map_err(|e| ServeError::BadRequest(format!("encode request: {e}")))?;
    let response = roundtrip(addr, "POST", "/predict", &body)?;
    match response.status {
        200 => Ok(PredictOutcome::Predicted(parse_body(&response)?)),
        503 => Ok(PredictOutcome::Rejected(parse_body(&response)?)),
        status => Err(status_error(status, &response)),
    }
}

/// Probes `/healthz`.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers.
pub fn healthz(addr: &str) -> Result<HealthBody, ServeError> {
    let response = roundtrip(addr, "GET", "/healthz", "")?;
    match response.status {
        200 => parse_body(&response),
        status => Err(status_error(status, &response)),
    }
}

/// Fetches the `/stats` snapshot.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers.
pub fn stats(addr: &str) -> Result<StatsSnapshot, ServeError> {
    let response = roundtrip(addr, "GET", "/stats", "")?;
    match response.status {
        200 => parse_body(&response),
        status => Err(status_error(status, &response)),
    }
}

/// Fetches the `/metrics` Prometheus text exposition.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers,
/// [`ServeError::BadRequest`] on a non-UTF-8 body.
pub fn metrics(addr: &str) -> Result<String, ServeError> {
    let response = roundtrip(addr, "GET", "/metrics", "")?;
    match response.status {
        200 => String::from_utf8(response.body)
            .map_err(|e| ServeError::BadRequest(format!("non-UTF-8 metrics body: {e}"))),
        status => Err(status_error(status, &response)),
    }
}

/// Triggers a checkpoint rescan via `/rescan`.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers.
pub fn rescan(addr: &str) -> Result<SwapReport, ServeError> {
    let response = roundtrip(addr, "POST", "/rescan", "")?;
    match response.status {
        200 => parse_body(&response),
        status => Err(status_error(status, &response)),
    }
}

/// Retries `/healthz` until the server answers or `timeout_us` of wall
/// time elapses. Useful right after spawning a server whose bound
/// address was just learned.
///
/// # Errors
///
/// [`ServeError::Io`] when the deadline passes without a healthy
/// answer.
pub fn wait_ready(addr: &str, timeout_us: u64) -> Result<HealthBody, ServeError> {
    let timer = WallTimer::start();
    let mut last;
    loop {
        match healthz(addr) {
            Ok(body) => return Ok(body),
            Err(e) => last = e.to_string(),
        }
        if timer.elapsed_us() > timeout_us {
            return Err(ServeError::Io(format!("server at {addr} not ready: {last}")));
        }
    }
}

/// One request/response exchange on a fresh connection.
fn roundtrip(addr: &str, method: &str, path: &str, body: &str) -> Result<HttpResponse, ServeError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ServeError::Io(format!("connect {addr}: {e}")))?;
    let mut writer =
        stream.try_clone().map_err(|e| ServeError::Io(format!("clone stream: {e}")))?;
    write_request(&mut writer, method, path, body.as_bytes())
        .map_err(|e| ServeError::Io(format!("write: {e}")))?;
    read_response(&mut BufReader::new(stream))
}

/// Deserializes a JSON body into the expected type.
fn parse_body<T: serde::Deserialize>(response: &HttpResponse) -> Result<T, ServeError> {
    let text = std::str::from_utf8(&response.body)
        .map_err(|e| ServeError::BadRequest(format!("non-UTF-8 body: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ServeError::BadRequest(format!("unexpected body {text:?}: {e}")))
}

/// Maps an unexpected status to an error carrying the server's detail.
fn status_error(status: u16, response: &HttpResponse) -> ServeError {
    let detail = String::from_utf8_lossy(&response.body).to_string();
    match status {
        400 => ServeError::BadRequest(detail),
        _ => ServeError::Io(format!("unexpected status {status}: {detail}")),
    }
}
