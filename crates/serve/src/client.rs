//! A blocking HTTP client for the serve endpoints.
//!
//! This is the ONLY sanctioned way for other crates (the load
//! generator, integration tests, the CLI) to talk to the server: rule
//! R11 confines `std::net` to `crates/serve`, so everything else takes
//! a `&str` address and calls through here. Each call opens a fresh
//! connection — at this project's scale connection reuse would only
//! complicate the failure modes.

use crate::batcher::SwapReport;
use crate::error::ServeError;
use crate::protocol::{
    read_response, write_request_traced, HealthBody, HttpResponse, PredictRequest, PredictResponse,
    RejectBody,
};
use crate::stats::StatsSnapshot;
use simpadv_resilience::BackoffPolicy;
use simpadv_trace::clock::WallTimer;
use std::io::BufReader;
use std::net::TcpStream;

/// Outcome of a predict call that reached the server.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictOutcome {
    /// The request was answered.
    Predicted(PredictResponse),
    /// The request was shed by backpressure (HTTP 503).
    Rejected(RejectBody),
}

/// How [`predict_with_retry`] paces itself between 503 rejections.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries) before giving up.
    pub max_attempts: u32,
    /// Capped exponential backoff with deterministic seeded jitter
    /// (the workspace-shared [`BackoffPolicy`]).
    pub backoff: BackoffPolicy,
    /// Jitter seed; give each client its own so a rejected cohort does
    /// not retry in lockstep, while any one client's schedule stays
    /// reproducible.
    pub seed: u64,
    /// Estimated per-request service time. Multiplied by the reject
    /// body's `queue_capacity` hint it approximates a full-queue drain
    /// time, which floors the wait (see [`retry_delay_us`]).
    pub slot_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 5, backoff: BackoffPolicy::default(), seed: 0, slot_us: 500 }
    }
}

/// The wait before 0-based retry `retry`: the seeded backoff delay,
/// floored by the server's sizing hint — a 503's `queue_capacity` times
/// [`RetryPolicy::slot_us`] approximates how long the server needs to
/// drain a full queue, so retrying sooner than that mostly buys another
/// rejection. The hint is clamped to the backoff cap so the schedule
/// stays bounded whatever the server claims.
pub fn retry_delay_us(policy: &RetryPolicy, reject: &RejectBody, retry: u32) -> u64 {
    let backoff = policy.backoff.delay_us(policy.seed, retry);
    let hint = reject.queue_capacity.saturating_mul(policy.slot_us).min(policy.backoff.cap_us);
    backoff.max(hint)
}

/// Submits one inference request, retrying bounded-many times with
/// backoff when the server sheds it with a 503.
///
/// Only backpressure rejections are retried: connection and protocol
/// failures surface immediately, because they are not the transient
/// signal the reject body explicitly encodes.
///
/// # Errors
///
/// [`ServeError::Rejected`] when every attempt was shed (carrying the
/// last hinted queue capacity); any non-503 failure is propagated
/// unchanged from [`predict`].
pub fn predict_with_retry(
    addr: &str,
    request: &PredictRequest,
    policy: &RetryPolicy,
) -> Result<PredictResponse, ServeError> {
    let mut attempt = 0u32;
    loop {
        match predict(addr, request)? {
            PredictOutcome::Predicted(response) => return Ok(response),
            PredictOutcome::Rejected(reject) => {
                attempt += 1;
                if attempt >= policy.max_attempts.max(1) {
                    return Err(ServeError::Rejected { capacity: reject.queue_capacity as usize });
                }
                let delay_us = retry_delay_us(policy, &reject, attempt - 1);
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
            }
        }
    }
}

/// Submits one inference request.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures, [`ServeError::BadRequest`]
/// when the server answered 400, [`ServeError::Persist`] never (kept in
/// the shared error type for uniformity).
pub fn predict(addr: &str, request: &PredictRequest) -> Result<PredictOutcome, ServeError> {
    let body = serde_json::to_string(request)
        .map_err(|e| ServeError::BadRequest(format!("encode request: {e}")))?;
    // When the caller is inside a traced span, the request carries its
    // context so the server-side request span hangs under it in the
    // assembled campaign tree. Uncorrelated callers add no header.
    let traceparent = simpadv_trace::current_context().map(|ctx| ctx.encode());
    let response = roundtrip(addr, "POST", "/predict", traceparent.as_deref(), &body)?;
    match response.status {
        200 => Ok(PredictOutcome::Predicted(parse_body(&response)?)),
        503 => Ok(PredictOutcome::Rejected(parse_body(&response)?)),
        status => Err(status_error(status, &response)),
    }
}

/// Probes `/healthz`.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers.
pub fn healthz(addr: &str) -> Result<HealthBody, ServeError> {
    let response = roundtrip(addr, "GET", "/healthz", None, "")?;
    match response.status {
        200 => parse_body(&response),
        status => Err(status_error(status, &response)),
    }
}

/// Fetches the `/stats` snapshot.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers.
pub fn stats(addr: &str) -> Result<StatsSnapshot, ServeError> {
    let response = roundtrip(addr, "GET", "/stats", None, "")?;
    match response.status {
        200 => parse_body(&response),
        status => Err(status_error(status, &response)),
    }
}

/// Fetches the `/metrics` Prometheus text exposition.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers,
/// [`ServeError::BadRequest`] on a non-UTF-8 body.
pub fn metrics(addr: &str) -> Result<String, ServeError> {
    let response = roundtrip(addr, "GET", "/metrics", None, "")?;
    match response.status {
        200 => String::from_utf8(response.body)
            .map_err(|e| ServeError::BadRequest(format!("non-UTF-8 metrics body: {e}"))),
        status => Err(status_error(status, &response)),
    }
}

/// Triggers a checkpoint rescan via `/rescan`.
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures or non-200 answers.
pub fn rescan(addr: &str) -> Result<SwapReport, ServeError> {
    let response = roundtrip(addr, "POST", "/rescan", None, "")?;
    match response.status {
        200 => parse_body(&response),
        status => Err(status_error(status, &response)),
    }
}

/// Retries `/healthz` until the server answers or `timeout_us` of wall
/// time elapses. Useful right after spawning a server whose bound
/// address was just learned.
///
/// # Errors
///
/// [`ServeError::Io`] when the deadline passes without a healthy
/// answer.
pub fn wait_ready(addr: &str, timeout_us: u64) -> Result<HealthBody, ServeError> {
    let timer = WallTimer::start();
    let mut last;
    loop {
        match healthz(addr) {
            Ok(body) => return Ok(body),
            Err(e) => last = e.to_string(),
        }
        if timer.elapsed_us() > timeout_us {
            return Err(ServeError::Io(format!("server at {addr} not ready: {last}")));
        }
    }
}

/// One request/response exchange on a fresh connection.
fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    traceparent: Option<&str>,
    body: &str,
) -> Result<HttpResponse, ServeError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ServeError::Io(format!("connect {addr}: {e}")))?;
    let mut writer =
        stream.try_clone().map_err(|e| ServeError::Io(format!("clone stream: {e}")))?;
    write_request_traced(&mut writer, method, path, traceparent, body.as_bytes())
        .map_err(|e| ServeError::Io(format!("write: {e}")))?;
    read_response(&mut BufReader::new(stream))
}

/// Deserializes a JSON body into the expected type.
fn parse_body<T: serde::Deserialize>(response: &HttpResponse) -> Result<T, ServeError> {
    let text = std::str::from_utf8(&response.body)
        .map_err(|e| ServeError::BadRequest(format!("non-UTF-8 body: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ServeError::BadRequest(format!("unexpected body {text:?}: {e}")))
}

/// Maps an unexpected status to an error carrying the server's detail.
fn status_error(status: u16, response: &HttpResponse) -> ServeError {
    let detail = String::from_utf8_lossy(&response.body).to_string();
    match status {
        400 => ServeError::BadRequest(detail),
        _ => ServeError::Io(format!("unexpected status {status}: {detail}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reject(capacity: u64) -> RejectBody {
        RejectBody { error: "queue_full".into(), queue_capacity: capacity }
    }

    #[test]
    fn retry_delays_are_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 6,
            backoff: BackoffPolicy::new(1_000, 64_000),
            seed: 7,
            slot_us: 100,
        };
        let a: Vec<u64> = (0..8).map(|r| retry_delay_us(&policy, &reject(4), r)).collect();
        let b: Vec<u64> = (0..8).map(|r| retry_delay_us(&policy, &reject(4), r)).collect();
        assert_eq!(a, b, "same policy and seed, same schedule");
        assert!(a.iter().all(|d| *d <= 64_000), "cap bounds every delay: {a:?}");
        assert!(a[0] >= 1_000, "never below the base");
        for w in a.windows(2) {
            assert!(w[1] >= w[0], "monotone: {a:?}");
        }
    }

    #[test]
    fn queue_capacity_hint_floors_the_early_delays() {
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff: BackoffPolicy::new(100, 1_000_000).with_jitter_permille(0),
            seed: 0,
            slot_us: 1_000,
        };
        // a 64-deep queue hints a 64ms drain, dominating the 100us backoff
        assert_eq!(retry_delay_us(&policy, &reject(64), 0), 64_000);
        // no hint: pure backoff
        assert_eq!(retry_delay_us(&policy, &reject(0), 0), 100);
        // the hint is clamped to the cap, whatever the server claims
        assert_eq!(retry_delay_us(&policy, &reject(u64::MAX), 0), 1_000_000);
        // once the exponential outgrows the hint, backoff wins again
        assert!(retry_delay_us(&policy, &reject(64), 12) > 64_000);
    }

    #[test]
    fn different_seeds_decorrelate_retry_storms() {
        let policy = |seed| RetryPolicy {
            max_attempts: 3,
            backoff: BackoffPolicy::new(10_000, 10_000_000),
            seed,
            slot_us: 0,
        };
        let a: Vec<u64> = (0..6).map(|r| retry_delay_us(&policy(1), &reject(0), r)).collect();
        let b: Vec<u64> = (0..6).map(|r| retry_delay_us(&policy(2), &reject(0), r)).collect();
        assert_ne!(a, b, "clients with different seeds must not retry in lockstep");
    }
}
