//! Server-side statistics: latency percentiles, batch occupancy, and
//! per-generation clean-vs-adversarial accuracy counters.
//!
//! Wall-clock quantities (latencies, throughput) live here and in the
//! benchmark artifact's `meta` section — never in the logical trace
//! stream, whose events must be identical across thread counts and
//! machines. Logical quantities (request/correct counts per generation
//! and traffic class) are mirrored into `crates/trace` counters by the
//! batch engine.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning (a panicked holder cannot
/// corrupt these monotonic counters in a way worth propagating).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Debug, Default, Clone)]
struct ClassCounts {
    requests: u64,
    labeled: u64,
    correct: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    per_gen: BTreeMap<(u64, bool), ClassCounts>,
    latencies_us: Vec<u64>,
    occupancies: Vec<u64>,
    served: u64,
    rejected: u64,
    skipped_generations: u64,
    swapped_generations: u64,
}

/// Thread-safe registry the batch engine reports into.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    inner: Mutex<StatsInner>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Records one completed request.
    pub fn record_request(
        &self,
        generation: u64,
        adversarial: bool,
        label: Option<usize>,
        prediction: usize,
        latency_us: u64,
    ) {
        let mut inner = lock(&self.inner);
        inner.served += 1;
        inner.latencies_us.push(latency_us);
        let counts = inner.per_gen.entry((generation, adversarial)).or_default();
        counts.requests += 1;
        if let Some(label) = label {
            counts.labeled += 1;
            if label == prediction {
                counts.correct += 1;
            }
        }
    }

    /// Records the occupancy of one dispatched batch.
    pub fn record_batch(&self, occupancy: usize) {
        lock(&self.inner).occupancies.push(occupancy as u64);
    }

    /// Records one backpressure rejection.
    pub fn record_rejected(&self) {
        lock(&self.inner).rejected += 1;
    }

    /// Records one generation skipped because it failed to load/decode.
    pub fn record_skipped_generation(&self) {
        lock(&self.inner).skipped_generations += 1;
    }

    /// Records one successful hot swap.
    pub fn record_swapped_generation(&self) {
        lock(&self.inner).swapped_generations += 1;
    }

    /// Number of requests answered so far.
    pub fn served(&self) -> u64 {
        lock(&self.inner).served
    }

    /// Takes a consistent snapshot with derived percentiles.
    pub fn snapshot(&self) -> StatsSnapshot {
        let inner = lock(&self.inner);
        let mut generations: Vec<GenerationClassStats> = Vec::new();
        for ((generation, adversarial), counts) in &inner.per_gen {
            generations.push(GenerationClassStats {
                generation: *generation,
                traffic: if *adversarial { "adversarial" } else { "clean" }.to_string(),
                requests: counts.requests,
                labeled: counts.labeled,
                correct: counts.correct,
            });
        }
        StatsSnapshot {
            served: inner.served,
            rejected: inner.rejected,
            skipped_generations: inner.skipped_generations,
            swapped_generations: inner.swapped_generations,
            generations,
            latency_us: LatencySummary::from_samples(&inner.latencies_us),
            batch_occupancy: OccupancySummary::from_samples(&inner.occupancies),
        }
    }
}

/// Accuracy counters for one (generation, traffic-class) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationClassStats {
    /// Checkpoint generation that answered these requests.
    pub generation: u64,
    /// `"clean"` or `"adversarial"`.
    pub traffic: String,
    /// Requests answered.
    pub requests: u64,
    /// Requests that carried a ground-truth label.
    pub labeled: u64,
    /// Labeled requests predicted correctly.
    pub correct: u64,
}

/// Latency percentiles over all answered requests (wall-clock; lives in
/// `meta` sections only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// 50th percentile, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Worst observed, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Computes percentiles from raw microsecond samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary { count: 0, p50_us: 0, p90_us: 0, p99_us: 0, max_us: 0 };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        LatencySummary {
            count: sorted.len() as u64,
            p50_us: percentile(&sorted, 0.50),
            p90_us: percentile(&sorted, 0.90),
            p99_us: percentile(&sorted, 0.99),
            max_us: *sorted.last().unwrap_or(&0),
        }
    }
}

/// Batch-occupancy summary: how full the coalesced batches ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancySummary {
    /// Number of dispatched batches.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean: f64,
    /// Largest batch dispatched.
    pub max: u64,
}

impl OccupancySummary {
    /// Summarizes raw per-batch occupancy samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return OccupancySummary { batches: 0, mean: 0.0, max: 0 };
        }
        let total: u64 = samples.iter().sum();
        OccupancySummary {
            batches: samples.len() as u64,
            mean: total as f64 / samples.len() as f64,
            max: *samples.iter().max().unwrap_or(&0),
        }
    }
}

/// Nearest-rank percentile over a pre-sorted sample vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A point-in-time view of the registry, served on `/stats` and folded
/// into `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests answered.
    pub served: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Generations skipped as unreadable during rescans.
    pub skipped_generations: u64,
    /// Successful hot swaps since startup.
    pub swapped_generations: u64,
    /// Per-(generation, traffic) accuracy counters.
    pub generations: Vec<GenerationClassStats>,
    /// Request latency percentiles (wall-clock).
    pub latency_us: LatencySummary,
    /// Batch fullness.
    pub batch_occupancy: OccupancySummary,
}

impl StatsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), served on `GET /metrics`.
    ///
    /// Counters mirror the JSON `/stats` fields one-to-one; the
    /// per-(generation, traffic) cells become labeled series so a
    /// scraper can graph clean-vs-adversarial accuracy across hot
    /// swaps without parsing JSON. Latency quantiles are exported as a
    /// pre-aggregated `summary` — they are wall-clock numbers and stay
    /// out of the logical trace stream just like the JSON form.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("simpadv_serve_requests_total", "Requests answered.", self.served);
        counter(
            "simpadv_serve_rejected_total",
            "Requests shed by queue backpressure.",
            self.rejected,
        );
        counter(
            "simpadv_serve_skipped_generations_total",
            "Checkpoint generations skipped as unreadable.",
            self.skipped_generations,
        );
        counter(
            "simpadv_serve_swapped_generations_total",
            "Successful checkpoint hot swaps.",
            self.swapped_generations,
        );

        for (name, help, pick) in [
            (
                "simpadv_serve_generation_requests_total",
                "Requests answered per (generation, traffic) cell.",
                &(|g: &GenerationClassStats| g.requests) as &dyn Fn(&GenerationClassStats) -> u64,
            ),
            (
                "simpadv_serve_generation_labeled_total",
                "Labeled requests per (generation, traffic) cell.",
                &|g: &GenerationClassStats| g.labeled,
            ),
            (
                "simpadv_serve_generation_correct_total",
                "Correctly predicted labeled requests per (generation, traffic) cell.",
                &|g: &GenerationClassStats| g.correct,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for g in &self.generations {
                let _ = writeln!(
                    out,
                    "{name}{{generation=\"{}\",traffic=\"{}\"}} {}",
                    g.generation,
                    g.traffic,
                    pick(g)
                );
            }
        }

        let lat = &self.latency_us;
        let _ = writeln!(
            out,
            "# HELP simpadv_serve_latency_us Request latency, microseconds (wall-clock)."
        );
        let _ = writeln!(out, "# TYPE simpadv_serve_latency_us summary");
        for (q, v) in [("0.5", lat.p50_us), ("0.9", lat.p90_us), ("0.99", lat.p99_us)] {
            let _ = writeln!(out, "simpadv_serve_latency_us{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "simpadv_serve_latency_us_count {}", lat.count);
        let _ = writeln!(
            out,
            "# HELP simpadv_serve_latency_us_max Worst observed request latency, microseconds."
        );
        let _ = writeln!(out, "# TYPE simpadv_serve_latency_us_max gauge");
        let _ = writeln!(out, "simpadv_serve_latency_us_max {}", lat.max_us);

        let occ = &self.batch_occupancy;
        let _ = writeln!(out, "# HELP simpadv_serve_batches_total Batches dispatched.");
        let _ = writeln!(out, "# TYPE simpadv_serve_batches_total counter");
        let _ = writeln!(out, "simpadv_serve_batches_total {}", occ.batches);
        let _ = writeln!(
            out,
            "# HELP simpadv_serve_batch_occupancy_mean Mean requests per dispatched batch."
        );
        let _ = writeln!(out, "# TYPE simpadv_serve_batch_occupancy_mean gauge");
        let _ = writeln!(out, "simpadv_serve_batch_occupancy_mean {}", occ.mean);
        let _ = writeln!(out, "# HELP simpadv_serve_batch_occupancy_max Largest batch dispatched.");
        let _ = writeln!(out, "# TYPE simpadv_serve_batch_occupancy_max gauge");
        let _ = writeln!(out, "simpadv_serve_batch_occupancy_max {}", occ.max);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_hit_known_ranks() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p90_us, 90);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn empty_registry_snapshot_is_zeroed() {
        let s = StatsRegistry::new().snapshot();
        assert_eq!(s.served, 0);
        assert_eq!(s.latency_us.count, 0);
        assert_eq!(s.batch_occupancy.batches, 0);
        assert!(s.generations.is_empty());
    }

    #[test]
    fn per_generation_accuracy_buckets_split_by_traffic() {
        let reg = StatsRegistry::new();
        reg.record_request(3, false, Some(1), 1, 10);
        reg.record_request(3, false, Some(2), 1, 20);
        reg.record_request(3, true, Some(1), 1, 30);
        reg.record_request(4, true, None, 0, 40);
        let snap = reg.snapshot();
        assert_eq!(snap.served, 4);
        assert_eq!(snap.generations.len(), 3);
        let clean3 = &snap.generations[0];
        assert_eq!((clean3.generation, clean3.traffic.as_str()), (3, "clean"));
        assert_eq!((clean3.requests, clean3.labeled, clean3.correct), (2, 2, 1));
        let adv4 = &snap.generations[2];
        assert_eq!((adv4.generation, adv4.traffic.as_str()), (4, "adversarial"));
        assert_eq!((adv4.requests, adv4.labeled, adv4.correct), (1, 0, 0));
    }

    #[test]
    fn prometheus_exposition_lists_every_series() {
        let reg = StatsRegistry::new();
        reg.record_request(3, false, Some(1), 1, 10);
        reg.record_request(3, true, Some(2), 1, 30);
        reg.record_batch(2);
        reg.record_rejected();
        reg.record_swapped_generation();
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("simpadv_serve_requests_total 2"), "{text}");
        assert!(text.contains("simpadv_serve_rejected_total 1"), "{text}");
        assert!(text.contains("simpadv_serve_swapped_generations_total 1"), "{text}");
        assert!(
            text.contains(
                "simpadv_serve_generation_requests_total{generation=\"3\",traffic=\"clean\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "simpadv_serve_generation_correct_total{generation=\"3\",traffic=\"adversarial\"} 0"
            ),
            "{text}"
        );
        assert!(text.contains("simpadv_serve_latency_us{quantile=\"0.99\"} 30"), "{text}");
        assert!(text.contains("simpadv_serve_latency_us_count 2"), "{text}");
        assert!(text.contains("simpadv_serve_batches_total 1"), "{text}");
        assert!(text.contains("simpadv_serve_batch_occupancy_mean 2"), "{text}");
        // Every non-comment line is `name[{labels}] value` — the 0.0.4
        // text format a scraper expects.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed series line: {line}");
        }
    }

    #[test]
    fn empty_snapshot_renders_valid_exposition() {
        let text = StatsRegistry::new().snapshot().to_prometheus();
        assert!(text.contains("simpadv_serve_requests_total 0"), "{text}");
        assert!(text.contains("# TYPE simpadv_serve_latency_us summary"), "{text}");
        assert!(!text.contains("generation=\""), "no per-generation series yet: {text}");
    }

    #[test]
    fn serde_round_trip_preserves_snapshot() {
        let reg = StatsRegistry::new();
        reg.record_request(1, true, Some(0), 0, 5);
        reg.record_batch(1);
        let snap = reg.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(snap, back);
    }
}
