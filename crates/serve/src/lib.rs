//! `simpadv-serve`: a batched, adversarial-aware inference service.
//!
//! The paper argues for a *cheap, deployable* single-step defense; this
//! crate is the deployment half of that claim. It serves a trained
//! classifier over plain TCP/HTTP (`std::net`, no external
//! dependencies) with three production-shaped behaviors layered on the
//! existing subsystems:
//!
//! * **Dynamic batching** ([`batcher`]) — requests coalesce on a
//!   bounded queue up to `batch_max` or `batch_timeout_us`, then run as
//!   ONE forward pass. Eval-mode forwards are row-independent, so the
//!   batched rows are bitwise identical to single-input inference (the
//!   determinism suite asserts it).
//! * **Backpressure** — a full queue rejects loudly (HTTP 503 with a
//!   typed body), never silently drops.
//! * **Hot-swap** — the server watches a
//!   [`simpadv_resilience::CheckpointStore`] directory and atomically
//!   installs newer generations at batch boundaries; unreadable
//!   generations are skipped (counter `serve/generation_skipped`) and
//!   the last valid one keeps serving.
//!
//! Requests may carry a ground-truth label and an `adversarial` flag,
//! so per-generation clean-vs-adversarial accuracy is monitored live —
//! the production mirror of Table I's offline evaluation.

pub mod batcher;
pub mod client;
pub mod error;
pub mod model;
pub mod protocol;
pub mod server;
pub mod stats;

pub use batcher::{BatchConfig, Engine, SwapReport};
pub use error::ServeError;
pub use model::{load_latest_servable, ServedModel};
pub use protocol::{HealthBody, PredictRequest, PredictResponse, RejectBody};
pub use server::{ServeConfig, Server};
pub use stats::{GenerationClassStats, LatencySummary, OccupancySummary, StatsSnapshot};
