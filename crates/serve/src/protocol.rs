//! Wire types and a minimal HTTP/1.1 framing layer.
//!
//! The server speaks just enough HTTP for curl and the load generator:
//! a request line, headers (only `Content-Length` is interpreted), and
//! an optional body. Request and response payloads are the same JSON
//! value-tree the rest of the workspace uses, so an inference response
//! round-trips `f32` logits bitwise (the JSON writer renders floats with
//! shortest-round-trip formatting).

use crate::error::ServeError;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Read, Write};

/// Upper bound on accepted request bodies; anything larger is a
/// [`ServeError::BadRequest`] before buffering.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One inference request: a flat pixel row plus optional ground truth.
///
/// `label` lets the server maintain per-generation accuracy counters;
/// `adversarial` tags which traffic class the request belongs to (the
/// load generator sets it on perturbed inputs, mirroring a deployment
/// that routes canary attack traffic through the same endpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Flattened image pixels; length must equal the model input width.
    pub pixels: Vec<f32>,
    /// Optional ground-truth class for accuracy accounting.
    pub label: Option<usize>,
    /// Whether this input was adversarially perturbed upstream.
    pub adversarial: bool,
}

/// One inference answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Argmax class under the serving generation.
    pub prediction: usize,
    /// Raw logits, bitwise as computed (floats round-trip exactly).
    pub logits: Vec<f32>,
    /// Checkpoint generation that produced this answer.
    pub generation: u64,
}

/// Body of a `503` backpressure rejection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectBody {
    /// Always `"queue_full"`.
    pub error: String,
    /// Queue capacity at the moment of rejection (retry sizing hint).
    pub queue_capacity: u64,
}

/// Body of any non-200, non-503 error answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable failure description.
    pub error: String,
}

/// Body of a `/healthz` probe answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthBody {
    /// Always `"ok"` when the listener answers at all.
    pub status: String,
    /// Currently serving checkpoint generation.
    pub generation: u64,
    /// Training method of the serving model.
    pub method: String,
}

/// Request header carrying the client's trace context (the traceparent
/// encoding of [`simpadv_trace::TraceContext`]). The server opens each
/// request span with this as its remote parent, so a traced request
/// hangs under the client's span in the assembled campaign tree.
pub const TRACEPARENT_HEADER: &str = "X-Simpadv-Traceparent";

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are not interpreted).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Raw value of [`TRACEPARENT_HEADER`], when the client sent one.
    pub traceparent: Option<String>,
}

/// A parsed HTTP response (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

/// Reads one HTTP request off a buffered stream.
///
/// Returns `Ok(None)` on a clean end-of-stream before any bytes (the
/// peer closed a keep-alive connection).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing, [`ServeError::Io`]
/// on socket failures.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<HttpRequest>, ServeError> {
    let line = match read_line(reader)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(ServeError::BadRequest(format!("malformed request line: {line:?}")));
    }
    let headers = read_headers(reader)?;
    let body = read_body(reader, headers.content_length)?;
    Ok(Some(HttpRequest { method, path, body, traceparent: headers.traceparent }))
}

/// Reads one HTTP response off a buffered stream (client side).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing, [`ServeError::Io`]
/// on socket failures or premature end-of-stream.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<HttpResponse, ServeError> {
    let line = read_line(reader)?
        .ok_or_else(|| ServeError::Io("connection closed before status line".to_string()))?;
    let mut parts = line.split_whitespace();
    let version = parts.next().unwrap_or("");
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServeError::BadRequest(format!("malformed status line: {line:?}")))?;
    if !version.starts_with("HTTP/") {
        return Err(ServeError::BadRequest(format!("malformed status line: {line:?}")));
    }
    let headers = read_headers(reader)?;
    let body = read_body(reader, headers.content_length)?;
    Ok(HttpResponse { status, body })
}

/// Writes a complete HTTP response with a JSON content type.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_type(writer, status, reason, "application/json", body)
}

/// Writes a complete HTTP response with an explicit content type. The
/// `/metrics` exposition uses this with `text/plain; version=0.0.4`;
/// every JSON route goes through [`write_response`].
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with_type<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes a complete HTTP request with a JSON body (client side).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_request_traced(writer, method, path, None, body)
}

/// [`write_request`] with an optional [`TRACEPARENT_HEADER`] carrying
/// the caller's trace context to the server.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request_traced<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    traceparent: Option<&str>,
    body: &[u8],
) -> std::io::Result<()> {
    write!(writer, "{method} {path} HTTP/1.1\r\nHost: simpadv\r\n")?;
    if let Some(value) = traceparent {
        write!(writer, "{TRACEPARENT_HEADER}: {value}\r\n")?;
    }
    write!(writer, "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n", body.len())?;
    writer.write_all(body)?;
    writer.flush()
}

/// Reads one CRLF-terminated line; `None` on immediate end-of-stream.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, ServeError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| ServeError::Io(format!("read: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// The interpreted subset of a header block.
struct Headers {
    content_length: usize,
    traceparent: Option<String>,
}

/// Consumes header lines up to the blank separator, interpreting
/// `Content-Length` (0 when absent) and [`TRACEPARENT_HEADER`].
fn read_headers<R: BufRead>(reader: &mut R) -> Result<Headers, ServeError> {
    let mut headers = Headers { content_length: 0, traceparent: None };
    loop {
        let line = match read_line(reader)? {
            None => return Err(ServeError::BadRequest("truncated headers".to_string())),
            Some(line) => line,
        };
        if line.is_empty() {
            return Ok(headers);
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                headers.content_length = value.trim().parse().map_err(|_| {
                    ServeError::BadRequest(format!("bad content-length: {value:?}"))
                })?;
            } else if name.eq_ignore_ascii_case(TRACEPARENT_HEADER) {
                headers.traceparent = Some(value.trim().to_string());
            }
        }
    }
}

/// Reads exactly `len` body bytes, bounded by [`MAX_BODY_BYTES`].
fn read_body<R: Read>(reader: &mut R, len: usize) -> Result<Vec<u8>, ServeError> {
    if len > MAX_BODY_BYTES {
        return Err(ServeError::BadRequest(format!(
            "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| ServeError::Io(format!("read body: {e}")))?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips_through_framing() {
        let body = serde_json::to_string(&PredictRequest {
            pixels: vec![0.25, 0.5],
            label: Some(3),
            adversarial: true,
        })
        .unwrap();
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/predict", body.as_bytes()).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let parsed = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path, "/predict");
        let req: PredictRequest =
            serde_json::from_str(std::str::from_utf8(&parsed.body).unwrap()).unwrap();
        assert_eq!(req.label, Some(3));
        assert!(req.adversarial);
        // A second read on the drained keep-alive stream is a clean EOF.
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn response_round_trips_with_bitwise_floats() {
        let resp = PredictResponse {
            prediction: 7,
            logits: vec![0.1f32, -3.75e-5, 1234.5678],
            generation: 2,
        };
        let body = serde_json::to_string(&resp).unwrap();
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "OK", body.as_bytes()).unwrap();
        let parsed = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(parsed.status, 200);
        let back: PredictResponse =
            serde_json::from_str(std::str::from_utf8(&parsed.body).unwrap()).unwrap();
        assert_eq!(back, resp);
        for (a, b) in back.logits.iter().zip(resp.logits.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "logits must round-trip bitwise");
        }
    }

    #[test]
    fn traceparent_header_round_trips_and_defaults_to_none() {
        let mut wire = Vec::new();
        write_request_traced(&mut wire, "POST", "/predict", Some("00-ab-cd-01"), b"{}").unwrap();
        let parsed = read_request(&mut BufReader::new(wire.as_slice())).unwrap().unwrap();
        assert_eq!(parsed.traceparent.as_deref(), Some("00-ab-cd-01"));
        assert_eq!(parsed.body, b"{}");

        // Header name matching is case-insensitive.
        let wire = b"POST /p HTTP/1.1\r\nx-simpadv-traceparent: tp\r\nContent-Length: 0\r\n\r\n";
        let parsed = read_request(&mut BufReader::new(&wire[..])).unwrap().unwrap();
        assert_eq!(parsed.traceparent.as_deref(), Some("tp"));

        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/healthz", b"").unwrap();
        let parsed = read_request(&mut BufReader::new(wire.as_slice())).unwrap().unwrap();
        assert_eq!(parsed.traceparent, None);
    }

    #[test]
    fn malformed_request_line_is_a_bad_request() {
        let mut reader = BufReader::new(&b"NOPE\r\n\r\n"[..]);
        let err = read_request(&mut reader).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }

    #[test]
    fn oversized_body_is_rejected_before_buffering() {
        let wire =
            format!("POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let mut reader = BufReader::new(wire.as_bytes());
        let err = read_request(&mut reader).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }
}
