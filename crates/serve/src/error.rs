//! Error taxonomy for the inference service.
//!
//! The variants map onto the wire protocol: [`ServeError::Rejected`] is
//! the backpressure signal (HTTP 503), [`ServeError::BadRequest`] covers
//! malformed protocol or payload input (HTTP 400), and the remaining
//! variants are server-side faults surfaced as HTTP 500 or startup
//! errors.

use simpadv_resilience::PersistError;
use std::fmt;

/// Anything that can go wrong while serving inference traffic.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded request queue is full — explicit backpressure. The
    /// client should retry later; the server did not touch the request.
    Rejected {
        /// Configured queue capacity at the moment of rejection.
        capacity: usize,
    },
    /// The request was syntactically or semantically invalid (bad HTTP
    /// framing, malformed JSON, wrong pixel count, unknown route).
    BadRequest(String),
    /// A persistence-layer failure (sealed envelope, checkpoint store).
    Persist(PersistError),
    /// A socket-level failure, with the failing operation named.
    Io(String),
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// No valid model generation exists in the watched store.
    NoModel(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { capacity } => {
                write!(f, "request rejected: queue full (capacity {capacity})")
            }
            ServeError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            ServeError::Persist(e) => write!(f, "persistence error: {e}"),
            ServeError::Io(detail) => write!(f, "io error: {detail}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::NoModel(detail) => write!(f, "no servable model: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_mode() {
        let msg = ServeError::Rejected { capacity: 8 }.to_string();
        assert!(msg.contains("queue full"), "{msg}");
        assert!(msg.contains('8'), "{msg}");
        let msg = ServeError::BadRequest("pixel count".into()).to_string();
        assert!(msg.contains("pixel count"), "{msg}");
    }
}
