//! The TCP listener, connection handling, and background threads.
//!
//! This file is the only place in the workspace allowed to spawn raw
//! `std::thread`s outside `crates/runtime` (lint.toml R7 allow): the
//! dispatcher, the accept loop, per-connection handlers, and the
//! optional checkpoint watcher are all I/O-bound coordination threads,
//! not data parallelism — the batched forward itself still runs through
//! the deterministic runtime pool via the tensor kernels.
//!
//! Routes:
//!
//! | route           | method | answer                                   |
//! |-----------------|--------|------------------------------------------|
//! | `/predict`      | POST   | 200 [`PredictResponse`], 503 on backpressure |
//! | `/healthz`      | GET    | 200 [`HealthBody`]                       |
//! | `/stats`        | GET    | 200 [`crate::stats::StatsSnapshot`]      |
//! | `/metrics`      | GET    | 200 Prometheus text exposition           |
//! | `/rescan`       | POST   | 200 [`crate::batcher::SwapReport`]       |

use crate::batcher::{BatchConfig, Engine, SwapReport};
use crate::error::ServeError;
use crate::protocol::{
    read_request, write_response, write_response_with_type, ErrorBody, HealthBody, HttpRequest,
    PredictRequest, RejectBody,
};
use crate::stats::StatsSnapshot;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Watched checkpoint directory (a [`simpadv_resilience::CheckpointStore`]).
    pub model_dir: PathBuf,
    /// Batching and backpressure knobs.
    pub batch: BatchConfig,
    /// Poll interval for the checkpoint watcher thread, in
    /// microseconds; `0` disables the watcher (tests drive
    /// [`Server::rescan`] explicitly instead).
    pub watch_interval_us: u64,
}

impl ServeConfig {
    /// A config with defaults suitable for tests: ephemeral port, no
    /// watcher thread.
    pub fn for_dir(model_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            model_dir: model_dir.into(),
            batch: BatchConfig::default(),
            watch_interval_us: 0,
        }
    }
}

/// A running inference server. Dropping it without calling
/// [`Server::shutdown`] leaks the background threads until process
/// exit; call `shutdown` for an orderly drain.
pub struct Server {
    engine: Arc<Engine>,
    addr: std::net::SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, loads the newest servable generation, and
    /// starts the dispatcher (plus the watcher when configured).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModel`] when the store has no valid generation,
    /// [`ServeError::Io`] when the bind fails.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        let store = simpadv_resilience::CheckpointStore::open(&cfg.model_dir)?;
        let engine = Arc::new(Engine::new(store, cfg.batch.clone())?);
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener.local_addr().map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let mut threads = Vec::new();

        let dispatch_engine = Arc::clone(&engine);
        threads.push(std::thread::spawn(move || dispatch_engine.run_dispatch()));

        let accept_engine = Arc::clone(&engine);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &accept_engine)));

        if cfg.watch_interval_us > 0 {
            let watch_engine = Arc::clone(&engine);
            let interval = cfg.watch_interval_us;
            threads.push(std::thread::spawn(move || watch_loop(&watch_engine, interval)));
        }

        Ok(Server { engine, addr, threads })
    }

    /// The bound address, e.g. `127.0.0.1:41347`.
    pub fn local_addr(&self) -> String {
        self.addr.to_string()
    }

    /// The shared batching engine (for in-process tests).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Triggers a checkpoint rescan now.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when the store cannot be listed.
    pub fn rescan(&self) -> Result<SwapReport, ServeError> {
        self.engine.rescan()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.engine.stats()
    }

    /// Blocks until `target` requests have been answered.
    pub fn wait_served(&self, target: u64) {
        self.engine.wait_served(target);
    }

    /// Drains the queue, stops every background thread, and returns the
    /// final statistics snapshot.
    pub fn shutdown(self) -> StatsSnapshot {
        self.engine.shutdown();
        // The accept loop blocks in accept(); a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads {
            let _ = handle.join();
        }
        self.engine.stats()
    }
}

/// Accepts connections until shutdown, one handler thread each.
fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if engine.stopping() {
                    return;
                }
                let engine = Arc::clone(engine);
                let _ = std::thread::spawn(move || handle_connection(stream, &engine));
            }
            Err(_) => {
                if engine.stopping() {
                    return;
                }
            }
        }
    }
}

/// Polls the checkpoint store for new generations until shutdown.
fn watch_loop(engine: &Arc<Engine>, interval_us: u64) {
    // Sleep in short slices so shutdown is never delayed by a long
    // watch interval.
    let slice_us = interval_us.clamp(1, 50_000);
    let slice = Duration::from_micros(slice_us);
    let slices = (interval_us / slice_us).max(1);
    loop {
        for _ in 0..slices {
            if engine.stopping() {
                return;
            }
            std::thread::sleep(slice);
        }
        if engine.stopping() {
            return;
        }
        let _ = engine.rescan();
    }
}

/// Serves one keep-alive connection until the peer closes it.
fn handle_connection(stream: TcpStream, engine: &Arc<Engine>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(request)) => {
                let keep_going = respond(&mut writer, engine, &request);
                if !keep_going {
                    return;
                }
            }
            Err(ServeError::BadRequest(detail)) => {
                let _ = send_error(&mut writer, 400, "Bad Request", &detail);
                return;
            }
            Err(_) => return,
        }
    }
}

/// Routes one parsed request; returns false when the connection should
/// close.
fn respond(writer: &mut TcpStream, engine: &Arc<Engine>, request: &HttpRequest) -> bool {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => {
            let parsed: Result<PredictRequest, _> = std::str::from_utf8(&request.body)
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()));
            // A malformed traceparent degrades to an uncorrelated
            // request rather than a 400: tracing is observability, not
            // part of the request contract.
            let remote =
                request.traceparent.as_deref().and_then(simpadv_trace::TraceContext::parse);
            match parsed {
                Ok(req) => match engine.submit_traced(req, remote) {
                    Ok(resp) => send_json(writer, 200, "OK", &resp),
                    Err(ServeError::Rejected { capacity }) => {
                        let body = RejectBody {
                            error: "queue_full".to_string(),
                            queue_capacity: capacity as u64,
                        };
                        send_json(writer, 503, "Service Unavailable", &body)
                    }
                    Err(ServeError::BadRequest(detail)) => {
                        send_error(writer, 400, "Bad Request", &detail)
                    }
                    Err(ServeError::ShuttingDown) => {
                        send_error(writer, 503, "Service Unavailable", "shutting down")
                    }
                    Err(other) => {
                        send_error(writer, 500, "Internal Server Error", &other.to_string())
                    }
                },
                Err(detail) => send_error(writer, 400, "Bad Request", &detail),
            }
        }
        ("GET", "/healthz") => {
            let body = HealthBody {
                status: "ok".to_string(),
                generation: engine.current_generation(),
                method: engine.method(),
            };
            send_json(writer, 200, "OK", &body)
        }
        ("GET", "/stats") => send_json(writer, 200, "OK", &engine.stats()),
        ("GET", "/metrics") => {
            let text = engine.stats().to_prometheus();
            write_response_with_type(
                writer,
                200,
                "OK",
                "text/plain; version=0.0.4",
                text.as_bytes(),
            )
            .is_ok()
        }
        ("POST", "/rescan") => match engine.rescan() {
            Ok(report) => send_json(writer, 200, "OK", &report),
            Err(e) => send_error(writer, 500, "Internal Server Error", &e.to_string()),
        },
        _ => send_error(writer, 404, "Not Found", "no such route"),
    }
}

/// Serializes `body` and writes a JSON response; returns false on a
/// dead socket.
fn send_json<T: serde::Serialize>(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &T,
) -> bool {
    let text = match serde_json::to_string(body) {
        Ok(text) => text,
        Err(_) => {
            return write_response(
                writer,
                500,
                "Internal Server Error",
                b"{\"error\":\"encode failure\"}",
            )
            .is_ok()
        }
    };
    write_response(writer, status, reason, text.as_bytes()).is_ok()
}

/// Writes an error body; returns false on a dead socket.
fn send_error(writer: &mut TcpStream, status: u16, reason: &str, detail: &str) -> bool {
    let body = ErrorBody { error: detail.to_string() };
    send_json(writer, status, reason, &body)
}
