//! Servable model envelopes.
//!
//! The server consumes two on-disk payload shapes without caring which
//! trainer produced them:
//!
//! 1. the `SavedModel` JSON written by `simpadv-cli train --out`
//!    (`{spec, state, trained_on, method}`) — mirrored here as
//!    [`ServedModel`] so the serve crate does not depend on the CLI;
//! 2. the `TrainState` JSON that `train --checkpoint-dir` streams into a
//!    [`CheckpointStore`] generation (recognizable by its `trainer_id`
//!    field). The CLI always trains the default MLP topology, so the
//!    rebuild uses [`ModelSpec::default_mlp`].
//!
//! Both arrive sealed (CRC-checked envelope) — the store unseals its
//! generations itself; standalone files go through
//! [`ServedModel::load_file`], which mirrors the CLI's legacy plain-JSON
//! fallback.

use crate::error::ServeError;
use serde::{Deserialize, Serialize};
use simpadv::train::TrainState;
use simpadv::ModelSpec;
use simpadv_nn::{Classifier, StateDict};
use simpadv_resilience::{read_sealed_json, CheckpointStore, PersistError};
use std::path::Path;

/// A model in servable form: topology spec plus captured weights.
///
/// Field names intentionally match the CLI's `SavedModel` so the two
/// serialize to byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedModel {
    /// Network topology, rebuildable via [`ModelSpec::build`].
    pub spec: ModelSpec,
    /// Trained weights.
    pub state: StateDict,
    /// Dataset the model was trained on (informational).
    pub trained_on: String,
    /// Training method id (informational; shown in `/healthz`).
    pub method: String,
}

impl ServedModel {
    /// Captures a trained classifier into a servable envelope.
    pub fn capture(spec: &ModelSpec, clf: &Classifier, trained_on: &str, method: &str) -> Self {
        ServedModel {
            spec: spec.clone(),
            state: StateDict::capture(clf.network()),
            trained_on: trained_on.to_string(),
            method: method.to_string(),
        }
    }

    /// Rebuilds the classifier this envelope describes.
    ///
    /// The seed only shapes the pre-restore initialization, which the
    /// restored state overwrites entirely.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when the stored weights contain NaN/Inf.
    pub fn restore(&self) -> Result<Classifier, ServeError> {
        self.state.validate_finite()?;
        let mut clf = self.spec.build(0);
        self.state.restore(clf.network_mut());
        Ok(clf)
    }

    /// Serializes to the plain-JSON payload stored inside a checkpoint
    /// generation (the store adds the sealed envelope itself).
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when encoding fails.
    pub fn to_payload(&self) -> Result<Vec<u8>, ServeError> {
        Ok(serde_json::to_string(self)
            .map_err(|e| ServeError::Persist(PersistError::Encode(e.to_string())))?
            .into_bytes())
    }

    /// Publishes this model as the next generation of `store`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when the weights are non-finite or the
    /// write fails.
    pub fn publish(&self, store: &CheckpointStore) -> Result<u64, ServeError> {
        self.state.validate_finite()?;
        Ok(store.save(&self.to_payload()?)?)
    }

    /// Decodes a checkpoint-generation payload in either supported
    /// shape (`SavedModel` mirror first, then `TrainState`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] with a decode detail when the payload
    /// matches neither shape.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let text = String::from_utf8(payload.to_vec()).map_err(|_| {
            ServeError::Persist(PersistError::Decode("payload is not UTF-8".into()))
        })?;
        if let Ok(model) = serde_json::from_str::<ServedModel>(&text) {
            return Ok(model);
        }
        let state: TrainState = serde_json::from_str(&text).map_err(|e| {
            ServeError::Persist(PersistError::Decode(format!(
                "payload is neither a saved model nor a train state: {e}"
            )))
        })?;
        Ok(ServedModel {
            spec: ModelSpec::default_mlp(),
            state: state.model,
            trained_on: "checkpoint".to_string(),
            method: state.trainer_id,
        })
    }

    /// Loads a standalone sealed model file (as written by
    /// `simpadv-cli train --out`), falling back to legacy plain JSON
    /// exactly like the CLI loader does.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when the file is unreadable in both
    /// formats.
    pub fn load_file(path: &Path) -> Result<Self, ServeError> {
        match read_sealed_json::<ServedModel>(path) {
            Ok(model) => Ok(model),
            Err(PersistError::BadHeader { .. }) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ServeError::Io(format!("read {}: {e}", path.display())))?;
                Ok(serde_json::from_str(&text)
                    .map_err(|e| ServeError::Persist(PersistError::Decode(e.to_string())))?)
            }
            Err(e) => Err(ServeError::Persist(e)),
        }
    }
}

/// Scans `store` for the newest generation that decodes into a servable
/// model, returning it with its generation number.
///
/// Damaged or undecodable generations are skipped (newest first), each
/// skip reported through the `serve/generation_skipped` counter so the
/// monitoring plane sees silent fallbacks.
///
/// # Errors
///
/// [`ServeError::NoModel`] when no generation is servable.
pub fn load_latest_servable(store: &CheckpointStore) -> Result<(u64, ServedModel), ServeError> {
    let mut gens = store.generations()?;
    gens.reverse();
    for gen in gens {
        match store.load(gen).map_err(ServeError::from).and_then(|p| ServedModel::decode(&p)) {
            Ok(model) => return Ok((gen, model)),
            Err(_) => {
                simpadv_trace::counter_with(
                    "serve/generation_skipped",
                    1,
                    &[("generation", simpadv_trace::FieldValue::U64(gen))],
                );
            }
        }
    }
    Err(ServeError::NoModel(format!("no servable generation in {}", store.dir().display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> (ModelSpec, Classifier) {
        let spec = ModelSpec::small_mlp();
        let clf = spec.build(7);
        (spec, clf)
    }

    #[test]
    fn payload_round_trips_bitwise() {
        let (spec, clf) = tiny_model();
        let model = ServedModel::capture(&spec, &clf, "mnist", "proposed");
        let decoded = ServedModel::decode(&model.to_payload().unwrap()).unwrap();
        assert_eq!(model, decoded);
    }

    #[test]
    fn restored_classifier_matches_original_logits() {
        let (spec, mut clf) = tiny_model();
        let model = ServedModel::capture(&spec, &clf, "mnist", "proposed");
        let mut restored = model.restore().unwrap();
        let x = simpadv_tensor::Tensor::linspace(0.0, 1.0, simpadv_data::IMAGE_PIXELS)
            .reshape(&[1, simpadv_data::IMAGE_PIXELS]);
        use simpadv_nn::GradientModel;
        let a = clf.logits(&x);
        let b = restored.logits(&x);
        assert_eq!(a.as_slice(), b.as_slice(), "restore must be bitwise");
    }

    #[test]
    fn decode_rejects_garbage_with_detail() {
        let err = ServedModel::decode(b"{\"neither\": true}").unwrap_err();
        assert!(err.to_string().contains("neither"), "{err}");
    }
}
