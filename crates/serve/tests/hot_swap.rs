//! Hot-swap fault tolerance: a checkpoint generation corrupted mid-write
//! must be skipped — the server keeps serving the last valid generation,
//! the skipped-generation counter increments, and no request is dropped.
//!
//! This binary owns the process-global tracer (memory sink) and the
//! failpoint registry; keeping it separate from other serve tests means
//! neither piece of global state can bleed across test binaries.

use simpadv::ModelSpec;
use simpadv_resilience::{failpoint, CheckpointStore};
use simpadv_serve::{
    client, BatchConfig, PredictRequest, ServeConfig, ServedModel, Server, SwapReport,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("simpadv-serve-hotswap-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn publish(store: &CheckpointStore, seed: u64) -> u64 {
    let spec = ModelSpec::small_mlp();
    let clf = spec.build(seed);
    ServedModel::capture(&spec, &clf, "mnist", "test").publish(store).unwrap()
}

fn request(seed: u64) -> PredictRequest {
    let pixels = (0..simpadv_data::IMAGE_PIXELS)
        .map(|i| (((i as u64).wrapping_mul(37).wrapping_add(seed * 11) % 251) as f32) / 251.0)
        .collect();
    PredictRequest {
        pixels,
        label: Some((seed % 10) as usize),
        adversarial: seed.is_multiple_of(3),
    }
}

#[test]
fn corrupted_generation_is_skipped_and_serving_continues() {
    let handle = simpadv_trace::install_memory();
    let dir = temp_dir("corrupt");
    let store = CheckpointStore::open(&dir).unwrap();
    publish(&store, 1);

    let mut cfg = ServeConfig::for_dir(&dir);
    cfg.batch = BatchConfig { batch_max: 4, batch_timeout_us: 200, queue_cap: 32 };
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();
    client::wait_ready(&addr, 5_000_000).unwrap();
    let g1 = server.engine().current_generation();

    // Baseline traffic on generation 1.
    for seed in 0..4 {
        match client::predict(&addr, &request(seed)).unwrap() {
            client::PredictOutcome::Predicted(resp) => assert_eq!(resp.generation, g1),
            client::PredictOutcome::Rejected(_) => panic!("queue cannot be full"),
        }
    }

    // A new generation lands corrupted: the `corrupt` failpoint flips a
    // payload byte inside the atomic write, so the sealed envelope's
    // CRC check fails on load — exactly a torn/corrupted mid-write.
    failpoint::arm("corrupt", "flip:40").unwrap();
    let publisher = CheckpointStore::open(&dir).unwrap();
    let g2 = publish(&publisher, 2);
    failpoint::disarm_all();

    let report = client::rescan(&addr).unwrap();
    assert_eq!(
        report,
        SwapReport { installed: None, skipped: 1 },
        "the corrupted generation {g2} must be skipped, not installed"
    );
    assert_eq!(server.engine().current_generation(), g1);

    // Traffic continues on the old generation with zero drops.
    for seed in 4..8 {
        match client::predict(&addr, &request(seed)).unwrap() {
            client::PredictOutcome::Predicted(resp) => assert_eq!(resp.generation, g1),
            client::PredictOutcome::Rejected(_) => panic!("no request may be shed"),
        }
    }

    // The scrape endpoint mirrors the counters seen so far: the skip,
    // the per-generation traffic split, and the summary quantiles.
    let exposition = client::metrics(&addr).unwrap();
    assert!(exposition.contains("simpadv_serve_skipped_generations_total 1"), "{exposition}");
    assert!(exposition.contains("simpadv_serve_requests_total 8"), "{exposition}");
    assert!(
        exposition.contains(&format!(
            "simpadv_serve_generation_requests_total{{generation=\"{g1}\",traffic=\"clean\"}}"
        )),
        "{exposition}"
    );
    assert!(exposition.contains("simpadv_serve_latency_us{quantile=\"0.99\"}"), "{exposition}");

    // A subsequent intact generation still swaps in.
    let g3 = publish(&publisher, 3);
    let report = client::rescan(&addr).unwrap();
    assert_eq!(report.installed, Some(g3));
    match client::predict(&addr, &request(8)).unwrap() {
        client::PredictOutcome::Predicted(resp) => assert_eq!(resp.generation, g3),
        client::PredictOutcome::Rejected(_) => panic!("no request may be shed"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.served, 9, "every submitted request must be answered");
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.skipped_generations, 1);
    assert_eq!(stats.swapped_generations, 1);

    // The monitoring plane saw the skip: exactly one
    // serve/generation_skipped counter, tagged with the generation.
    let events = handle.take();
    let skips: Vec<_> = events.iter().filter(|e| e.path == "serve/generation_skipped").collect();
    assert_eq!(skips.len(), 1, "one skip event expected");
    let tagged = skips[0].fields.iter().any(|(k, v)| {
        k.as_str() == "generation" && matches!(v, simpadv_trace::FieldValue::U64(g) if *g == g2)
    });
    assert!(tagged, "skip event must name the damaged generation: {:?}", skips[0]);
    let swaps = events.iter().filter(|e| e.path == "serve/generation_swapped").count();
    assert_eq!(swaps, 1, "one successful swap expected");
}
