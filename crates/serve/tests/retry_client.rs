//! `predict_with_retry` against a stub endpoint with scripted
//! backpressure: the listener sheds the first N attempts with a 503
//! carrying the queue-capacity hint, then answers. This pins the whole
//! loop — bounded attempts, hint-floored backoff, typed exhaustion —
//! without depending on racing a real queue full.

use simpadv_resilience::BackoffPolicy;
use simpadv_serve::client::{predict_with_retry, RetryPolicy};
use simpadv_serve::protocol::{
    read_request, write_response, PredictRequest, PredictResponse, RejectBody,
};
use simpadv_serve::ServeError;
use std::io::BufReader;
use std::net::TcpListener;

/// Serves exactly `connections` requests on an ephemeral port: 503 for
/// the first `shed` of them, 200 afterwards. Returns the bound address.
fn scripted_server(shed: u32, connections: u32) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stub listener");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        for i in 0..connections {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let _request = read_request(&mut reader).expect("read request");
            let mut writer = stream;
            if i < shed {
                let body = serde_json::to_string(&RejectBody {
                    error: "queue_full".into(),
                    queue_capacity: 8,
                })
                .unwrap();
                write_response(&mut writer, 503, "Service Unavailable", body.as_bytes()).unwrap();
            } else {
                let body = serde_json::to_string(&PredictResponse {
                    prediction: 3,
                    logits: vec![0.0, 0.25, 0.5, 1.0],
                    generation: 1,
                })
                .unwrap();
                write_response(&mut writer, 200, "OK", body.as_bytes()).unwrap();
            }
        }
    });
    (addr, handle)
}

fn request() -> PredictRequest {
    PredictRequest { pixels: vec![0.5; 4], label: Some(3), adversarial: false }
}

/// Fast test policy: microsecond-scale backoff, tiny slot estimate.
fn quick_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy { max_attempts, backoff: BackoffPolicy::new(200, 5_000), seed: 42, slot_us: 10 }
}

#[test]
fn rejected_attempts_are_retried_until_the_server_answers() {
    let (addr, server) = scripted_server(2, 3);
    let response = predict_with_retry(&addr, &request(), &quick_policy(5)).unwrap();
    assert_eq!(response.prediction, 3);
    assert_eq!(response.generation, 1);
    server.join().unwrap();
}

#[test]
fn exhausted_attempts_surface_the_typed_rejection() {
    let (addr, server) = scripted_server(3, 3);
    let err = predict_with_retry(&addr, &request(), &quick_policy(3)).unwrap_err();
    match err {
        ServeError::Rejected { capacity } => assert_eq!(capacity, 8, "hint is carried through"),
        other => panic!("expected Rejected, got {other}"),
    }
    server.join().unwrap();
}

#[test]
fn an_immediately_healthy_server_needs_exactly_one_attempt() {
    let (addr, server) = scripted_server(0, 1);
    let response = predict_with_retry(&addr, &request(), &quick_policy(1)).unwrap();
    assert_eq!(response.logits.len(), 4);
    server.join().unwrap();
}
