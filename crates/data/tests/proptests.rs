//! Property-based tests for the rasterizer and dataset generator.

use proptest::prelude::*;
use simpadv_data::{arc_points, ascii_image, Canvas, SynthConfig, SynthDataset, Transform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn canvas_pixels_stay_in_unit_interval(
        x0 in 0.0f32..1.0, y0 in 0.0f32..1.0,
        x1 in 0.0f32..1.0, y1 in 0.0f32..1.0,
        thickness in 0.5f32..5.0,
        intensity in 0.0f32..1.0,
    ) {
        prop_assume!((x0 - x1).abs() > 1e-3 || (y0 - y1).abs() > 1e-3);
        let mut c = Canvas::new(28);
        c.stroke_polyline(&[(x0, y0), (x1, y1)], &Transform::identity(), thickness, intensity);
        c.blur();
        prop_assert!(c.pixels().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn transform_preserves_centre(rot in -3.0f32..3.0, sx in 0.5f32..1.5, sy in 0.5f32..1.5) {
        let tf = Transform { rotation: rot, scale_x: sx, scale_y: sy, dx: 0.0, dy: 0.0 };
        let (cx, cy) = tf.apply((0.5, 0.5));
        prop_assert!((cx - 0.5).abs() < 1e-6 && (cy - 0.5).abs() < 1e-6);
    }

    #[test]
    fn transform_translation_is_additive(dx in -0.2f32..0.2, dy in -0.2f32..0.2, px in 0.0f32..1.0, py in 0.0f32..1.0) {
        let base = Transform::identity();
        let moved = Transform { dx, dy, ..base };
        let (ax, ay) = base.apply((px, py));
        let (bx, by) = moved.apply((px, py));
        prop_assert!((bx - ax - dx).abs() < 1e-6);
        prop_assert!((by - ay - dy).abs() < 1e-6);
    }

    #[test]
    fn arc_points_lie_on_the_ellipse(
        cx in 0.2f32..0.8, cy in 0.2f32..0.8,
        rx in 0.05f32..0.3, ry in 0.05f32..0.3,
        a0 in -3.0f32..3.0, span in 0.1f32..6.0,
        n in 2usize..24,
    ) {
        for (x, y) in arc_points(cx, cy, rx, ry, a0, a0 + span, n) {
            let u = (x - cx) / rx;
            let v = (y - cy) / ry;
            prop_assert!((u * u + v * v - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn generation_deterministic_for_any_seed(seed in 0u64..10_000) {
        let cfg = SynthConfig::new(20, seed);
        let a = SynthDataset::Fashion.generate(&cfg);
        let b = SynthDataset::Fashion.generate(&cfg);
        prop_assert_eq!(a.images(), b.images());
    }

    #[test]
    fn every_generated_image_has_ink_and_background(seed in 0u64..2_000) {
        let d = SynthDataset::Mnist.generate(&SynthConfig::new(10, seed).with_noise(0.0));
        for i in 0..10 {
            let row = d.images().row(i);
            let ink = row.as_slice().iter().filter(|&&v| v > 0.5).count();
            let bg = row.as_slice().iter().filter(|&&v| v < 0.1).count();
            prop_assert!(ink > 10, "image {i} nearly blank");
            prop_assert!(bg > 300, "image {i} floods the canvas");
        }
    }

    #[test]
    fn ascii_render_never_panics_on_generated_images(seed in 0u64..2_000) {
        let d = SynthDataset::Mnist.generate(&SynthConfig::new(3, seed));
        for i in 0..3 {
            let art = ascii_image(&d.images().row(i));
            prop_assert_eq!(art.lines().count(), 28);
        }
    }
}
