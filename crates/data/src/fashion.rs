//! Procedural garment silhouettes (the synthetic Fashion-MNIST stand-in).
//!
//! Ten classes matching Fashion-MNIST's label set. Four of them — t-shirt,
//! pullover, shirt and coat — are deliberately near-identical silhouettes
//! that differ only in sleeve length, body length and small details, which
//! makes this task markedly harder than the digits, reproducing the
//! MNIST-vs-Fashion-MNIST accuracy gap the paper reports.

use crate::raster::{arc_points, Canvas, Transform};
use std::f32::consts::PI;

/// Human-readable garment class names, index-aligned with the labels this
/// module draws.
pub const FASHION_NAMES: [&str; 10] = [
    "t-shirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle-boot",
];

/// Draws the garment `class` (0–9) onto the canvas.
///
/// # Panics
///
/// Panics if `class > 9`.
pub(crate) fn draw_garment(canvas: &mut Canvas, class: usize, tf: &Transform, thickness: f32) {
    assert!(class <= 9, "garment class {class} out of range (0-9)");
    let t = thickness;
    match class {
        // 0: t-shirt — torso + short sleeves
        0 => {
            torso(canvas, tf, 0.72);
            sleeve(canvas, tf, true, 0.42);
            sleeve(canvas, tf, false, 0.42);
        }
        // 1: trouser — two legs from a waistband
        1 => {
            canvas.fill_polygon(&[(0.36, 0.18), (0.64, 0.18), (0.66, 0.3), (0.34, 0.3)], tf, 0.95);
            canvas.fill_polygon(&[(0.34, 0.3), (0.47, 0.3), (0.45, 0.84), (0.34, 0.84)], tf, 0.95);
            canvas.fill_polygon(&[(0.53, 0.3), (0.66, 0.3), (0.66, 0.84), (0.55, 0.84)], tf, 0.95);
        }
        // 2: pullover — torso + long sleeves (like t-shirt, longer sleeves)
        2 => {
            torso(canvas, tf, 0.72);
            sleeve(canvas, tf, true, 0.7);
            sleeve(canvas, tf, false, 0.7);
        }
        // 3: dress — fitted top flaring to a wide hem
        3 => {
            canvas.fill_polygon(
                &[(0.42, 0.16), (0.58, 0.16), (0.56, 0.34), (0.7, 0.84), (0.3, 0.84), (0.44, 0.34)],
                tf,
                0.95,
            );
        }
        // 4: coat — long torso + long sleeves + front opening line
        4 => {
            torso(canvas, tf, 0.84);
            sleeve(canvas, tf, true, 0.72);
            sleeve(canvas, tf, false, 0.72);
            // the front opening reads as a dark cut through the body
            canvas.stroke_polyline(&[(0.5, 0.2), (0.5, 0.82)], tf, t.max(1.2), 0.15);
        }
        // 5: sandal — thin sole + strap arcs
        5 => {
            canvas.fill_polygon(&[(0.2, 0.66), (0.8, 0.6), (0.82, 0.68), (0.22, 0.74)], tf, 0.95);
            canvas.stroke_polyline(&arc_points(0.44, 0.62, 0.12, 0.14, -PI, 0.0, 10), tf, t, 0.9);
            canvas.stroke_polyline(&arc_points(0.64, 0.59, 0.1, 0.12, -PI, 0.0, 10), tf, t, 0.9);
        }
        // 6: shirt — t-shirt silhouette + collar notch and button line
        6 => {
            torso(canvas, tf, 0.74);
            sleeve(canvas, tf, true, 0.5);
            sleeve(canvas, tf, false, 0.5);
            canvas.stroke_polyline(&[(0.44, 0.16), (0.5, 0.24), (0.56, 0.16)], tf, t, 0.2);
            canvas.stroke_polyline(&[(0.5, 0.26), (0.5, 0.8)], tf, 1.0, 0.25);
        }
        // 7: sneaker — low profile body on a chunky sole
        7 => {
            canvas.fill_polygon(&[(0.18, 0.7), (0.82, 0.7), (0.82, 0.78), (0.18, 0.78)], tf, 0.95);
            canvas.fill_polygon(
                &[(0.2, 0.7), (0.3, 0.46), (0.52, 0.44), (0.8, 0.62), (0.8, 0.7)],
                tf,
                0.85,
            );
            canvas.stroke_polyline(&[(0.34, 0.52), (0.48, 0.58)], tf, 1.0, 0.3);
        }
        // 8: bag — box + handle arc
        8 => {
            canvas.fill_polygon(
                &[(0.26, 0.42), (0.74, 0.42), (0.76, 0.78), (0.24, 0.78)],
                tf,
                0.95,
            );
            canvas.stroke_polyline(&arc_points(0.5, 0.42, 0.16, 0.18, -PI, 0.0, 12), tf, t, 0.9);
        }
        // 9: ankle boot — shaft + foot + heel
        9 => {
            canvas.fill_polygon(
                &[
                    (0.34, 0.22),
                    (0.56, 0.22),
                    (0.58, 0.56),
                    (0.78, 0.64),
                    (0.8, 0.78),
                    (0.34, 0.78),
                ],
                tf,
                0.95,
            );
        }
        _ => unreachable!("class range checked on entry"),
    }
}

/// A symmetric torso polygon of the given bottom extent.
fn torso(canvas: &mut Canvas, tf: &Transform, hem_y: f32) {
    canvas.fill_polygon(
        &[(0.38, 0.16), (0.62, 0.16), (0.64, 0.3), (0.63, hem_y), (0.37, hem_y), (0.36, 0.3)],
        tf,
        0.9,
    );
}

/// A sleeve polygon; `left` mirrors it, `reach` sets how far down the arm
/// extends (0.4 = short sleeve, 0.7 = long sleeve).
fn sleeve(canvas: &mut Canvas, tf: &Transform, left: bool, reach: f32) {
    let pts: Vec<(f32, f32)> = [(0.38, 0.17), (0.2, reach - 0.12), (0.28, reach), (0.4, 0.34)]
        .iter()
        .map(|&(x, y)| if left { (x, y) } else { (1.0 - x, y) })
        .collect();
    canvas.fill_polygon(&pts, tf, 0.9);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(class: usize) -> Canvas {
        let mut c = Canvas::new(28);
        draw_garment(&mut c, class, &Transform::identity(), 2.0);
        c
    }

    #[test]
    fn every_garment_renders_ink() {
        for (class, garment) in FASHION_NAMES.iter().enumerate() {
            let ink = render(class).ink();
            assert!(ink > 0.02, "garment {class} ({garment}) ink {ink}");
            assert!(ink < 0.6, "garment {class} floods the canvas");
        }
    }

    #[test]
    fn garments_are_pairwise_distinct() {
        let renders: Vec<Canvas> = (0..10).map(render).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let d: f32 = renders[i]
                    .pixels()
                    .iter()
                    .zip(renders[j].pixels())
                    .map(|(&a, &b)| (a - b).abs())
                    .sum();
                assert!(d > 5.0, "garments {i} and {j} too similar (l1 {d})");
            }
        }
    }

    #[test]
    fn confusable_quartet_is_closer_than_distant_pairs() {
        // the t-shirt/pullover/shirt/coat group must be mutually closer
        // than, say, t-shirt vs trouser — that is what makes the task hard
        let l1 = |a: &Canvas, b: &Canvas| -> f32 {
            a.pixels().iter().zip(b.pixels()).map(|(&x, &y)| (x - y).abs()).sum()
        };
        let tshirt = render(0);
        let shirt = render(6);
        let trouser = render(1);
        assert!(l1(&tshirt, &shirt) < l1(&tshirt, &trouser));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(4), render(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_ten_rejected() {
        let mut c = Canvas::new(28);
        draw_garment(&mut c, 10, &Transform::identity(), 2.0);
    }
}
