//! Terminal rendering of images — the "plotting" backend of a CPU-only,
//! dependency-free reproduction.

use simpadv_tensor::Tensor;

/// Renders a flattened square grayscale image as ASCII art.
///
/// Four intensity levels, two characters per pixel so terminal aspect
/// ratio comes out roughly square.
///
/// # Panics
///
/// Panics if the tensor is not rank 1 with a square length.
///
/// # Example
///
/// ```
/// use simpadv_data::ascii_image;
/// use simpadv_tensor::Tensor;
///
/// let img = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4]);
/// let art = ascii_image(&img);
/// assert_eq!(art.lines().count(), 2);
/// ```
pub fn ascii_image(image: &Tensor) -> String {
    assert_eq!(image.rank(), 1, "ascii_image expects a flattened image");
    let side = (image.len() as f32).sqrt().round() as usize;
    assert_eq!(side * side, image.len(), "ascii_image expects a square image");
    let ramp = [' ', '.', 'o', '#'];
    let mut out = String::with_capacity(side * (2 * side + 1));
    for y in 0..side {
        for x in 0..side {
            let v = image.as_slice()[y * side + x].clamp(0.0, 1.0);
            let c = ramp[((v * 3.99) as usize).min(3)];
            out.push(c);
            out.push(c);
        }
        out.push('\n');
    }
    out
}

/// Renders two images side by side with a gutter — handy for comparing a
/// clean example with its adversarial version.
///
/// # Panics
///
/// Panics if the images have different (non-square) sizes.
pub fn ascii_pair(left: &Tensor, right: &Tensor) -> String {
    let la = ascii_image(left);
    let ra = ascii_image(right);
    la.lines().zip(ra.lines()).map(|(l, r)| format!("{l}    {r}")).collect::<Vec<_>>().join("\n")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_intensity_ramp() {
        let img = Tensor::from_vec(vec![0.0, 0.3, 0.6, 1.0], &[4]);
        let art = ascii_image(&img);
        assert!(art.contains(' '));
        assert!(art.contains('.'));
        assert!(art.contains('o'));
        assert!(art.contains('#'));
        assert_eq!(art.lines().count(), 2);
        assert!(art.lines().all(|l| l.len() == 4));
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let img = Tensor::from_vec(vec![-1.0, 2.0, 0.5, 0.5], &[4]);
        let art = ascii_image(&img);
        assert!(art.starts_with("  ##"));
    }

    #[test]
    fn pair_lays_out_side_by_side() {
        let a = Tensor::zeros(&[4]);
        let b = Tensor::ones(&[4]);
        let art = ascii_pair(&a, &b);
        assert_eq!(art.lines().count(), 2);
        assert!(art.lines().all(|l| l.contains("    ")));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        ascii_image(&Tensor::zeros(&[3]));
    }
}
