//! A tiny software rasterizer for 28×28 grayscale glyphs.
//!
//! All shapes are expressed as point lists in a unit coordinate system
//! (`[0, 1]²`, origin top-left). A [`Transform`] (rotate/scale/translate
//! about the glyph centre) is applied to the points, which are then mapped
//! to pixel coordinates. Strokes are rendered with an analytic
//! distance-to-segment coverage function, so thin strokes stay smooth —
//! important for a dataset whose classifiers must be attackable with small
//! l∞ perturbations rather than defeated by aliasing artifacts.

use rand::Rng;
use simpadv_tensor::{NormalSampler, Tensor};

/// An affine jitter applied to glyph control points: rotation and
/// anisotropic scale about the glyph centre `(0.5, 0.5)`, then translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transform {
    /// Rotation in radians (counter-clockwise).
    pub rotation: f32,
    /// Horizontal scale factor.
    pub scale_x: f32,
    /// Vertical scale factor.
    pub scale_y: f32,
    /// Horizontal translation in unit coordinates.
    pub dx: f32,
    /// Vertical translation in unit coordinates.
    pub dy: f32,
}

impl Default for Transform {
    /// The identity transform.
    fn default() -> Self {
        Transform { rotation: 0.0, scale_x: 1.0, scale_y: 1.0, dx: 0.0, dy: 0.0 }
    }
}

impl Transform {
    /// The identity transform.
    pub fn identity() -> Self {
        Self::default()
    }

    /// Applies the transform to a unit-space point.
    pub fn apply(&self, p: (f32, f32)) -> (f32, f32) {
        let (cx, cy) = (0.5, 0.5);
        let (x, y) = (p.0 - cx, p.1 - cy);
        let (x, y) = (x * self.scale_x, y * self.scale_y);
        let (s, c) = self.rotation.sin_cos();
        let (x, y) = (c * x - s * y, s * x + c * y);
        (x + cx + self.dx, y + cy + self.dy)
    }
}

/// Generates `n + 1` points along an elliptical arc from angle `a0` to `a1`
/// (radians), centred at `(cx, cy)` with radii `(rx, ry)`, in unit
/// coordinates.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn arc_points(
    cx: f32,
    cy: f32,
    rx: f32,
    ry: f32,
    a0: f32,
    a1: f32,
    n: usize,
) -> Vec<(f32, f32)> {
    assert!(n > 0, "arc needs at least one segment");
    (0..=n)
        .map(|i| {
            let t = a0 + (a1 - a0) * i as f32 / n as f32;
            (cx + rx * t.cos(), cy + ry * t.sin())
        })
        .collect()
}

/// A grayscale drawing surface with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    side: usize,
    pixels: Vec<f32>,
}

impl Canvas {
    /// Creates a black square canvas of `side`×`side` pixels.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "canvas side must be positive");
        Canvas { side, pixels: vec![0.0; side * side] }
    }

    /// Canvas side length in pixels.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The pixel buffer (row-major).
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    fn to_px(&self, p: (f32, f32)) -> (f32, f32) {
        // map unit space into the canvas with a 2-pixel margin
        let m = 2.0;
        let s = self.side as f32 - 2.0 * m;
        (m + p.0 * s, m + p.1 * s)
    }

    /// Strokes a polyline given in unit coordinates, after applying `tf`.
    /// `thickness` is in pixels; `intensity` is the peak value, blended
    /// with `max`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or `thickness <= 0`.
    pub fn stroke_polyline(
        &mut self,
        points: &[(f32, f32)],
        tf: &Transform,
        thickness: f32,
        intensity: f32,
    ) {
        assert!(points.len() >= 2, "polyline needs at least two points");
        assert!(thickness > 0.0, "thickness must be positive");
        let px: Vec<(f32, f32)> = points.iter().map(|&p| self.to_px(tf.apply(p))).collect();
        for seg in px.windows(2) {
            self.stroke_segment(seg[0], seg[1], thickness, intensity);
        }
    }

    fn stroke_segment(&mut self, a: (f32, f32), b: (f32, f32), thickness: f32, intensity: f32) {
        let r = thickness * 0.5;
        let pad = r + 1.5;
        let x0 = (a.0.min(b.0) - pad).floor().max(0.0) as usize;
        let x1 = (a.0.max(b.0) + pad).ceil().min((self.side - 1) as f32) as usize;
        let y0 = (a.1.min(b.1) - pad).floor().max(0.0) as usize;
        let y1 = (a.1.max(b.1) + pad).ceil().min((self.side - 1) as f32) as usize;
        let (abx, aby) = (b.0 - a.0, b.1 - a.1);
        let len2 = abx * abx + aby * aby;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let (pxc, pyc) = (x as f32 + 0.5, y as f32 + 0.5);
                let t = if len2 > 0.0 {
                    (((pxc - a.0) * abx + (pyc - a.1) * aby) / len2).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let (qx, qy) = (a.0 + t * abx, a.1 + t * aby);
                let d = ((pxc - qx).powi(2) + (pyc - qy).powi(2)).sqrt();
                // 1 inside the core, smooth 1-pixel falloff at the rim
                let cover = (r + 0.5 - d).clamp(0.0, 1.0);
                if cover > 0.0 {
                    let idx = y * self.side + x;
                    self.pixels[idx] = self.pixels[idx].max(cover * intensity);
                }
            }
        }
    }

    /// Fills a polygon (even-odd rule) given in unit coordinates, after
    /// applying `tf`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three points are given.
    pub fn fill_polygon(&mut self, points: &[(f32, f32)], tf: &Transform, intensity: f32) {
        assert!(points.len() >= 3, "polygon needs at least three points");
        let px: Vec<(f32, f32)> = points.iter().map(|&p| self.to_px(tf.apply(p))).collect();
        let y_min = px.iter().map(|p| p.1).fold(f32::INFINITY, f32::min).floor().max(0.0) as usize;
        let y_max = px
            .iter()
            .map(|p| p.1)
            .fold(f32::NEG_INFINITY, f32::max)
            .ceil()
            .min((self.side - 1) as f32) as usize;
        for y in y_min..=y_max {
            let yc = y as f32 + 0.5;
            // gather x-crossings of scanline yc
            let mut xs: Vec<f32> = Vec::new();
            for i in 0..px.len() {
                let (a, b) = (px[i], px[(i + 1) % px.len()]);
                if (a.1 <= yc && b.1 > yc) || (b.1 <= yc && a.1 > yc) {
                    let t = (yc - a.1) / (b.1 - a.1);
                    xs.push(a.0 + t * (b.0 - a.0));
                }
            }
            xs.sort_by(f32::total_cmp);
            for pair in xs.chunks(2) {
                if pair.len() < 2 {
                    continue;
                }
                let x0 = pair[0].ceil().max(0.0) as usize;
                let x1 = pair[1].floor().min((self.side - 1) as f32) as usize;
                for x in x0..=x1 {
                    let idx = y * self.side + x;
                    self.pixels[idx] = self.pixels[idx].max(intensity);
                }
            }
        }
    }

    /// Fills an ellipse given in unit coordinates, after applying `tf`.
    pub fn fill_ellipse(
        &mut self,
        cx: f32,
        cy: f32,
        rx: f32,
        ry: f32,
        tf: &Transform,
        intensity: f32,
    ) {
        // polygonal approximation keeps the transform handling uniform
        let pts = arc_points(cx, cy, rx, ry, 0.0, std::f32::consts::TAU, 40);
        self.fill_polygon(&pts, tf, intensity);
    }

    /// One pass of a 3×3 binomial blur (kernel `[1 2 1]⊗[1 2 1]/16`),
    /// zero-padded at the borders.
    pub fn blur(&mut self) {
        let s = self.side;
        let get = |p: &[f32], x: isize, y: isize| -> f32 {
            if x < 0 || y < 0 || x >= s as isize || y >= s as isize {
                0.0
            } else {
                p[y as usize * s + x as usize]
            }
        };
        let src = self.pixels.clone();
        for y in 0..s as isize {
            for x in 0..s as isize {
                let mut acc = 0.0;
                for (dy, wy) in [(-1, 1.0), (0, 2.0), (1, 1.0)] {
                    for (dx, wx) in [(-1, 1.0), (0, 2.0), (1, 1.0)] {
                        acc += wx * wy * get(&src, x + dx, y + dy);
                    }
                }
                self.pixels[y as usize * s + x as usize] = acc / 16.0;
            }
        }
    }

    /// Contrast gain: `v ↦ clamp((v - floor) * gain)`. Pushes stroke
    /// interiors toward 1 and the background toward 0, as in scanned
    /// handwriting datasets.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not positive.
    pub fn sharpen(&mut self, floor: f32, gain: f32) {
        assert!(gain > 0.0, "gain must be positive");
        for p in &mut self.pixels {
            *p = ((*p - floor) * gain).clamp(0.0, 1.0);
        }
    }

    /// Adds i.i.d. Gaussian pixel noise and clamps back into `[0, 1]`.
    pub fn add_noise<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f32) {
        if sigma <= 0.0 {
            return;
        }
        let mut sampler = NormalSampler::new(0.0, sigma);
        for p in &mut self.pixels {
            *p = (*p + sampler.sample(rng)).clamp(0.0, 1.0);
        }
    }

    /// Consumes the canvas into a flat `[side*side]` tensor.
    pub fn into_tensor(self) -> Tensor {
        let side = self.side;
        Tensor::from_vec(self.pixels, &[side * side])
    }

    /// Mean intensity (fraction of ink).
    pub fn ink(&self) -> f32 {
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_canvas_is_black() {
        let c = Canvas::new(28);
        assert_eq!(c.side(), 28);
        assert_eq!(c.ink(), 0.0);
    }

    #[test]
    fn stroke_leaves_ink_along_the_line() {
        let mut c = Canvas::new(28);
        c.stroke_polyline(&[(0.1, 0.5), (0.9, 0.5)], &Transform::identity(), 2.0, 1.0);
        assert!(c.ink() > 0.01);
        // centre of the line is fully covered
        let mid = 14 * 28 + 14;
        assert!(c.pixels()[mid] > 0.9, "centre pixel {}", c.pixels()[mid]);
        // far corner untouched
        assert_eq!(c.pixels()[0], 0.0);
    }

    #[test]
    fn thicker_strokes_leave_more_ink() {
        let mut thin = Canvas::new(28);
        thin.stroke_polyline(&[(0.1, 0.5), (0.9, 0.5)], &Transform::identity(), 1.0, 1.0);
        let mut thick = Canvas::new(28);
        thick.stroke_polyline(&[(0.1, 0.5), (0.9, 0.5)], &Transform::identity(), 4.0, 1.0);
        assert!(thick.ink() > 2.0 * thin.ink());
    }

    #[test]
    fn rotation_moves_ink() {
        let tf = Transform { rotation: std::f32::consts::FRAC_PI_2, ..Transform::identity() };
        let mut c = Canvas::new(28);
        c.stroke_polyline(&[(0.1, 0.5), (0.9, 0.5)], &tf, 2.0, 1.0);
        // a horizontal line rotated 90° becomes vertical: column 14 inked
        let col_mid = 7 * 28 + 14;
        assert!(c.pixels()[col_mid] > 0.5);
        let row_edge = 14 * 28 + 4;
        assert!(c.pixels()[row_edge] < 0.5);
    }

    #[test]
    fn translation_shifts_ink() {
        let tf = Transform { dx: 0.3, ..Transform::identity() };
        let mut c = Canvas::new(28);
        c.stroke_polyline(&[(0.1, 0.5), (0.3, 0.5)], &tf, 2.0, 1.0);
        // untranslated start (x≈0.1) must be empty
        let orig = 14 * 28 + 4;
        assert_eq!(c.pixels()[orig], 0.0);
    }

    #[test]
    fn fill_polygon_interior_and_exterior() {
        let mut c = Canvas::new(28);
        let square = [(0.3, 0.3), (0.7, 0.3), (0.7, 0.7), (0.3, 0.7)];
        c.fill_polygon(&square, &Transform::identity(), 1.0);
        assert!(c.pixels()[14 * 28 + 14] == 1.0);
        assert_eq!(c.pixels()[2 * 28 + 2], 0.0);
    }

    #[test]
    fn fill_ellipse_covers_centre() {
        let mut c = Canvas::new(28);
        c.fill_ellipse(0.5, 0.5, 0.3, 0.2, &Transform::identity(), 1.0);
        assert_eq!(c.pixels()[14 * 28 + 14], 1.0);
        assert!(c.ink() > 0.05 && c.ink() < 0.5);
    }

    #[test]
    fn blur_preserves_mass_in_interior() {
        let mut c = Canvas::new(28);
        c.fill_polygon(
            &[(0.4, 0.4), (0.6, 0.4), (0.6, 0.6), (0.4, 0.6)],
            &Transform::identity(),
            1.0,
        );
        let before = c.ink();
        c.blur();
        let after = c.ink();
        assert!((before - after).abs() / before < 0.05);
        // blur spreads: the hard edge softens
        assert!(c.pixels().iter().any(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let mut a = Canvas::new(28);
        let mut b = Canvas::new(28);
        a.add_noise(&mut r1, 0.1);
        b.add_noise(&mut r2, 0.1);
        assert_eq!(a, b);
        assert!(a.pixels().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let mut c = Canvas::new(28);
        c.add_noise(&mut r1, 0.0); // no-op
        assert_eq!(c.ink(), 0.0);
    }

    #[test]
    fn arc_points_endpoints() {
        let pts = arc_points(0.5, 0.5, 0.2, 0.2, 0.0, std::f32::consts::PI, 8);
        assert_eq!(pts.len(), 9);
        assert!((pts[0].0 - 0.7).abs() < 1e-6);
        assert!((pts[8].0 - 0.3).abs() < 1e-5);
    }

    #[test]
    fn into_tensor_shape() {
        let t = Canvas::new(28).into_tensor();
        assert_eq!(t.shape(), &[784]);
    }

    #[test]
    fn transform_identity_is_noop() {
        let p = (0.3, 0.8);
        let q = Transform::identity().apply(p);
        assert!((p.0 - q.0).abs() < 1e-6 && (p.1 - q.1).abs() < 1e-6);
    }

    #[test]
    fn transform_rotation_about_centre() {
        let tf = Transform { rotation: std::f32::consts::PI, ..Transform::identity() };
        let q = tf.apply((0.0, 0.5));
        assert!((q.0 - 1.0).abs() < 1e-6 && (q.1 - 0.5).abs() < 1e-6);
    }
}
