//! In-memory datasets and minibatch iteration.

use rand::Rng;
use simpadv_tensor::{shuffled_indices, Tensor};

/// A labelled image dataset held in memory.
///
/// Images are stored flattened as `[n, pixels]` — the layout the MLP
/// classifiers and l∞ attacks consume directly. [`Dataset::images_nchw`]
/// reshapes to `[n, 1, side, side]` for convolutional backbones.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from flattened images and labels.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not `[n, d]`, the label count differs from
    /// `n`, or any label is `>= num_classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.rank(), 2, "dataset images must be [n, d]");
        assert_eq!(images.shape()[0], labels.len(), "image/label count mismatch");
        assert!(num_classes > 0, "need at least one class");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Dataset { images, labels, num_classes }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The flattened image tensor `[n, d]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Images reshaped to `[n, 1, side, side]` for convolutional networks.
    ///
    /// # Panics
    ///
    /// Panics if the pixel count is not a perfect square.
    pub fn images_nchw(&self) -> Tensor {
        let d = self.images.shape()[1];
        let side = (d as f32).sqrt().round() as usize;
        assert_eq!(side * side, d, "pixel count {d} is not square");
        self.images.reshape(&[self.len(), 1, side, side])
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Returns the subset at the given example indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let images = self.images.gather_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset { images, labels, num_classes: self.num_classes }
    }

    /// Splits into `(first, rest)` where `first` holds the first `count`
    /// examples.
    ///
    /// # Panics
    ///
    /// Panics if `count > len`.
    pub fn split_at(&self, count: usize) -> (Dataset, Dataset) {
        assert!(count <= self.len(), "split {count} exceeds dataset size {}", self.len());
        let head: Vec<usize> = (0..count).collect();
        let tail: Vec<usize> = (count..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }

    /// Iterates over minibatches in a fresh random order drawn from `rng`.
    ///
    /// The final batch may be smaller than `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches<R: Rng + ?Sized>(&self, batch_size: usize, rng: &mut R) -> BatchIter<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIter { dataset: self, order: shuffled_indices(rng, self.len()), batch_size, cursor: 0 }
    }

    /// Iterates over minibatches in dataset order (no shuffling) —
    /// used for evaluation and for trainers that maintain per-example
    /// state aligned with dataset indices.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches_sequential(&self, batch_size: usize) -> BatchIter<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        BatchIter { dataset: self, order: (0..self.len()).collect(), batch_size, cursor: 0 }
    }
}

/// Iterator over `(indices, images, labels)` minibatches.
///
/// The yielded `indices` identify which dataset rows form the batch, so
/// trainers with per-example state (the proposed method's persistent
/// adversarial examples) can write results back.
#[derive(Debug)]
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Vec<usize>, Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx: Vec<usize> = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        let images = self.dataset.images.gather_rows(&idx);
        let labels = idx.iter().map(|&i| self.dataset.labels[i]).collect();
        Some((idx, images, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::arange(n * 4).reshape(&[n, 4]);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3)
    }

    #[test]
    fn construction_validates() {
        assert_eq!(toy(9).len(), 9);
        assert!(!toy(1).is_empty());
        assert_eq!(toy(9).num_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        Dataset::new(Tensor::zeros(&[2, 4]), vec![0, 5], 3);
    }

    #[test]
    fn subset_gathers_rows_and_labels() {
        let d = toy(6);
        let s = d.subset(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(s.images().row(0), d.images().row(5));
    }

    #[test]
    fn split_at_partitions() {
        let d = toy(10);
        let (a, b) = d.split_at(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(b.images().row(0), d.images().row(7));
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy(10);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 10];
        let mut total = 0;
        for (idx, images, labels) in d.batches(3, &mut rng) {
            assert_eq!(images.shape()[0], labels.len());
            assert!(images.shape()[0] <= 3);
            for &i in &idx {
                assert!(!seen[i], "index {i} repeated");
                seen[i] = true;
            }
            total += idx.len();
        }
        assert_eq!(total, 10);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sequential_batches_preserve_order() {
        let d = toy(7);
        let firsts: Vec<usize> = d.batches_sequential(2).map(|(idx, _, _)| idx[0]).collect();
        assert_eq!(firsts, vec![0, 2, 4, 6]);
    }

    #[test]
    fn batch_rows_match_indices() {
        let d = toy(9);
        let mut rng = StdRng::seed_from_u64(4);
        for (idx, images, labels) in d.batches(4, &mut rng) {
            for (k, &i) in idx.iter().enumerate() {
                assert_eq!(images.row(k), d.images().row(i));
                assert_eq!(labels[k], d.labels()[i]);
            }
        }
    }

    #[test]
    fn images_nchw_reshapes() {
        let images = Tensor::zeros(&[3, 16]);
        let d = Dataset::new(images, vec![0, 1, 2], 3);
        assert_eq!(d.images_nchw().shape(), &[3, 1, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let d = toy(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = d.batches(0, &mut rng);
    }
}
