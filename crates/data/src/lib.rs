//! # simpadv-data
//!
//! Synthetic image datasets for the `simpadv` reproduction of *"Using
//! Intuition from Empirical Properties to Simplify Adversarial Training
//! Defense"* (Liu et al., 2019).
//!
//! The paper evaluates on MNIST and Fashion-MNIST. Those corpora are not
//! available in this environment, so this crate generates **procedural
//! stand-ins** with the properties the experiments actually depend on:
//!
//! * 28×28 grayscale images in `[0, 1]`, ten classes, balanced;
//! * within-class variation (translation, rotation, scale, stroke
//!   thickness, pixel noise) so classifiers must generalize;
//! * a "digits" task ([`SynthDataset::Mnist`]) that small networks learn to
//!   high accuracy, and a deliberately harder "garments" task
//!   ([`SynthDataset::Fashion`]) with confusable classes (t-shirt vs shirt
//!   vs pullover vs coat), mirroring the MNIST vs Fashion-MNIST gap;
//! * full determinism under a seed.
//!
//! ## Example
//!
//! ```
//! use simpadv_data::{Dataset, SynthConfig, SynthDataset};
//!
//! let data = SynthDataset::Mnist.generate(&SynthConfig::new(100, 7));
//! assert_eq!(data.len(), 100);
//! assert_eq!(data.images().shape(), &[100, 784]);
//! assert!(data.images().as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
//! ```

mod ascii;
mod dataset;
mod fashion;
mod glyphs;
mod pgm;
mod raster;
mod synth;

pub use ascii::{ascii_image, ascii_pair};
pub use dataset::{BatchIter, Dataset};
pub use fashion::FASHION_NAMES;
pub use pgm::{save_pgm, write_pgm};
pub use raster::{arc_points, Canvas, Transform};
pub use synth::{SynthConfig, SynthDataset, CLASS_COUNT, IMAGE_PIXELS, IMAGE_SIDE};
