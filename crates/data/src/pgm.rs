//! PGM (portable graymap) export — dependency-free image files that any
//! viewer opens, for inspecting datasets and adversarial examples.

use simpadv_tensor::Tensor;
use std::io::{self, Write};
use std::path::Path;

/// Writes a flattened square grayscale image as binary PGM (P5).
///
/// Intensities are clamped to `[0, 1]` and quantized to 8 bits.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics if the tensor is not rank 1 with a square length.
pub fn write_pgm<W: Write>(image: &Tensor, mut writer: W) -> io::Result<()> {
    assert_eq!(image.rank(), 1, "write_pgm expects a flattened image");
    let side = (image.len() as f32).sqrt().round() as usize;
    assert_eq!(side * side, image.len(), "write_pgm expects a square image");
    write!(writer, "P5\n{side} {side}\n255\n")?;
    let bytes: Vec<u8> =
        image.as_slice().iter().map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8).collect();
    writer.write_all(&bytes)
}

/// Writes an image to a `.pgm` file, atomically: the bytes land in a
/// temp file that is renamed into place, so a crash never leaves a
/// half-written image behind.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics if the tensor is not a flattened square image.
pub fn save_pgm<P: AsRef<Path>>(image: &Tensor, path: P) -> io::Result<()> {
    let mut buf = Vec::new();
    write_pgm(image, &mut buf)?;
    simpadv_resilience::atomic_write(path.as_ref(), &buf).map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_payload() {
        let img = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.25], &[4]);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let header = b"P5\n2 2\n255\n";
        assert_eq!(&buf[..header.len()], header);
        let pixels = &buf[header.len()..];
        assert_eq!(pixels, &[0u8, 255, 128, 64]);
    }

    #[test]
    fn out_of_range_values_clamped() {
        let img = Tensor::from_vec(vec![-2.0, 3.0, 0.0, 0.0], &[4]);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let n = buf.len();
        assert_eq!(&buf[n - 4..], &[0u8, 255, 0, 0]);
    }

    #[test]
    fn save_creates_a_readable_file() {
        let dir = std::env::temp_dir().join("simpadv-pgm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("digit.pgm");
        let img = Tensor::zeros(&[16]);
        save_pgm(&img, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P5\n4 4\n255\n"));
        assert_eq!(data.len(), b"P5\n4 4\n255\n".len() + 16);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let mut buf = Vec::new();
        let _ = write_pgm(&Tensor::zeros(&[5]), &mut buf);
    }
}
