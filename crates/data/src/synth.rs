//! Dataset synthesis: jittered rendering of glyph templates.

use crate::dataset::Dataset;
use crate::fashion::draw_garment;
use crate::glyphs::draw_digit;
use crate::raster::{Canvas, Transform};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use simpadv_tensor::Tensor;

/// Image side length in pixels (matches MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Flattened pixel count per image.
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of classes in both synthetic tasks.
pub const CLASS_COUNT: usize = 10;

/// Which synthetic task to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SynthDataset {
    /// Digit glyphs — the MNIST stand-in (ε = 0.3 in the paper).
    Mnist,
    /// Garment silhouettes — the Fashion-MNIST stand-in (ε = 0.2); contains
    /// deliberately confusable classes.
    Fashion,
}

impl SynthDataset {
    /// A short identifier used in reports (`"mnist"` / `"fashion"`).
    pub fn id(self) -> &'static str {
        match self {
            SynthDataset::Mnist => "mnist",
            SynthDataset::Fashion => "fashion",
        }
    }

    /// The paper's total perturbation budget ε for this dataset.
    pub fn paper_epsilon(self) -> f32 {
        match self {
            SynthDataset::Mnist => 0.3,
            SynthDataset::Fashion => 0.2,
        }
    }

    /// Generates a dataset according to `config`.
    pub fn generate(self, config: &SynthConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.samples;
        let mut pixels = Vec::with_capacity(n * IMAGE_PIXELS);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // balanced classes, deterministic order; the loader shuffles
            let class = i % CLASS_COUNT;
            let canvas = self.render_sample(class, config, &mut rng);
            pixels.extend_from_slice(canvas.pixels());
            labels.push(class);
        }
        Dataset::new(Tensor::from_vec(pixels, &[n, IMAGE_PIXELS]), labels, CLASS_COUNT)
    }

    fn render_sample(self, class: usize, config: &SynthConfig, rng: &mut StdRng) -> Canvas {
        let j = config.jitter;
        let tf = Transform {
            rotation: rng.random_range(-0.14f32..0.14) * j, // ±8° at full jitter
            scale_x: 1.0 + rng.random_range(-0.1f32..0.08) * j,
            scale_y: 1.0 + rng.random_range(-0.1f32..0.08) * j,
            dx: rng.random_range(-0.05f32..0.05) * j,
            dy: rng.random_range(-0.05f32..0.05) * j,
        };
        let thickness = 3.0 + rng.random_range(-0.6f32..0.8) * j;
        let mut canvas = Canvas::new(IMAGE_SIDE);
        for _ in 0..config.clutter {
            let a = (rng.random_range(0.05..0.95), rng.random_range(0.05..0.95));
            let b = (rng.random_range(0.05..0.95), rng.random_range(0.05..0.95));
            canvas.stroke_polyline(&[a, b], &Transform::identity(), 1.2, 0.35);
        }
        match self {
            SynthDataset::Mnist => draw_digit(&mut canvas, class, &tf, thickness),
            SynthDataset::Fashion => draw_garment(&mut canvas, class, &tf, thickness),
        }
        canvas.blur();
        // MNIST-like contrast: push stroke interiors to saturation and the
        // background to black, leaving a thin soft transition band. Robust
        // separability at the paper's ε (0.3/0.2) depends on this — real
        // MNIST pixels are near-binary too.
        canvas.sharpen(0.2, 4.0);
        canvas.add_noise(rng, config.noise_sigma);
        canvas
    }
}

/// Generation parameters.
///
/// # Example
///
/// ```
/// use simpadv_data::{SynthConfig, SynthDataset};
///
/// let cfg = SynthConfig::new(50, 1).with_noise(0.02).with_jitter(0.5);
/// let data = SynthDataset::Fashion.generate(&cfg);
/// assert_eq!(data.len(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of images to generate.
    pub samples: usize,
    /// RNG seed; equal seeds give identical datasets.
    pub seed: u64,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_sigma: f32,
    /// Jitter amplitude in `[0, 1]`: 0 renders clean templates, 1 applies
    /// the full rotation/scale/translation/thickness variation.
    pub jitter: f32,
    /// Number of faint distractor strokes drawn behind each glyph —
    /// class-independent clutter that makes the task harder and gives
    /// robust training non-robust features to learn to ignore.
    pub clutter: usize,
}

impl SynthConfig {
    /// A config with the default noise (0.03) and full jitter.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize, seed: u64) -> Self {
        assert!(samples > 0, "need at least one sample");
        SynthConfig { samples, seed, noise_sigma: 0.03, jitter: 1.0, clutter: 0 }
    }

    /// Overrides the noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_noise(mut self, sigma: f32) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma = sigma;
        self
    }

    /// Adds `count` faint random distractor strokes per image.
    pub fn with_clutter(mut self, count: usize) -> Self {
        self.clutter = count;
        self
    }

    /// Overrides the jitter amplitude.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= jitter <= 1`.
    pub fn with_jitter(mut self, jitter: f32) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter {jitter} not in [0, 1]");
        self.jitter = jitter;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::new(40, 123);
        let a = SynthDataset::Mnist.generate(&cfg);
        let b = SynthDataset::Mnist.generate(&cfg);
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDataset::Mnist.generate(&SynthConfig::new(40, 1));
        let b = SynthDataset::Mnist.generate(&SynthConfig::new(40, 2));
        assert_ne!(a.images(), b.images());
    }

    #[test]
    fn classes_are_balanced() {
        let d = SynthDataset::Fashion.generate(&SynthConfig::new(100, 5));
        let mut counts = [0usize; 10];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn pixels_in_unit_interval() {
        let d = SynthDataset::Mnist.generate(&SynthConfig::new(30, 9));
        assert!(d.images().as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn within_class_variation_exists() {
        let d = SynthDataset::Mnist.generate(&SynthConfig::new(30, 9));
        // rows 0 and 10 are both class 0 but jittered differently
        assert_eq!(d.labels()[0], d.labels()[10]);
        assert_ne!(d.images().row(0), d.images().row(10));
    }

    #[test]
    fn zero_jitter_zero_noise_gives_clean_templates() {
        let cfg = SynthConfig::new(20, 3).with_noise(0.0).with_jitter(0.0);
        let d = SynthDataset::Mnist.generate(&cfg);
        // two renders of the same class are now identical
        assert_eq!(d.images().row(0), d.images().row(10));
    }

    #[test]
    fn clutter_adds_ink_without_breaking_range() {
        let clean = SynthDataset::Mnist.generate(&SynthConfig::new(20, 4).with_noise(0.0));
        let cluttered =
            SynthDataset::Mnist.generate(&SynthConfig::new(20, 4).with_noise(0.0).with_clutter(4));
        assert!(cluttered.images().mean() > clean.images().mean());
        assert!(cluttered.images().as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn epsilon_and_ids_match_paper() {
        assert_eq!(SynthDataset::Mnist.paper_epsilon(), 0.3);
        assert_eq!(SynthDataset::Fashion.paper_epsilon(), 0.2);
        assert_eq!(SynthDataset::Mnist.id(), "mnist");
        assert_eq!(SynthDataset::Fashion.id(), "fashion");
    }
}
