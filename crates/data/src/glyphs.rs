//! Procedural digit glyphs (the synthetic MNIST stand-in).
//!
//! Each digit 0–9 is a small program of polyline strokes in unit
//! coordinates. Shapes were chosen to match the topology of handwritten
//! digits (loops, tails, crossings) so that confusions mirror the familiar
//! MNIST ones (3/5/8, 4/9, 1/7).

use crate::raster::{arc_points, Canvas, Transform};
use std::f32::consts::{FRAC_PI_2, PI, TAU};

/// Draws the digit `class` (0–9) onto the canvas.
///
/// # Panics
///
/// Panics if `class > 9`.
pub(crate) fn draw_digit(canvas: &mut Canvas, class: usize, tf: &Transform, thickness: f32) {
    assert!(class <= 9, "digit class {class} out of range (0-9)");
    let t = thickness;
    match class {
        0 => {
            canvas.stroke_polyline(&arc_points(0.5, 0.5, 0.22, 0.32, 0.0, TAU, 24), tf, t, 1.0);
        }
        1 => {
            canvas.stroke_polyline(&[(0.42, 0.3), (0.52, 0.18), (0.52, 0.82)], tf, t, 1.0);
        }
        2 => {
            let mut pts = arc_points(0.5, 0.33, 0.2, 0.15, -PI, 0.2, 12);
            pts.push((0.32, 0.8));
            pts.push((0.72, 0.8));
            canvas.stroke_polyline(&pts, tf, t, 1.0);
        }
        3 => {
            canvas.stroke_polyline(
                &arc_points(0.47, 0.34, 0.18, 0.16, -2.4, FRAC_PI_2, 12),
                tf,
                t,
                1.0,
            );
            canvas.stroke_polyline(
                &arc_points(0.47, 0.66, 0.2, 0.16, -FRAC_PI_2, 2.4, 12),
                tf,
                t,
                1.0,
            );
        }
        4 => {
            canvas.stroke_polyline(
                &[(0.62, 0.82), (0.62, 0.18), (0.3, 0.6), (0.75, 0.6)],
                tf,
                t,
                1.0,
            );
        }
        5 => {
            let mut pts = vec![(0.68, 0.2), (0.36, 0.2), (0.34, 0.47)];
            pts.extend(arc_points(0.48, 0.62, 0.19, 0.17, -FRAC_PI_2, 2.6, 12));
            canvas.stroke_polyline(&pts, tf, t, 1.0);
        }
        6 => {
            let mut pts = vec![(0.62, 0.18)];
            pts.extend(arc_points(0.48, 0.62, 0.17, 0.17, -2.4, 2.0, 16));
            canvas.stroke_polyline(&pts, tf, t, 1.0);
            canvas.stroke_polyline(&arc_points(0.48, 0.62, 0.17, 0.17, 0.0, TAU, 16), tf, t, 1.0);
        }
        7 => {
            canvas.stroke_polyline(&[(0.3, 0.2), (0.72, 0.2), (0.45, 0.82)], tf, t, 1.0);
        }
        8 => {
            canvas.stroke_polyline(&arc_points(0.5, 0.35, 0.16, 0.14, 0.0, TAU, 18), tf, t, 1.0);
            canvas.stroke_polyline(&arc_points(0.5, 0.66, 0.19, 0.16, 0.0, TAU, 18), tf, t, 1.0);
        }
        9 => {
            canvas.stroke_polyline(&arc_points(0.5, 0.38, 0.17, 0.16, 0.0, TAU, 18), tf, t, 1.0);
            canvas.stroke_polyline(&[(0.67, 0.38), (0.62, 0.82)], tf, t, 1.0);
        }
        _ => unreachable!("class range checked on entry"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(class: usize) -> Canvas {
        let mut c = Canvas::new(28);
        draw_digit(&mut c, class, &Transform::identity(), 2.0);
        c
    }

    #[test]
    fn every_digit_renders_some_ink() {
        for class in 0..10 {
            let c = render(class);
            assert!(c.ink() > 0.01, "digit {class} has ink {}", c.ink());
            assert!(c.ink() < 0.5, "digit {class} floods the canvas");
        }
    }

    #[test]
    fn digits_are_pairwise_distinct() {
        // l1 distance between any pair of clean renders must be substantial
        let renders: Vec<Canvas> = (0..10).map(render).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let d: f32 = renders[i]
                    .pixels()
                    .iter()
                    .zip(renders[j].pixels())
                    .map(|(&a, &b)| (a - b).abs())
                    .sum();
                assert!(d > 10.0, "digits {i} and {j} too similar (l1 {d})");
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(3), render(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_ten_rejected() {
        let mut c = Canvas::new(28);
        draw_digit(&mut c, 10, &Transform::identity(), 2.0);
    }

    #[test]
    fn one_is_sparser_than_eight() {
        assert!(render(1).ink() < render(8).ink());
    }
}
