//! Fixture-based end-to-end tests for the semantic rules (S1–S5).
//!
//! Each fixture under `tests/fixtures/<rule>/` is a miniature workspace
//! with one planted violation; the combined acceptance test at the
//! bottom proves both halves of the contract at once: every planted
//! violation is detected with a call-chain diagnostic, and the real
//! repository wall (`--deny` over all fifteen rules) reports nothing.

use simpadv_lint::{collect_files, config, run, Diagnostic};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

fn run_fixture(name: &str, toml: &str, spec: &str) -> Vec<Diagnostic> {
    let ws = collect_files(&fixture(name)).expect("walk fixture");
    assert!(!ws.files.is_empty(), "fixture `{name}` has no files");
    let cfg = config::parse(toml).expect("fixture config");
    run(&ws, &cfg, Some(spec))
}

const S2_TOML: &str = r#"
[[taint]]
path = "crates/nn/src/stats.rs"
item = "add_sample"
reason = "fixture sink"
"#;

#[test]
fn s1_fixture_multi_hop_panic_chain() {
    let d = run_fixture("s1", "", "S1");
    assert_eq!(d.len(), 1, "diags: {d:?}");
    assert_eq!(d[0].rule, "S1");
    assert_eq!(d[0].item, "predict");
    assert_eq!(d[0].chain.len(), 3, "chain: {:?}", d[0].chain);
    assert!(d[0].chain[0].contains("predict"));
    assert!(d[0].chain[1].contains("normalize"));
    assert!(d[0].chain[2].contains("fetch"));
    assert!(d[0].message.contains("2 calls deep"));
}

#[test]
fn s2_fixture_two_crate_taint_path() {
    let d = run_fixture("s2", S2_TOML, "S2");
    assert_eq!(d.len(), 1, "diags: {d:?}");
    assert_eq!(d[0].rule, "S2");
    assert!(d[0].message.contains("wall-clock"));
    // The chain crosses the crate boundary: nn sink -> tensor source.
    assert_eq!(d[0].chain.len(), 2, "chain: {:?}", d[0].chain);
    assert!(d[0].chain[0].contains("simpadv_nn") && d[0].chain[0].contains("add_sample"));
    assert!(d[0].chain[1].contains("simpadv_tensor") && d[0].chain[1].contains("now_units"));
}

#[test]
fn s3_fixture_atomic_reduction_in_parallel_closure() {
    let d = run_fixture("s3", "", "S3");
    assert_eq!(d.len(), 1, "diags: {d:?}");
    assert_eq!(d[0].rule, "S3");
    assert!(d[0].message.contains("fetch_add"));
    assert!(!d[0].chain.is_empty());
}

#[test]
fn s4_fixture_undeclared_accumulation_loop() {
    let d = run_fixture("s4", "", "S4");
    assert_eq!(d.len(), 1, "diags: {d:?}");
    assert_eq!(d[0].rule, "S4");
    assert_eq!(d[0].item, "dot");
    assert!(!d[0].chain.is_empty());

    // Declaring the kernel is the sanctioned way out.
    let declared = r#"
[[kernel]]
path = "crates/tensor/src/acc.rs"
item = "dot"
reason = "fixture kernel"
"#;
    assert!(run_fixture("s4", declared, "S4").is_empty());
}

#[test]
fn s5_fixture_missing_and_drifting_twins() {
    let d = run_fixture("s5", "", "S5");
    assert_eq!(d.len(), 2, "diags: {d:?}");
    assert!(d.iter().any(|x| x.item == "try_split" && x.message.contains("no panicking twin")));
    let drift = d.iter().find(|x| x.item == "resize").expect("resize diagnostic");
    assert!(drift.message.contains("delegating"));
    assert_eq!(drift.chain.len(), 2, "chain: {:?}", drift.chain);
}

/// The acceptance gate for this analyzer: the planted fixtures all fire
/// with call-chain diagnostics while the full workspace wall — all rules,
/// real `lint.toml` — reports zero diagnostics.
#[test]
fn fixtures_fire_while_the_real_wall_is_clean() {
    let planted: [(&str, &str, &str); 5] = [
        ("s1", "", "S1"),
        ("s2", S2_TOML, "S2"),
        ("s3", "", "S3"),
        ("s4", "", "S4"),
        ("s5", "", "S5"),
    ];
    for (name, toml, spec) in planted {
        let d = run_fixture(name, toml, spec);
        assert!(!d.is_empty(), "fixture `{name}` produced no diagnostics");
        assert!(
            d.iter().any(|x| !x.chain.is_empty()),
            "fixture `{name}` produced no call-chain diagnostic: {d:?}"
        );
    }

    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let ws = collect_files(root).expect("walk repository");
    let cfg_src = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let cfg = config::parse(&cfg_src).expect("valid lint.toml");
    let diags = run(&ws, &cfg, None);
    assert!(
        diags.is_empty(),
        "the workspace violates its own invariants:\n{}",
        diags.iter().map(|d| d.render()).collect::<String>()
    );
}
