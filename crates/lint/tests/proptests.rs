//! Property tests for the call-graph machinery: reachability must be
//! monotone under edge addition, and the DOT export must round-trip the
//! node and edge counts through its own parser.

use proptest::prelude::*;
use simpadv_lint::callgraph::{parse_dot_counts, CallGraph};
use simpadv_lint::symbols::FnId;

fn edge_set(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(FnId, FnId)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #[test]
    fn reachability_is_monotone_under_edge_addition(
        n in 1u32..30,
        edges in edge_set(30, 60),
        extra in edge_set(30, 10),
        start in 0u32..30,
    ) {
        let clamp = |es: &[(FnId, FnId)]| -> Vec<(FnId, FnId)> {
            es.iter().map(|&(a, b)| (a % n, b % n)).collect()
        };
        let base = clamp(&edges);
        let mut grown = base.clone();
        grown.extend(clamp(&extra));
        let start = start % n;

        let before = CallGraph::from_edges(n as usize, &base).reachable(start);
        let after = CallGraph::from_edges(n as usize, &grown).reachable(start);
        prop_assert!(
            before.is_subset(&after),
            "adding edges removed reachable nodes: {before:?} vs {after:?}"
        );
    }

    #[test]
    fn dot_export_round_trips_node_and_edge_counts(
        n in 1u32..30,
        edges in edge_set(30, 60),
    ) {
        let clamped: Vec<(FnId, FnId)> =
            edges.iter().map(|&(a, b)| (a % n, b % n)).collect();
        let g = CallGraph::from_edges(n as usize, &clamped);
        let counts = parse_dot_counts(&g.to_dot());
        prop_assert_eq!(counts, Some((g.node_count(), g.edge_count())));
    }
}
