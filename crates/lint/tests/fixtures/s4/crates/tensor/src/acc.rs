//! S4 fixture: a raw float-accumulation loop outside any declared
//! canonical kernel.

/// Dot product with its own private accumulation order.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0;
    for i in 0..a.len() {
        s += a[i] * b[i];
    }
    s
}
