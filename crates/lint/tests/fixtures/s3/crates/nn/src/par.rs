//! S3 fixture: a closure handed to a parallel entry point reduces
//! through an atomic — the scheduler picks the combination order.

/// Sums activations by racing on an atomic counter.
pub fn sum_parallel(rt: &Runtime, data: &[f32], total: &AtomicU64) {
    rt.par_chunks(data.len(), 64, |r| {
        for i in r {
            total.fetch_add(data[i] as u64, Ordering::Relaxed);
        }
    });
}
