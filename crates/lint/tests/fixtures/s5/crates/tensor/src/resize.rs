//! S5 fixture: one `try_*` form whose panicking twin re-implements the
//! checks, and one with no twin at all.

impl Grid {
    /// Fallible resize.
    ///
    /// # Errors
    ///
    /// Rejects a zero target size.
    pub fn try_resize(&self, n: usize) -> Result<Grid, String> {
        if n == 0 {
            return Err("zero size".to_string());
        }
        Ok(self.clone())
    }

    /// Panicking twin that drifts from the fallible form.
    pub fn resize(&self, n: usize) -> Grid {
        assert!(n != 0, "zero size");
        self.clone()
    }

    /// Fallible splitter with no panicking twin exposed.
    ///
    /// # Errors
    ///
    /// Rejects an empty grid.
    pub fn try_split(&self) -> Result<(Grid, Grid), String> {
        if self.cells == 0 {
            return Err("empty".to_string());
        }
        Ok((self.clone(), self.clone()))
    }
}
