//! S2 fixture, crate two: a declared sink whose call tree crosses a
//! crate boundary to reach the wall clock.

use simpadv_tensor::timing::now_units;

/// Declared `[[taint]]` sink in the fixture config.
pub fn add_sample(n: u64) -> u64 {
    n + now_units()
}
