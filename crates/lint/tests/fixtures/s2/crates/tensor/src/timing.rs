//! S2 fixture, crate one: the nondeterministic source.

use std::time::Instant;

/// Reads the wall clock — a determinism-taint source.
pub fn now_units() -> u64 {
    Instant::now().elapsed().as_micros() as u64
}
