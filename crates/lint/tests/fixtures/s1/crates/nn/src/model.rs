//! S1 fixture: a public API of a panic-free crate reaches an
//! unsanctioned panic site two hops down the call graph.

/// Public entry point; panics nowhere in its own body.
pub fn predict(x: Option<f32>) -> f32 {
    normalize(x)
}

fn normalize(x: Option<f32>) -> f32 {
    fetch(x) * 2.0
}

fn fetch(x: Option<f32>) -> f32 {
    x.unwrap()
}
