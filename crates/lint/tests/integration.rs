//! End-to-end tests: the analyzer over real directory trees.
//!
//! Two layers: a synthetic fixture workspace exercising the walker +
//! allowlist + rule pipeline, and a self-check that the actual repository
//! is clean — the latter is the "lint wall": any rule violation introduced
//! anywhere in the workspace fails this test.

use simpadv_lint::{collect_files, config, run, Workspace};
use std::path::{Path, PathBuf};

/// Creates a unique scratch directory for a fixture tree.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("simpadv-lint-{tag}-{}", std::process::id()));
        // A leftover tree from a crashed run would pollute the fixture.
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("clear stale scratch dir");
        }
        std::fs::create_dir_all(&root).expect("create scratch dir");
        Scratch { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn repo_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).expect("workspace root")
}

#[test]
fn fixture_workspace_pipeline() {
    let s = Scratch::new("fixture");
    s.write(
        "crates/tensor/src/ops.rs",
        r#"
/// Documented and clean.
pub fn fine(x: f32) -> f32 { x + 1.0 }

pub fn bad(x: Option<f32>) -> f32 { x.unwrap() }
"#,
    );
    s.write(
        "crates/attacks/src/fgsm.rs",
        r#"
impl Fgsm {
    pub fn new(epsilon: f32) -> Self { Self { epsilon } }
}
"#,
    );
    s.write(
        "crates/nn/src/pool.rs",
        "fn backward(&self) { self.cache.expect(\"forward first\"); }",
    );
    // target/ must be skipped even when it contains .rs files.
    s.write("target/debug/build/gen.rs", "fn g() { x.unwrap(); }");

    let ws = collect_files(&s.root).expect("walk fixture");
    assert_eq!(ws.files.len(), 3, "target/ must not be walked");

    // Without an allowlist: unwrap (R1), undocumented panic (R2),
    // unvalidated epsilon (R3), nn expect (R1).
    let diags = run(&ws, &config::Config::default(), None);
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"R1"), "diags: {diags:?}");
    assert!(rules.contains(&"R2"), "diags: {diags:?}");
    assert!(rules.contains(&"R3"), "diags: {diags:?}");
    assert_eq!(diags.iter().filter(|d| d.rule == "R1").count(), 2);

    // Allowlisting the nn contract removes exactly that diagnostic.
    let cfg = config::parse(
        "[[allow]]\nrule = \"R1\"\npath = \"crates/nn/src/pool.rs\"\nitem = \"expect\"\nreason = \"documented contract\"\n",
    )
    .expect("config");
    let filtered = run(&ws, &cfg, None);
    assert_eq!(filtered.len(), diags.len() - 1);
    assert!(!filtered.iter().any(|d| d.path == "crates/nn/src/pool.rs"));

    // Single-rule selection.
    let only_r3 = run(&ws, &config::Config::default(), Some("R3"));
    assert!(only_r3.iter().all(|d| d.rule == "R3"));
    assert_eq!(only_r3.len(), 1);
}

#[test]
fn repository_is_lint_clean() {
    let root = repo_root();
    let ws = collect_files(root).expect("walk repository");
    assert!(
        ws.files.len() > 50,
        "walker found suspiciously few files ({}): wrong root?",
        ws.files.len()
    );
    let cfg_src = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let cfg = config::parse(&cfg_src).expect("valid lint.toml");
    let diags = run(&ws, &cfg, None);
    assert!(
        diags.is_empty(),
        "the workspace violates its own invariants:\n{}",
        diags.iter().map(|d| d.render()).collect::<String>()
    );
}

#[test]
fn planting_an_unwrap_in_tensor_ops_fails_the_run() {
    // The acceptance scenario: copy the real tensor sources into a fixture,
    // plant an unwrap() in ops.rs, and confirm the wall catches it.
    let root = repo_root();
    let s = Scratch::new("planted");
    let ops =
        std::fs::read_to_string(root.join("crates/tensor/src/ops.rs")).expect("read real ops.rs");
    let planted = ops.replacen(
        "impl Tensor {",
        "impl Tensor {\n    /// Planted violation.\n    pub fn planted(x: Option<f32>) -> f32 { x.unwrap() }\n",
        1,
    );
    assert_ne!(planted, ops, "marker line not found in ops.rs");
    s.write("crates/tensor/src/ops.rs", &planted);

    let ws = collect_files(&s.root).expect("walk planted fixture");
    let diags = run(&ws, &config::Config::default(), None);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "R1" && d.path == "crates/tensor/src/ops.rs" && d.item == "unwrap"),
        "planted unwrap not caught: {diags:?}"
    );
}

#[test]
fn rendering_is_rustc_style_and_json_is_parseable_shape() {
    let ws = Workspace {
        files: vec![simpadv_lint::FileUnit::from_source(
            "crates/tensor/src/x.rs",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }",
        )],
    };
    let diags = run(&ws, &config::Config::default(), Some("R1"));
    assert_eq!(diags.len(), 1);
    let text = diags[0].render();
    assert!(text.starts_with("error[R1]: "));
    assert!(text.contains("--> crates/tensor/src/x.rs:1"));
    let json = simpadv_lint::render_json(&diags);
    assert!(json.contains("\"rule\":\"R1\""));
    assert!(json.contains("\"line\":1"));
}
