//! `lint.toml` allowlist: intentional, documented exceptions to the rules.
//!
//! The file is a sequence of `[[allow]]` tables:
//!
//! ```toml
//! [[allow]]
//! rule = "R1"
//! path = "crates/nn/src/pool.rs"
//! item = "expect"          # optional: restrict to one offending item
//! reason = "backward() has a documented forward-first contract"
//! ```
//!
//! `rule` and `path` are required; `reason` is required too so every
//! exception carries its justification into review. The parser covers
//! exactly this subset of TOML (comments, `[[allow]]` headers, and
//! `key = "string"` pairs) — anything else is a configuration error.

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id, e.g. `R1`.
    pub rule: String,
    /// Workspace-relative path (forward slashes) the entry applies to.
    pub path: String,
    /// Optional item filter: function name or offending identifier.
    pub item: Option<String>,
    /// Human justification (required).
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Default)]
pub struct Config {
    /// All allowlist entries.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Whether a diagnostic for `rule` at `path` (with offending `item`)
    /// is allowlisted.
    pub fn is_allowed(&self, rule: &str, path: &str, item: &str) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && a.path == path && a.item.as_deref().is_none_or(|it| it == item)
        })
    }
}

/// Errors from [`parse`].
#[derive(Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

/// Parses `lint.toml` source text.
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    struct Partial {
        line: usize,
        rule: Option<String>,
        path: Option<String>,
        item: Option<String>,
        reason: Option<String>,
    }
    fn finish(p: Partial) -> Result<AllowEntry, ConfigError> {
        Ok(AllowEntry {
            rule: p.rule.ok_or_else(|| err(p.line, "[[allow]] missing `rule`"))?,
            path: p.path.ok_or_else(|| err(p.line, "[[allow]] missing `path`"))?,
            item: p.item,
            reason: p.reason.ok_or_else(|| {
                err(p.line, "[[allow]] missing `reason` — every exception must be justified")
            })?,
        })
    }

    let mut cfg = Config::default();
    let mut current: Option<Partial> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                cfg.allows.push(finish(p)?);
            }
            current =
                Some(Partial { line: lineno, rule: None, path: None, item: None, reason: None });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                lineno,
                format!("unsupported section `{line}` (only [[allow]] is recognized)"),
            ));
        }
        let Some(eq) = line.find('=') else {
            return Err(err(lineno, format!("expected `key = \"value\"`, found `{line}`")));
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        let value = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')).ok_or_else(|| {
            err(lineno, format!("value for `{key}` must be a double-quoted string"))
        })?;
        let Some(p) = current.as_mut() else {
            return Err(err(lineno, format!("`{key}` outside of an [[allow]] table")));
        };
        match key {
            "rule" => p.rule = Some(value.to_string()),
            "path" => p.path = Some(value.to_string()),
            "item" => p.item = Some(value.to_string()),
            "reason" => p.reason = Some(value.to_string()),
            other => return Err(err(lineno, format!("unknown key `{other}` in [[allow]]"))),
        }
    }
    if let Some(p) = current.take() {
        cfg.allows.push(finish(p)?);
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let cfg = parse(
            r#"
# exceptions
[[allow]]
rule = "R1"
path = "crates/nn/src/pool.rs"
item = "expect"
reason = "documented forward-first contract"

[[allow]]
rule = "R2"
path = "crates/cli/src/args.rs"
reason = "binary crate help text"
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg.is_allowed("R1", "crates/nn/src/pool.rs", "expect"));
        assert!(!cfg.is_allowed("R1", "crates/nn/src/pool.rs", "unwrap"));
        // No `item` filter: any item matches.
        assert!(cfg.is_allowed("R2", "crates/cli/src/args.rs", "whatever"));
        assert!(!cfg.is_allowed("R2", "crates/cli/src/other.rs", "whatever"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let e = parse("[[allow]]\nrule = \"R1\"\npath = \"x.rs\"\n").unwrap_err();
        assert!(e.message.contains("reason"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let e = parse("[[allow]]\nrule = \"R1\"\npath = \"x\"\nreason = \"r\"\nbogus = \"v\"\n")
            .unwrap_err();
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let e = parse("[[allow]]\nrule = R1\n").unwrap_err();
        assert!(e.message.contains("double-quoted"));
    }

    #[test]
    fn empty_config_is_fine() {
        let cfg = parse("# nothing here\n").expect("empty ok");
        assert!(cfg.allows.is_empty());
    }
}
