//! `lint.toml`: allowlist entries plus the S-rule declaration tables.
//!
//! The file is a sequence of tables:
//!
//! ```toml
//! [[allow]]                 # intentional exception to a rule
//! rule = "R1"
//! path = "crates/nn/src/pool.rs"
//! item = "expect"           # optional: restrict to one offending item
//! reason = "backward() has a documented forward-first contract"
//!
//! [[taint]]                 # S2 determinism sink declaration
//! path = "crates/trace/src/clock.rs"
//! item = "tick_forward"
//! reason = "logical counter; must stay thread- and wall-clock-invariant"
//!
//! [[kernel]]                # S4 canonical accumulation kernel
//! path = "crates/tensor/src/ops.rs"
//! item = "add_assign"
//! reason = "the one sanctioned elementwise += loop"
//! ```
//!
//! `path` is required everywhere; `reason` is required too so every
//! declaration carries its justification into review. The parser covers
//! exactly this subset of TOML (comments, `[[name]]` headers, and
//! `key = "string"` pairs) — anything else is a configuration error.

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id, e.g. `R1`.
    pub rule: String,
    /// Workspace-relative path (forward slashes) the entry applies to.
    pub path: String,
    /// Optional item filter: function name or offending identifier.
    pub item: Option<String>,
    /// Human justification (required).
    pub reason: String,
}

/// One S2 sink declaration: a function whose inputs must stay free of
/// determinism taint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSink {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Function name.
    pub item: String,
    /// Why this function is a determinism sink.
    pub reason: String,
}

/// One S4 kernel declaration: a function allowed to contain raw `+=`
/// float accumulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelEntry {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Function name.
    pub item: String,
    /// Why this is a canonical accumulation kernel.
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Default)]
pub struct Config {
    /// All allowlist entries.
    pub allows: Vec<AllowEntry>,
    /// S2 determinism sinks.
    pub taints: Vec<TaintSink>,
    /// S4 canonical kernels.
    pub kernels: Vec<KernelEntry>,
}

impl Config {
    /// Whether a diagnostic for `rule` at `path` (with offending `item`)
    /// is allowlisted.
    pub fn is_allowed(&self, rule: &str, path: &str, item: &str) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && a.path == path && a.item.as_deref().is_none_or(|it| it == item)
        })
    }
}

/// Errors from [`parse`].
#[derive(Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

/// Which table a partial entry is being collected for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Allow,
    Taint,
    Kernel,
}

impl Section {
    fn name(self) -> &'static str {
        match self {
            Section::Allow => "allow",
            Section::Taint => "taint",
            Section::Kernel => "kernel",
        }
    }
}

/// Parses `lint.toml` source text.
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    struct Partial {
        section: Section,
        line: usize,
        rule: Option<String>,
        path: Option<String>,
        item: Option<String>,
        reason: Option<String>,
    }
    fn finish(cfg: &mut Config, p: Partial) -> Result<(), ConfigError> {
        let need = |field: Option<String>, name: &str| {
            field.ok_or_else(|| err(p.line, format!("[[{}]] missing `{name}`", p.section.name())))
        };
        let reason = p.reason.ok_or_else(|| {
            err(
                p.line,
                format!(
                    "[[{}]] missing `reason` — every entry must be justified",
                    p.section.name()
                ),
            )
        })?;
        match p.section {
            Section::Allow => {
                let Some(rule) = p.rule else {
                    return Err(err(p.line, "[[allow]] missing `rule`"));
                };
                cfg.allows.push(AllowEntry {
                    rule,
                    path: need(p.path, "path")?,
                    item: p.item,
                    reason,
                });
            }
            Section::Taint => {
                if p.rule.is_some() {
                    return Err(err(p.line, "`rule` is not a [[taint]] key"));
                }
                cfg.taints.push(TaintSink {
                    path: need(p.path, "path")?,
                    item: need(p.item, "item")?,
                    reason,
                });
            }
            Section::Kernel => {
                if p.rule.is_some() {
                    return Err(err(p.line, "`rule` is not a [[kernel]] key"));
                }
                cfg.kernels.push(KernelEntry {
                    path: need(p.path, "path")?,
                    item: need(p.item, "item")?,
                    reason,
                });
            }
        }
        Ok(())
    }

    let mut cfg = Config::default();
    let mut current: Option<Partial> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let section = match line {
            "[[allow]]" => Some(Section::Allow),
            "[[taint]]" => Some(Section::Taint),
            "[[kernel]]" => Some(Section::Kernel),
            _ => None,
        };
        if let Some(section) = section {
            if let Some(p) = current.take() {
                finish(&mut cfg, p)?;
            }
            current = Some(Partial {
                section,
                line: lineno,
                rule: None,
                path: None,
                item: None,
                reason: None,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                lineno,
                format!(
                    "unsupported section `{line}` (only [[allow]], [[taint]] and \
                     [[kernel]] are recognized)"
                ),
            ));
        }
        let Some(eq) = line.find('=') else {
            return Err(err(lineno, format!("expected `key = \"value\"`, found `{line}`")));
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        let value = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')).ok_or_else(|| {
            err(lineno, format!("value for `{key}` must be a double-quoted string"))
        })?;
        let Some(p) = current.as_mut() else {
            return Err(err(lineno, format!("`{key}` outside of a table header")));
        };
        match key {
            "rule" => p.rule = Some(value.to_string()),
            "path" => p.path = Some(value.to_string()),
            "item" => p.item = Some(value.to_string()),
            "reason" => p.reason = Some(value.to_string()),
            other => {
                return Err(err(
                    lineno,
                    format!("unknown key `{other}` in [[{}]]", p.section.name()),
                ));
            }
        }
    }
    if let Some(p) = current.take() {
        finish(&mut cfg, p)?;
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let cfg = parse(
            r#"
# exceptions
[[allow]]
rule = "R1"
path = "crates/nn/src/pool.rs"
item = "expect"
reason = "documented forward-first contract"

[[allow]]
rule = "R2"
path = "crates/cli/src/args.rs"
reason = "binary crate help text"
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg.is_allowed("R1", "crates/nn/src/pool.rs", "expect"));
        assert!(!cfg.is_allowed("R1", "crates/nn/src/pool.rs", "unwrap"));
        // No `item` filter: any item matches.
        assert!(cfg.is_allowed("R2", "crates/cli/src/args.rs", "whatever"));
        assert!(!cfg.is_allowed("R2", "crates/cli/src/other.rs", "whatever"));
    }

    #[test]
    fn parses_taint_and_kernel_tables() {
        let cfg = parse(
            r#"
[[taint]]
path = "crates/trace/src/clock.rs"
item = "tick_forward"
reason = "logical counter"

[[kernel]]
path = "crates/tensor/src/ops.rs"
item = "add_assign"
reason = "sanctioned elementwise accumulation"
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.taints.len(), 1);
        assert_eq!(cfg.taints[0].item, "tick_forward");
        assert_eq!(cfg.kernels.len(), 1);
        assert_eq!(cfg.kernels[0].path, "crates/tensor/src/ops.rs");
    }

    #[test]
    fn taint_requires_item_and_rejects_rule() {
        let e = parse("[[taint]]\npath = \"x.rs\"\nreason = \"r\"\n").unwrap_err();
        assert!(e.message.contains("item"));
        let e = parse("[[taint]]\nrule = \"S2\"\npath = \"x\"\nitem = \"f\"\nreason = \"r\"\n")
            .unwrap_err();
        assert!(e.message.contains("rule"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let e = parse("[[allow]]\nrule = \"R1\"\npath = \"x.rs\"\n").unwrap_err();
        assert!(e.message.contains("reason"));
        let e = parse("[[kernel]]\npath = \"x.rs\"\nitem = \"f\"\n").unwrap_err();
        assert!(e.message.contains("reason"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let e = parse("[[allow]]\nrule = \"R1\"\npath = \"x\"\nreason = \"r\"\nbogus = \"v\"\n")
            .unwrap_err();
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let e = parse("[[allow]]\nrule = R1\n").unwrap_err();
        assert!(e.message.contains("double-quoted"));
    }

    #[test]
    fn empty_config_is_fine() {
        let cfg = parse("# nothing here\n").expect("empty ok");
        assert!(cfg.allows.is_empty() && cfg.taints.is_empty() && cfg.kernels.is_empty());
    }
}
