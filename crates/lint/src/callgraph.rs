//! Intra-workspace call-graph construction, reachability queries, and
//! DOT export.
//!
//! Call sites are resolved against the [`SymbolTable`] with deliberately
//! over-approximating heuristics (a method call can resolve to every
//! same-named method whose crate the caller may depend on), then pruned
//! by the static crate-dependency table so impossible cross-crate edges
//! never appear. DESIGN.md §8 documents the soundness limits.

use crate::parse::ParsedFile;
use crate::symbols::{crate_ident, FnId, FnInfo, SymbolTable};
use crate::Workspace;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Direct dependencies of each workspace package; used to reject call
/// edges between crates that cannot see each other. Unknown packages
/// (e.g. lint-test fixtures under invented names) allow everything.
const DEPS: &[(&str, &[&str])] = &[
    ("simpadv-trace", &[]),
    ("simpadv-obs", &["simpadv-trace"]),
    ("simpadv-runtime", &["simpadv-trace"]),
    ("simpadv-tensor", &["simpadv-trace", "simpadv-runtime"]),
    ("simpadv-nn", &["simpadv-trace", "simpadv-resilience", "simpadv-tensor"]),
    ("simpadv-data", &["simpadv-resilience", "simpadv-tensor"]),
    ("simpadv-attacks", &["simpadv-trace", "simpadv-runtime", "simpadv-tensor", "simpadv-nn"]),
    ("simpadv-resilience", &["simpadv-trace"]),
    (
        "simpadv",
        &[
            "simpadv-trace",
            "simpadv-resilience",
            "simpadv-runtime",
            "simpadv-tensor",
            "simpadv-nn",
            "simpadv-data",
            "simpadv-attacks",
        ],
    ),
    ("simpadv-cli", &["simpadv", "simpadv-obs", "simpadv-lint"]),
    ("simpadv-bench", &["simpadv", "simpadv-obs"]),
    ("simpadv-lint", &[]),
    ("simpadv-suite", &["simpadv", "simpadv-obs", "simpadv-cli", "simpadv-bench"]),
];

/// Identifiers that look like calls (`name(`) but are keywords.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "fn", "impl", "let",
    "mut", "ref", "box", "unsafe", "else", "dyn", "where", "pub", "use", "mod",
];

/// Resolves call sites against the symbol table.
pub struct Resolver<'a> {
    symbols: &'a SymbolTable,
    /// Transitive dependency closure by package name.
    closure: BTreeMap<&'static str, BTreeSet<&'static str>>,
}

impl<'a> Resolver<'a> {
    /// Builds a resolver (computes the dependency closure once).
    pub fn new(symbols: &'a SymbolTable) -> Resolver<'a> {
        let mut closure: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
        for (pkg, _) in DEPS {
            let mut seen = BTreeSet::new();
            let mut stack = vec![*pkg];
            while let Some(c) = stack.pop() {
                if let Some((_, deps)) = DEPS.iter().find(|(name, _)| *name == c) {
                    for d in *deps {
                        if seen.insert(*d) {
                            stack.push(d);
                        }
                    }
                }
            }
            closure.insert(pkg, seen);
        }
        Resolver { symbols, closure }
    }

    /// Whether code in `caller` may call into `callee` (crate level).
    pub fn crate_allows(&self, caller: &str, callee: &str) -> bool {
        if caller == callee {
            return true;
        }
        match self.closure.get(caller) {
            Some(deps) => deps.contains(callee),
            // Unknown caller crate (fixtures): allow everything.
            None => true,
        }
    }

    fn dep_filter(&self, caller_crate: &str, mut cands: Vec<FnId>) -> Vec<FnId> {
        cands.retain(|&id| {
            let f = &self.symbols.fns[id as usize];
            self.crate_allows(caller_crate, &f.crate_name)
        });
        cands
    }

    fn methods_named(&self, name: &str) -> Vec<FnId> {
        let mut out = Vec::new();
        for ((_, m), ids) in &self.symbols.by_method {
            if m == name {
                out.extend(ids.iter().copied());
            }
        }
        out
    }

    /// Resolves path segments ending in a free-function name: filters
    /// candidates by crate ident and module segments.
    fn resolve_path(&self, caller: &FnInfo, segs: &[String]) -> Vec<FnId> {
        let Some(name) = segs.last() else { return Vec::new() };
        let Some(ids) = self.symbols.by_name.get(name.as_str()) else { return Vec::new() };
        let inter = &segs[..segs.len() - 1];
        let mut out = Vec::new();
        for &id in ids {
            let f = &self.symbols.fns[id as usize];
            let f_crate = crate_ident(&f.crate_name);
            let mut rest: Vec<&String> = inter.iter().collect();
            // A leading crate qualifier must match the candidate's crate
            // (`crate`/`self`/`super` pin the caller's own crate).
            if let Some(first) = rest.first() {
                if matches!(first.as_str(), "crate" | "self" | "super") {
                    if f.crate_name != caller.crate_name {
                        continue;
                    }
                    rest.remove(0);
                } else if **first == f_crate {
                    rest.remove(0);
                } else if DEPS.iter().any(|(pkg, _)| crate_ident(pkg) == **first) {
                    // Names another workspace crate: not this candidate.
                    continue;
                }
            }
            // Remaining segments must all be module components of the
            // candidate; external paths (std::mem::take) die here.
            if rest.iter().all(|s| f.module.contains(s)) {
                out.push(id);
            } else {
                continue;
            }
            // A bare unqualified tail with no crate segment must stay
            // within the caller's crate unless an import said otherwise
            // — handled by the callers of resolve_path.
        }
        self.dep_filter(&caller.crate_name, out)
    }

    /// Resolves the call at token `i` of `caller`'s file (`i` must be an
    /// identifier directly followed by `(`). Returns every function the
    /// call may reach, dependency-filtered.
    pub fn resolve_call(&self, p: &ParsedFile, caller: &FnInfo, i: usize) -> Vec<FnId> {
        let Some(name) = p.ident(i) else { return Vec::new() };
        // Method call: `recv.name(...)`.
        if i > 0 && p.is_punct(i - 1, '.') {
            // `self.name(...)` with a known impl type narrows to that
            // type's methods when it has any.
            if i >= 2 && p.ident(i - 2) == Some("self") && !(i >= 3 && p.is_punct(i - 3, '.')) {
                if let Some(t) = &caller.impl_type {
                    if let Some(ids) = self.symbols.by_method.get(&(t.clone(), name.to_string())) {
                        return self.dep_filter(&caller.crate_name, ids.clone());
                    }
                }
            }
            return self.dep_filter(&caller.crate_name, self.methods_named(name));
        }
        // Qualified call: `a::b::name(...)`.
        if i >= 3 && p.is_punct(i - 1, ':') && p.is_punct(i - 2, ':') && p.ident(i - 3).is_some() {
            let mut segs = vec![name.to_string()];
            let mut k = i;
            while k >= 3 && p.is_punct(k - 1, ':') && p.is_punct(k - 2, ':') {
                let Some(s) = p.ident(k - 3) else { break };
                segs.insert(0, s.to_string());
                k -= 3;
            }
            if segs.first().map(String::as_str) == Some("Self") {
                if let Some(t) = &caller.impl_type {
                    segs[0] = t.clone();
                }
            }
            // `Type::name(...)`: qualifier is a known impl type.
            let qualifier = segs[segs.len() - 2].clone();
            if let Some(ids) = self.symbols.by_method.get(&(qualifier, name.to_string())) {
                return self.dep_filter(&caller.crate_name, ids.clone());
            }
            // An imported qualifier expands to its full path.
            if let Some(full) = self.symbols.imports[caller.file].get(&segs[0]) {
                let mut expanded = full.clone();
                expanded.extend(segs[1..].iter().cloned());
                segs = expanded;
            }
            return self.resolve_path(caller, &segs);
        }
        // Bare call: `name(...)`.
        if CALL_KEYWORDS.contains(&name) {
            return Vec::new();
        }
        if let Some(ids) = self.symbols.by_name.get(name) {
            let same_crate: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|&id| {
                    let f = &self.symbols.fns[id as usize];
                    f.crate_name == caller.crate_name && f.impl_type.is_none()
                })
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
        }
        // An import can bring a free function (possibly renamed) into
        // scope from another crate.
        if let Some(full) = self.symbols.imports[caller.file].get(name) {
            return self.resolve_path(caller, full);
        }
        Vec::new()
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Display label per node (same indexing as [`SymbolTable::fns`]).
    pub labels: Vec<String>,
    /// Forward edges: callees per caller.
    pub edges: Vec<BTreeSet<FnId>>,
    /// Reverse edges: callers per callee.
    pub redges: Vec<BTreeSet<FnId>>,
}

/// Token ranges of functions nested inside `body` (to exclude a nested
/// `fn helper(..)` signature and body from the parent's call sites).
fn nested_fn_ranges(p: &ParsedFile, body: &Range<usize>, own: &Range<usize>) -> Vec<Range<usize>> {
    p.functions
        .iter()
        .filter(|g| {
            !g.body.is_empty()
                && g.body.start > body.start
                && g.body.end <= body.end
                && g.body != *own
        })
        .map(|g| g.body.clone())
        .collect()
}

/// Yields the token indices of call sites (`ident` directly followed by
/// `(`) in `range`, skipping nested-function sub-ranges and the `fn name(`
/// of nested declarations.
pub fn call_sites(p: &ParsedFile, range: Range<usize>, skip: &[Range<usize>]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if let Some(r) = skip.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        if p.ident(i).is_some() && p.is_open(i + 1, '(') && !(i > 0 && p.ident(i - 1) == Some("fn"))
        {
            out.push(i);
        }
        i += 1;
    }
    out
}

impl CallGraph {
    /// Builds the call graph over the workspace.
    pub fn build(symbols: &SymbolTable, ws: &Workspace) -> CallGraph {
        let resolver = Resolver::new(symbols);
        let n = symbols.fns.len();
        let mut labels: Vec<String> = (0..n as FnId).map(|id| symbols.label(id)).collect();
        // Disambiguate duplicate labels (trait impls share method names).
        let mut seen: BTreeMap<String, u32> = BTreeMap::new();
        for l in &labels {
            *seen.entry(l.clone()).or_insert(0) += 1;
        }
        for (i, l) in labels.iter_mut().enumerate() {
            if seen[l.as_str()] > 1 {
                let f = &symbols.fns[i];
                l.push_str(&format!("@{}", f.line));
            }
        }
        let mut edges: Vec<BTreeSet<FnId>> = vec![BTreeSet::new(); n];
        let mut redges: Vec<BTreeSet<FnId>> = vec![BTreeSet::new(); n];
        for (id, f) in symbols.fns.iter().enumerate() {
            if f.body.is_empty() {
                continue;
            }
            let p = &ws.files[f.file].parsed;
            let skip = nested_fn_ranges(p, &f.body, &f.body);
            for site in call_sites(p, f.body.clone(), &skip) {
                for callee in resolver.resolve_call(p, f, site) {
                    edges[id].insert(callee);
                    redges[callee as usize].insert(id as FnId);
                }
            }
        }
        CallGraph { labels, edges, redges }
    }

    /// Builds a synthetic graph from explicit edges (tests, properties).
    pub fn from_edges(n: usize, edge_list: &[(FnId, FnId)]) -> CallGraph {
        let labels = (0..n).map(|i| format!("n{i}")).collect();
        let mut edges: Vec<BTreeSet<FnId>> = vec![BTreeSet::new(); n];
        let mut redges: Vec<BTreeSet<FnId>> = vec![BTreeSet::new(); n];
        for &(a, b) in edge_list {
            if (a as usize) < n && (b as usize) < n {
                edges[a as usize].insert(b);
                redges[b as usize].insert(a);
            }
        }
        CallGraph { labels, edges, redges }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(BTreeSet::len).sum()
    }

    /// All nodes reachable from `start` (including `start`).
    pub fn reachable(&self, start: FnId) -> BTreeSet<FnId> {
        bfs_all(&self.edges, &[start])
    }

    /// Shortest path (BFS) from `start` to any node satisfying `target`,
    /// following forward edges. Includes both endpoints; `start` itself
    /// is a valid target.
    pub fn path_to(&self, start: FnId, target: &dyn Fn(FnId) -> bool) -> Option<Vec<FnId>> {
        bfs_path(&self.edges, start, target)
    }

    /// Like [`CallGraph::path_to`] but over reverse edges (who calls me).
    pub fn rpath_to(&self, start: FnId, target: &dyn Fn(FnId) -> bool) -> Option<Vec<FnId>> {
        bfs_path(&self.redges, start, target)
    }

    /// Renders the graph in Graphviz DOT format. Every node appears on
    /// its own line, then every edge; both sorted and deterministic.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph callgraph {\n");
        for l in &self.labels {
            out.push_str(&format!("  \"{}\";\n", escape(l)));
        }
        for (a, callees) in self.edges.iter().enumerate() {
            for &b in callees {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    escape(&self.labels[a]),
                    escape(&self.labels[b as usize])
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Counts (nodes, edges) in DOT text produced by [`CallGraph::to_dot`].
pub fn parse_dot_counts(dot: &str) -> Option<(usize, usize)> {
    let mut nodes = 0;
    let mut edges = 0;
    let mut saw_header = false;
    for line in dot.lines() {
        let line = line.trim();
        if line.starts_with("digraph") {
            saw_header = true;
        } else if line.contains("->") {
            edges += 1;
        } else if line.starts_with('"') && line.ends_with(';') {
            nodes += 1;
        }
    }
    saw_header.then_some((nodes, edges))
}

fn bfs_all(adj: &[BTreeSet<FnId>], starts: &[FnId]) -> BTreeSet<FnId> {
    let mut seen: BTreeSet<FnId> = starts.iter().copied().collect();
    let mut queue: Vec<FnId> = starts.to_vec();
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        for &v in &adj[u as usize] {
            if seen.insert(v) {
                queue.push(v);
            }
        }
    }
    seen
}

fn bfs_path(
    adj: &[BTreeSet<FnId>],
    start: FnId,
    target: &dyn Fn(FnId) -> bool,
) -> Option<Vec<FnId>> {
    if target(start) {
        return Some(vec![start]);
    }
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: Vec<FnId> = vec![start];
    let mut seen: BTreeSet<FnId> = [start].into();
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        for &v in &adj[u as usize] {
            if !seen.insert(v) {
                continue;
            }
            parent.insert(v, u);
            if target(v) {
                let mut path = vec![v];
                let mut cur = v;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;
    use crate::FileUnit;

    fn graph(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let ws = Workspace {
            files: files.iter().map(|(path, src)| FileUnit::from_source(path, src)).collect(),
        };
        let symbols = SymbolTable::build(&ws);
        let g = CallGraph::build(&symbols, &ws);
        (symbols, g)
    }

    fn id_of(s: &SymbolTable, name: &str) -> FnId {
        s.by_name[name][0]
    }

    #[test]
    fn bare_and_qualified_calls_resolve_within_and_across_crates() {
        let (s, g) = graph(&[
            (
                "crates/nn/src/lib.rs",
                "pub fn entry() { helper(); simpadv_tensor::scale(1.0); }\nfn helper() {}",
            ),
            ("crates/tensor/src/lib.rs", "pub fn scale(x: f32) -> f32 { x }"),
        ]);
        let entry = id_of(&s, "entry");
        let reach = g.reachable(entry);
        assert!(reach.contains(&id_of(&s, "helper")));
        assert!(reach.contains(&id_of(&s, "scale")));
    }

    #[test]
    fn dependency_filter_rejects_impossible_edges() {
        // trace does not depend on tensor, so `.max(..)` there cannot
        // resolve to Tensor::max.
        let (s, g) = graph(&[
            ("crates/trace/src/histogram.rs", "pub fn record(m: f32, v: f32) -> f32 { m.max(v) }"),
            ("crates/tensor/src/reduce.rs", "impl Tensor { pub fn max(&self) -> f32 { 0.0 } }"),
        ]);
        let record = id_of(&s, "record");
        assert!(!g.reachable(record).contains(&id_of(&s, "max")));
    }

    #[test]
    fn self_method_calls_narrow_to_the_impl_type() {
        let (s, g) = graph(&[(
            "crates/tensor/src/lib.rs",
            r#"
impl Tensor {
    pub fn mean(&self) -> f32 { self.sum() }
    fn sum(&self) -> f32 { 0.0 }
}
impl Other {
    fn sum(&self) -> f32 { 1.0 }
}
"#,
        )]);
        let mean = id_of(&s, "mean");
        let tensor_sum = s.by_method[&("Tensor".to_string(), "sum".to_string())][0];
        let other_sum = s.by_method[&("Other".to_string(), "sum".to_string())][0];
        assert!(g.edges[mean as usize].contains(&tensor_sum));
        assert!(!g.edges[mean as usize].contains(&other_sum));
    }

    #[test]
    fn imported_functions_resolve_cross_crate() {
        let (s, g) = graph(&[
            (
                "crates/nn/src/lib.rs",
                "use simpadv_tensor::scale;\npub fn entry() -> f32 { scale(2.0) }",
            ),
            ("crates/tensor/src/lib.rs", "pub fn scale(x: f32) -> f32 { x }"),
        ]);
        assert!(g.reachable(id_of(&s, "entry")).contains(&id_of(&s, "scale")));
    }

    #[test]
    fn nested_fn_bodies_are_not_the_parents_call_sites() {
        let (s, g) = graph(&[(
            "crates/tensor/src/lib.rs",
            "pub fn outer() { fn inner() { secret(); } inner(); }\nfn secret() {}",
        )]);
        let outer = id_of(&s, "outer");
        // outer calls inner, inner calls secret; outer has no direct
        // edge to secret.
        assert!(g.edges[outer as usize].contains(&id_of(&s, "inner")));
        assert!(!g.edges[outer as usize].contains(&id_of(&s, "secret")));
        assert!(g.reachable(outer).contains(&id_of(&s, "secret")));
    }

    #[test]
    fn dot_round_trips_node_and_edge_counts() {
        let g = CallGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let dot = g.to_dot();
        assert_eq!(parse_dot_counts(&dot), Some((4, 3)));
    }

    #[test]
    fn path_to_returns_shortest_chain() {
        let g = CallGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        let path = g.path_to(0, &|id| id == 3).expect("reachable");
        assert_eq!(path.len(), 3); // 0 -> 1|4 -> 3 is impossible; 0->4->3
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 3);
    }
}
