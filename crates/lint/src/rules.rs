//! The rule registry: twelve syntactic invariants (R1–R12) and five
//! semantic ones (S1–S5).
//!
//! Each R-rule is a pure function from a [`Workspace`] to diagnostics —
//! token-accurate but file-local: comments and string literals can never
//! trigger them, test code is masked out where a rule targets library
//! code, and the one sanctioned panic idiom —
//! `unwrap_or_else(|e| panic!("{e}"))` — is recognized by walking the
//! enclosing-call chain rather than by text matching. The S-rules
//! ([`crate::semrules`]) additionally see a workspace-wide
//! [`crate::semrules::SemanticCtx`] (symbol table, call graph, taint
//! sources) and attach call chains to their diagnostics.

use crate::parse::ParsedFile;
use crate::semrules::{self, SemanticCtx};
use crate::{Diagnostic, FileKind, FileUnit, Workspace};

/// Library crates whose `src/` must be free of ad-hoc panics (R1, S1)
/// and whose `try_*` APIs need delegating twins (S5).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "simpadv-trace",
    "simpadv-runtime",
    "simpadv-tensor",
    "simpadv-nn",
    "simpadv-data",
    "simpadv-attacks",
    "simpadv-resilience",
    "simpadv",
];

/// A rule's checker: file-local (syntactic) or workspace-wide (semantic).
pub enum Check {
    /// R-rules: a pure function over the parsed files.
    Syntactic(fn(&Workspace) -> Vec<Diagnostic>),
    /// S-rules: sees the symbol table, call graph and taint sources.
    Semantic(fn(&SemanticCtx) -> Vec<Diagnostic>),
}

/// A rule's identity and entry point.
pub struct Rule {
    /// Stable id (`R1`..`R12`, `S1`..`S5`), referenced from `lint.toml`.
    pub id: &'static str,
    /// One-line summary shown by `--list`.
    pub summary: &'static str,
    /// The checker.
    pub check: Check,
}

/// The rule registry, in id order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "R1",
        summary: "no unwrap()/expect()/bare panic! in library crate non-test code; \
                  the sanctioned form is try_*().unwrap_or_else(|e| panic!(\"{e}\"))",
        check: Check::Syntactic(rule_r1_panic_hygiene),
    },
    Rule {
        id: "R2",
        summary: "public functions that can panic must document a `# Panics` section",
        check: Check::Syntactic(rule_r2_panics_docs),
    },
    Rule {
        id: "R3",
        summary: "attack constructors must validate epsilon/step with \
                  is_finite() and >= 0.0",
        check: Check::Syntactic(rule_r3_ctor_validation),
    },
    Rule {
        id: "R4",
        summary: "no hand-rolled epsilon-ball clamping in crates/attacks outside \
                  projection.rs; use project_ball",
        check: Check::Syntactic(rule_r4_projection_routing),
    },
    Rule {
        id: "R5",
        summary: "no thread_rng/from_entropy/rand::random outside \
                  crates/tensor/src/rng.rs; all randomness is seeded",
        check: Check::Syntactic(rule_r5_rng_discipline),
    },
    Rule {
        id: "R6",
        summary: "panicking tensor ops built on the unwrap_or_else wrapper must \
                  expose a try_* sibling returning TensorError",
        check: Check::Syntactic(rule_r6_try_siblings),
    },
    Rule {
        id: "R7",
        summary: "std::thread is permitted only in crates/runtime; everywhere else \
                  parallelism goes through simpadv_runtime::Runtime",
        check: Check::Syntactic(rule_r7_thread_containment),
    },
    Rule {
        id: "R8",
        summary: "println!/eprintln! only in the cli, lint and bench crates and the \
                  trace sinks; library crates report through simpadv-trace events",
        check: Check::Syntactic(rule_r8_print_containment),
    },
    Rule {
        id: "R9",
        summary: "File::create/fs::write only in crates/resilience (and the trace \
                  sinks); durable output goes through the atomic-write protocol",
        check: Check::Syntactic(rule_r9_durable_writes),
    },
    Rule {
        id: "R10",
        summary: "std::time::Instant/SystemTime only in crates/trace/src/clock.rs and \
                  crates/obs; production timing goes through the span clock's WallTimer",
        check: Check::Syntactic(rule_r10_wall_clock_quarantine),
    },
    Rule {
        id: "R11",
        summary: "std::net is permitted only in crates/serve; other crates reach the \
                  server through simpadv_serve::client",
        check: Check::Syntactic(rule_r11_net_containment),
    },
    Rule {
        id: "R12",
        summary: "std::process (Command/Child/Stdio/exit) is permitted only in \
                  crates/sweep and crates/cli; other crates return typed errors \
                  instead of spawning or exiting",
        check: Check::Syntactic(rule_r12_process_containment),
    },
    Rule {
        id: "S1",
        summary: "no public API of a panic-free crate may transitively reach an \
                  unsanctioned unwrap/expect/panic! site; diagnostics carry the call chain",
        check: Check::Semantic(semrules::s1_panic_reachability),
    },
    Rule {
        id: "S2",
        summary: "wall-clock, HashMap/HashSet iteration, available_parallelism and \
                  entropy RNG must not flow into declared determinism sinks \
                  (lint.toml [[taint]]): logical counters, TrainState, BENCH digests",
        check: Check::Semantic(semrules::s2_determinism_taint),
    },
    Rule {
        id: "S3",
        summary: "closures passed to par_map/par_chunks/par_join must not reduce \
                  through unordered combinators (atomics, locks, hash containers); \
                  fold the runtime's ordered per-chunk results instead",
        check: Check::Semantic(semrules::s3_parallel_reduction),
    },
    Rule {
        id: "S4",
        summary: "raw += float-accumulation loops in tensor/nn must live in declared \
                  canonical kernels (lint.toml [[kernel]]) so backends share one \
                  accumulation order",
        check: Check::Semantic(semrules::s4_float_accumulation),
    },
    Rule {
        id: "S5",
        summary: "every try_* function in a panic-free crate has a panicking twin \
                  implemented as a delegating wrapper (checked structurally)",
        check: Check::Semantic(semrules::s5_fallible_siblings),
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Expands a `--rules` spec — a comma list of ids and ranges
/// (`R1,R3`, `R1-R10,S2`, `S1-S5`) — into rule ids, validating every
/// part against the registry.
///
/// # Errors
///
/// Returns a message naming the offending part when an id is unknown, a
/// range is malformed, or its endpoints use different tiers.
pub fn expand_spec(spec: &str) -> Result<Vec<&'static str>, String> {
    let mut out: Vec<&'static str> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            let (lo, hi) = (lo.trim(), hi.trim());
            let tier = lo.chars().next().ok_or_else(|| format!("empty range start in `{part}`"))?;
            if !hi.starts_with(tier) {
                return Err(format!("range `{part}` mixes tiers; write it as `{tier}a-{tier}b`"));
            }
            let parse_num = |s: &str| {
                s[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("malformed rule id `{s}` in range `{part}`"))
            };
            let (a, b) = (parse_num(lo)?, parse_num(hi)?);
            if a > b {
                return Err(format!("range `{part}` runs backwards"));
            }
            for n in a..=b {
                let id = format!("{tier}{n}");
                let rule = rule_by_id(&id)
                    .ok_or_else(|| format!("range `{part}` covers unknown rule `{id}`"))?;
                if !out.contains(&rule.id) {
                    out.push(rule.id);
                }
            }
        } else {
            let rule = rule_by_id(part).ok_or_else(|| format!("unknown rule `{part}`"))?;
            if !out.contains(&rule.id) {
                out.push(rule.id);
            }
        }
    }
    if out.is_empty() {
        return Err(format!("rule spec `{spec}` selects nothing"));
    }
    Ok(out)
}

fn diag(rule: &'static str, file: &FileUnit, line: u32, item: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: file.path.clone(),
        line,
        item: item.to_string(),
        message,
        chain: Vec::new(),
    }
}

/// Whether token `i` begins a macro invocation of `name` (`name` followed
/// by `!`).
fn is_macro(p: &ParsedFile, i: usize, name: &str) -> bool {
    p.ident(i) == Some(name) && p.is_punct(i + 1, '!')
}

/// R1: panic hygiene in library crates.
fn rule_r1_panic_hygiene(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src || !PANIC_FREE_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            if p.test_mask[i] {
                continue;
            }
            match p.ident(i) {
                Some(m @ ("unwrap" | "expect")) if p.is_method_call(i) => {
                    out.push(diag(
                        "R1",
                        file,
                        p.line(i),
                        m,
                        format!(
                            ".{m}() in library code; propagate the error or use the \
                             sanctioned `try_*().unwrap_or_else(|e| panic!(\"{{e}}\"))` wrapper"
                        ),
                    ));
                }
                Some("panic") if p.is_punct(i + 1, '!') => {
                    // Sanctioned when the panic! is an argument of
                    // unwrap_or_else (the documented wrapper idiom).
                    if p.enclosing_calls(i).contains(&"unwrap_or_else") {
                        continue;
                    }
                    out.push(diag(
                        "R1",
                        file,
                        p.line(i),
                        "panic",
                        "bare `panic!` in library code; return a TensorError (or use \
                         an assert with an invariant message) instead"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
    out
}

/// Idents that make a function body panic-capable for R2.
fn body_can_panic(p: &ParsedFile, body: std::ops::Range<usize>) -> bool {
    for i in body {
        if let Some(id) = p.ident(i) {
            match id {
                "panic" | "assert" | "assert_eq" | "assert_ne" | "unreachable" | "todo"
                | "unimplemented"
                    if p.is_punct(i + 1, '!') =>
                {
                    return true;
                }
                "unwrap" | "expect" if p.is_method_call(i) => {
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}

/// R2: `# Panics` documentation on panic-capable public functions.
fn rule_r2_panics_docs(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src {
            continue;
        }
        let p = &file.parsed;
        for f in &p.functions {
            if !f.is_pub || f.in_test || f.body.is_empty() {
                continue;
            }
            if body_can_panic(p, f.body.clone()) && !f.doc.contains("# Panics") {
                out.push(diag(
                    "R2",
                    file,
                    f.line,
                    &f.name,
                    format!(
                        "public function `{}` can panic but its docs have no \
                         `# Panics` section",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}

/// Constructor parameters that R3 requires to be validated.
const VALIDATED_PARAMS: &[&str] = &["epsilon", "eps", "step", "step_size"];

/// Whether some `assert!(...)` region in `body` validates `param` with both
/// `is_finite()` and a `>= 0.0` bound.
fn body_validates(p: &ParsedFile, body: std::ops::Range<usize>, param: &str) -> bool {
    let mut i = body.start;
    while i < body.end {
        if is_macro(p, i, "assert") && p.is_open(i + 2, '(') {
            let close = p.match_of[i + 2];
            if close != usize::MAX {
                let region = i + 3..close.min(body.end);
                let mentions = region.clone().any(|k| p.ident(k) == Some(param));
                let finite = region.clone().any(|k| p.ident(k) == Some("is_finite"));
                let lower_bound = region.clone().any(|k| {
                    p.is_punct(k, '>')
                        && p.is_punct(k + 1, '=')
                        && matches!(
                            p.tokens.get(k + 2).map(|t| &t.kind),
                            Some(crate::lexer::TokenKind::Literal(l)) if l.starts_with("0.0")
                        )
                });
                if mentions && finite && lower_bound {
                    return true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    false
}

/// R3: attack constructors validate their numeric hyperparameters.
fn rule_r3_ctor_validation(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src || file.crate_name != "simpadv-attacks" {
            continue;
        }
        let p = &file.parsed;
        for f in &p.functions {
            if f.name != "new" || f.in_test || f.body.is_empty() {
                continue;
            }
            for param in &f.params {
                if !VALIDATED_PARAMS.contains(&param.as_str()) {
                    continue;
                }
                if !body_validates(p, f.body.clone(), param) {
                    out.push(diag(
                        "R3",
                        file,
                        f.line,
                        param,
                        format!(
                            "constructor `new` takes `{param}` but does not validate it; \
                             add `assert!({param} >= 0.0 && {param}.is_finite(), ...)`"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Clamp-family methods R4 watches for.
const CLAMP_METHODS: &[&str] = &["clamp", "maximum", "minimum", "min", "max"];

/// R4: epsilon-ball projection must go through `project_ball`.
fn rule_r4_projection_routing(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src
            || file.crate_name != "simpadv-attacks"
            || file.path.ends_with("projection.rs")
        {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            if p.test_mask[i] {
                continue;
            }
            let Some(m) = p.ident(i) else { continue };
            if !CLAMP_METHODS.contains(&m) || !p.is_method_call(i) {
                continue;
            }
            let close = p.match_of[i + 1];
            if close == usize::MAX {
                continue;
            }
            let arg_has_eps = (i + 2..close).any(|k| matches!(p.ident(k), Some("epsilon" | "eps")));
            if arg_has_eps {
                out.push(diag(
                    "R4",
                    file,
                    p.line(i),
                    m,
                    format!(
                        "hand-rolled epsilon clamping via `.{m}(..epsilon..)`; all \
                         ball projection must go through `projection::project_ball`"
                    ),
                ));
            }
        }
    }
    out
}

/// R5: seeded-randomness discipline.
fn rule_r5_rng_discipline(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.path.ends_with("crates/tensor/src/rng.rs")
            || file.path == "crates/tensor/src/rng.rs"
        {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            match p.ident(i) {
                Some(id @ ("thread_rng" | "from_entropy")) => {
                    out.push(diag(
                        "R5",
                        file,
                        p.line(i),
                        id,
                        format!(
                            "`{id}` introduces unseeded randomness; construct rngs via \
                             `StdRng::seed_from_u64` (see crates/tensor/src/rng.rs)"
                        ),
                    ));
                }
                Some("rand")
                    if p.is_punct(i + 1, ':')
                        && p.is_punct(i + 2, ':')
                        && p.ident(i + 3) == Some("random") =>
                {
                    out.push(diag(
                        "R5",
                        file,
                        p.line(i),
                        "random",
                        "`rand::random` draws from an implicit global rng; thread an \
                         explicit seeded rng instead"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
    out
}

/// R6: wrapper-pattern tensor ops expose `try_*` siblings.
fn rule_r6_try_siblings(ws: &Workspace) -> Vec<Diagnostic> {
    // Collect every function name defined in tensor src (cross-file).
    let mut tensor_fns: Vec<&str> = Vec::new();
    for file in &ws.files {
        if file.kind == FileKind::Src && file.crate_name == "simpadv-tensor" {
            tensor_fns.extend(file.parsed.functions.iter().map(|f| f.name.as_str()));
        }
    }
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src || file.crate_name != "simpadv-tensor" {
            continue;
        }
        let p = &file.parsed;
        for f in &p.functions {
            if !f.is_pub || f.in_test || f.body.is_empty() || f.name.starts_with("try_") {
                continue;
            }
            let uses_wrapper =
                f.body.clone().any(|i| p.ident(i) == Some("unwrap_or_else") && p.is_method_call(i));
            if !uses_wrapper {
                continue;
            }
            let sibling = format!("try_{}", f.name);
            if !tensor_fns.iter().any(|n| *n == sibling) {
                out.push(diag(
                    "R6",
                    file,
                    f.line,
                    &f.name,
                    format!(
                        "panicking op `{}` wraps a fallible computation but no \
                         `{sibling}` sibling exists; expose the Result-returning form",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}

/// R7: `std::thread` is confined to the runtime crate.
///
/// Direct threading anywhere else would re-introduce exactly the
/// nondeterminism the runtime's fixed-chunk/ordered-reduction contract
/// exists to rule out, so both `std::thread::...` paths and
/// `thread::...` calls (after a `use std::thread`) are flagged.
fn rule_r7_thread_containment(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.crate_name == "simpadv-runtime" {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            if p.ident(i) != Some("thread") {
                continue;
            }
            let path_use = p.is_punct(i + 1, ':') && p.is_punct(i + 2, ':');
            let std_qualified = i >= 3
                && p.ident(i - 3) == Some("std")
                && p.is_punct(i - 2, ':')
                && p.is_punct(i - 1, ':');
            if path_use || std_qualified {
                out.push(diag(
                    "R7",
                    file,
                    p.line(i),
                    "thread",
                    "`std::thread` outside crates/runtime; express parallelism \
                     through a `simpadv_runtime::Runtime` so the determinism \
                     contract (fixed chunking, ordered reduction) holds"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// R11: `std::net` is confined to the serving crate.
///
/// Sockets are a side-channel past every invariant this wall defends —
/// untraced I/O, nondeterministic ordering, durable output without the
/// atomic-write protocol. `crates/serve` wraps them behind the batch
/// engine (whose forwards stay on the deterministic runtime) and a
/// typed client; everything else — tests and benches included — talks
/// to a server through `simpadv_serve::client`, never a raw socket.
fn rule_r11_net_containment(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.crate_name == "simpadv-serve" {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            let socket_type = matches!(
                p.ident(i),
                Some("TcpListener" | "TcpStream" | "UdpSocket" | "SocketAddr")
            );
            let net_path = p.ident(i) == Some("net")
                && i >= 3
                && p.ident(i - 3) == Some("std")
                && p.is_punct(i - 2, ':')
                && p.is_punct(i - 1, ':');
            if socket_type || net_path {
                out.push(diag(
                    "R11",
                    file,
                    p.line(i),
                    p.ident(i).unwrap_or("net"),
                    "`std::net` outside crates/serve; talk to the inference server \
                     through `simpadv_serve::client` so every byte on the wire goes \
                     through the traced, backpressure-aware serving path"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// R12: `std::process` is confined to the sweep orchestrator and the CLI.
///
/// Spawning children and exiting the process are supervision concerns:
/// `crates/sweep` owns child lifecycle (spawn, deadline kill, exit-status
/// triage) and `crates/cli` owns the process boundary (its `main` maps a
/// typed error to an exit code). Anywhere else, `Command`/`Child`/`Stdio`
/// or a `process::exit` bypasses the supervision protocol — a library
/// crate that exits can never be retried, and a child spawned outside
/// the orchestrator escapes the manifest's crash accounting. Identifier
/// matching is unconditional for the spawn types (they have no other
/// meaning in this workspace); `exit` is only flagged when
/// path-qualified with `process::`, so `process::id()` in test helpers
/// and unrelated `exit` identifiers stay clean.
fn rule_r12_process_containment(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.crate_name == "simpadv-sweep" || file.crate_name == "simpadv-cli" {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            let spawn_type = matches!(p.ident(i), Some("Command" | "Child" | "Stdio"));
            let process_exit = p.ident(i) == Some("exit")
                && i >= 3
                && p.ident(i - 3) == Some("process")
                && p.is_punct(i - 2, ':')
                && p.is_punct(i - 1, ':');
            if spawn_type || process_exit {
                out.push(diag(
                    "R12",
                    file,
                    p.line(i),
                    p.ident(i).unwrap_or("process"),
                    "`std::process` outside crates/sweep and crates/cli; child \
                     lifecycle belongs to the sweep supervisor and exit codes to \
                     the CLI boundary — return a typed error and let the caller \
                     decide the process's fate"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Crates whose `src/` may print to stdout/stderr directly (R8): the
/// user-facing CLI, the lint tool itself, and the bench/regeneration
/// binaries.
const PRINT_CRATES: &[&str] = &["simpadv-cli", "simpadv-lint", "simpadv-bench"];

/// Print-family macros R8 confines.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// R8: stdout/stderr printing is confined to the user-facing crates.
///
/// Library crates must not talk to the terminal — observability goes
/// through `simpadv-trace` events, whose sinks (`crates/trace/src/sink.rs`)
/// are the one sanctioned place where telemetry becomes bytes.
fn rule_r8_print_containment(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src
            || PRINT_CRATES.contains(&file.crate_name.as_str())
            || file.path.ends_with("crates/trace/src/sink.rs")
            || file.path == "crates/trace/src/sink.rs"
        {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            if p.test_mask[i] {
                continue;
            }
            let Some(m) = p.ident(i) else { continue };
            if PRINT_MACROS.contains(&m) && p.is_punct(i + 1, '!') {
                out.push(diag(
                    "R8",
                    file,
                    p.line(i),
                    m,
                    format!(
                        "`{m}!` in library code; emit a simpadv-trace event (span, \
                         counter, gauge) and let a sink decide how to render it"
                    ),
                ));
            }
        }
    }
    out
}

/// Crates R9 exempts: `simpadv-resilience` owns the atomic-write
/// protocol, and the trace sinks write append-only event streams where a
/// replace-on-close protocol would be wrong (a crashed run should keep
/// the events it managed to emit).
const DURABLE_WRITE_CRATES: &[&str] = &["simpadv-resilience", "simpadv-trace"];

/// R9: durable-write containment.
///
/// A bare `File::create` (or `std::fs::write`) truncates in place: a
/// crash mid-write leaves a torn file at the final path, which is exactly
/// the failure mode the checkpoint subsystem exists to rule out. All
/// artifact/model/checkpoint output must go through
/// `simpadv_resilience::atomic_write` and friends.
fn rule_r9_durable_writes(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src || DURABLE_WRITE_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            if p.test_mask[i] {
                continue;
            }
            let path_sep = p.is_punct(i + 1, ':') && p.is_punct(i + 2, ':');
            if !path_sep {
                continue;
            }
            match (p.ident(i), p.ident(i + 3)) {
                (Some("File"), Some("create")) => {
                    out.push(diag(
                        "R9",
                        file,
                        p.line(i),
                        "create",
                        "`File::create` truncates in place; write durable output \
                         through `simpadv_resilience::atomic_write` (temp file + \
                         fsync + rename) so a crash never leaves a torn file"
                            .to_string(),
                    ));
                }
                (Some("fs"), Some("write")) => {
                    out.push(diag(
                        "R9",
                        file,
                        p.line(i),
                        "write",
                        "`fs::write` truncates in place; write durable output \
                         through `simpadv_resilience::atomic_write` (temp file + \
                         fsync + rename) so a crash never leaves a torn file"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
    out
}

/// R10: wall-clock quarantine. `std::time::Instant`/`SystemTime` are
/// confined to the span clock (`crates/trace/src/clock.rs`, which wraps
/// them in `WallTimer`) and the offline analyzers in `crates/obs`;
/// everywhere else, production code times itself through the span
/// clock so wall readings stay in `meta` and never leak into logical
/// event content. Test code is exempt. The kernel lab's calibration
/// file earns a `lint.toml` allow entry rather than a hole here: the
/// rule still reports it, and the allowlist records the justification
/// (its readings feed artifact `meta` only).
fn rule_r10_wall_clock_quarantine(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Src
            || file.crate_name == "simpadv-obs"
            || file.path == "crates/trace/src/clock.rs"
        {
            continue;
        }
        let p = &file.parsed;
        for i in 0..p.tokens.len() {
            if p.test_mask[i] {
                continue;
            }
            if let Some(name @ ("Instant" | "SystemTime")) = p.ident(i) {
                out.push(diag(
                    "R10",
                    file,
                    p.line(i),
                    name,
                    format!(
                        "`{name}` outside the wall-clock quarantine \
                         (crates/trace/src/clock.rs and crates/obs); time through \
                         `simpadv_trace::clock::WallTimer` so wall readings stay \
                         in event `meta` and the logical stream stays thread-invariant"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files.iter().map(|(path, src)| FileUnit::from_source(path, src)).collect(),
        }
    }

    fn run(rule: &str, files: &[(&str, &str)]) -> Vec<Diagnostic> {
        match rule_by_id(rule).expect("known rule").check {
            Check::Syntactic(f) => f(&ws(files)),
            Check::Semantic(_) => panic!("semantic rules are tested in semrules.rs"),
        }
    }

    #[test]
    fn expand_spec_handles_ids_ranges_and_errors() {
        assert_eq!(expand_spec("R1").unwrap(), vec!["R1"]);
        assert_eq!(expand_spec("R1,R3").unwrap(), vec!["R1", "R3"]);
        assert_eq!(expand_spec("S1-S5").unwrap(), vec!["S1", "S2", "S3", "S4", "S5"]);
        assert_eq!(expand_spec("R8-R10,S2").unwrap(), vec!["R8", "R9", "R10", "S2"]);
        // Duplicates collapse.
        assert_eq!(expand_spec("R1,R1-R2").unwrap(), vec!["R1", "R2"]);
        assert!(expand_spec("R13").is_err());
        assert!(expand_spec("R1-S2").is_err());
        assert!(expand_spec("S5-S1").is_err());
        assert!(expand_spec("").is_err());
        assert!(expand_spec("R1-R99").is_err());
    }

    // ---- R1 ----

    #[test]
    fn r1_fires_on_unwrap_in_library_src() {
        let d = run(
            "R1",
            &[("crates/tensor/src/ops.rs", "pub fn f(x: Option<f32>) -> f32 { x.unwrap() }")],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "unwrap");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn r1_fires_on_expect_and_bare_panic() {
        let src = r#"
fn a(x: Option<u8>) -> u8 { x.expect("boom") }
fn b() { panic!("no"); }
"#;
        let d = run("R1", &[("crates/nn/src/layer.rs", src)]);
        let items: Vec<&str> = d.iter().map(|d| d.item.as_str()).collect();
        assert_eq!(items, vec!["expect", "panic"]);
    }

    #[test]
    fn r1_allows_sanctioned_wrapper_and_test_code() {
        let src = r#"
pub fn matmul(&self, o: &T) -> T {
    self.try_matmul(o).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); y.expect("fine"); panic!("fine"); }
}
"#;
        assert!(run("R1", &[("crates/tensor/src/linalg.rs", src)]).is_empty());
    }

    #[test]
    fn r1_ignores_non_library_crates_and_strings() {
        let files = [
            ("crates/cli/src/main.rs", "fn main() { x.unwrap(); }"),
            (
                "crates/tensor/src/doc.rs",
                r#"pub fn f() -> &'static str { "call .unwrap() at your peril" }"#,
            ),
        ];
        assert!(run("R1", &files).is_empty());
    }

    // ---- R2 ----

    #[test]
    fn r2_fires_on_undocumented_panicking_pub_fn() {
        let src = r#"
/// Adds.
pub fn add(a: usize, b: usize) -> usize {
    assert!(a < 100, "too big");
    a + b
}
"#;
        let d = run("R2", &[("crates/tensor/src/ops.rs", src)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "add");
    }

    #[test]
    fn r2_satisfied_by_panics_section_and_skips_private() {
        let src = r#"
/// Adds.
///
/// # Panics
///
/// Panics when `a >= 100`.
pub fn add(a: usize) -> usize { assert!(a < 100); a }

fn private_helper(a: usize) -> usize { assert!(a < 100); a }

pub fn no_panic(a: usize) -> usize { a + 1 }
"#;
        assert!(run("R2", &[("crates/tensor/src/ops.rs", src)]).is_empty());
    }

    // ---- R3 ----

    #[test]
    fn r3_fires_when_epsilon_not_validated() {
        let src = r#"
impl Fgsm {
    pub fn new(epsilon: f32) -> Self {
        Self { epsilon }
    }
}
"#;
        let d = run("R3", &[("crates/attacks/src/fgsm.rs", src)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "epsilon");
    }

    #[test]
    fn r3_accepts_seed_idiom_and_checks_each_param() {
        let src = r#"
impl Pgd {
    pub fn new(epsilon: f32, step: f32, iters: usize) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        Self { epsilon, step, iters }
    }
}
"#;
        // epsilon validated, step not: exactly one diagnostic, for step.
        let d = run("R3", &[("crates/attacks/src/pgd.rs", src)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "step");
    }

    #[test]
    fn r3_requires_is_finite_not_just_lower_bound() {
        let src = r#"
impl A {
    pub fn new(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0, "negative epsilon");
        Self { epsilon }
    }
}
"#;
        let d = run("R3", &[("crates/attacks/src/a.rs", src)]);
        assert_eq!(d.len(), 1);
    }

    // ---- R4 ----

    #[test]
    fn r4_fires_on_manual_epsilon_clamp() {
        let src = r#"
fn step(&self, x: &T, orig: &T) -> T {
    x.clamp(orig.sub_scalar(self.epsilon), orig.add_scalar(self.epsilon))
}
"#;
        let d = run("R4", &[("crates/attacks/src/pgd.rs", src)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "clamp");
    }

    #[test]
    fn r4_allows_projection_rs_and_plain_clamps() {
        let files = [
            (
                "crates/attacks/src/projection.rs",
                "pub fn project_ball(x: &T, eps: f32) -> T { x.maximum(eps) }",
            ),
            ("crates/attacks/src/l2.rs", "fn f(x: &T) -> T { x.clamp(0.0, 1.0) }"),
        ];
        assert!(run("R4", &files).is_empty());
    }

    #[test]
    fn r4_fires_on_min_max_pair_with_eps() {
        let src = "fn f(&self) -> T { d.max(-eps).min(eps) }";
        let d = run("R4", &[("crates/attacks/src/custom.rs", src)]);
        assert_eq!(d.len(), 2);
    }

    // ---- R5 ----

    #[test]
    fn r5_fires_everywhere_except_tensor_rng() {
        let files = [
            ("crates/data/src/synth.rs", "fn f() { let mut r = thread_rng(); }"),
            ("crates/nn/src/init.rs", "fn g() { let r = StdRng::from_entropy(); }"),
            ("crates/core/src/train.rs", "fn h() -> f32 { rand::random() }"),
            ("crates/tensor/src/rng.rs", "fn ok() { let r = thread_rng(); }"),
        ];
        let d = run("R5", &files);
        let items: Vec<&str> = d.iter().map(|d| d.item.as_str()).collect();
        assert_eq!(items, vec!["thread_rng", "from_entropy", "random"]);
    }

    #[test]
    fn r5_ignores_seeded_construction() {
        let src = "fn f() { let r = StdRng::seed_from_u64(42); }";
        assert!(run("R5", &[("crates/core/src/train.rs", src)]).is_empty());
    }

    // ---- R6 ----

    #[test]
    fn r6_fires_when_wrapper_has_no_try_sibling() {
        let src = r#"
pub fn matmul(&self, o: &T) -> T {
    self.inner_mul(o).unwrap_or_else(|e| panic!("{e}"))
}
"#;
        let d = run("R6", &[("crates/tensor/src/linalg.rs", src)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "matmul");
    }

    #[test]
    fn r6_satisfied_by_cross_file_sibling() {
        let files = [
            (
                "crates/tensor/src/linalg.rs",
                "pub fn matmul(&self, o: &T) -> T { self.try_matmul(o).unwrap_or_else(|e| panic!(\"{e}\")) }",
            ),
            (
                "crates/tensor/src/fallible.rs",
                "pub fn try_matmul(&self, o: &T) -> Result<T, TensorError> { todo_body() }",
            ),
        ];
        assert!(run("R6", &files).is_empty());
    }

    #[test]
    fn r6_skips_non_wrapper_and_try_fns() {
        let src = r#"
pub fn shape(&self) -> &[usize] { &self.shape }
pub fn try_reshape(&self, s: &[usize]) -> Result<T, E> { inner(s) }
"#;
        assert!(run("R6", &[("crates/tensor/src/ops.rs", src)]).is_empty());
    }

    // ---- R7 ----

    #[test]
    fn r7_fires_on_std_thread_outside_runtime() {
        let files = [
            ("crates/nn/src/layer.rs", "fn f() { std::thread::sleep(d); }"),
            ("crates/core/src/eval.rs", "use std::thread;\nfn g() { thread::spawn(|| {}); }"),
        ];
        let d = run("R7", &files);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|d| d.item == "thread"));
        assert_eq!(d[1].line, 1); // the `use std::thread` import itself
        assert_eq!(d[2].line, 2); // the `thread::spawn` call
    }

    #[test]
    fn r7_allows_runtime_crate_and_unrelated_idents() {
        let files = [
            ("crates/runtime/src/lib.rs", "fn f() { std::thread::scope(|s| work(s)); }"),
            ("crates/core/src/train.rs", "fn g(threads: usize) -> usize { threads + 1 }"),
            ("crates/data/src/synth.rs", "fn h() { let thread = 3; let x = thread; }"),
        ];
        assert!(run("R7", &files).is_empty());
    }

    // ---- R8 ----

    #[test]
    fn r8_fires_on_printing_from_library_src() {
        let files = [
            ("crates/tensor/src/ops.rs", "fn f() { println!(\"shape {s:?}\"); }"),
            ("crates/trace/src/lib.rs", "fn g() { eprintln!(\"oops\"); }"),
        ];
        let d = run("R8", &files);
        let items: Vec<&str> = d.iter().map(|d| d.item.as_str()).collect();
        assert_eq!(items, vec!["println", "eprintln"]);
    }

    // ---- R9 ----

    #[test]
    fn r9_fires_on_file_create_and_fs_write_in_src() {
        let files = [
            ("crates/bench/src/lib.rs", "fn f(p: &Path) { let file = std::fs::File::create(p); }"),
            ("crates/cli/src/commands.rs", "fn g(p: &Path) { File::create(p); }"),
            ("crates/data/src/pgm.rs", "fn h(p: &Path) { std::fs::write(p, b\"x\"); }"),
        ];
        let d = run("R9", &files);
        let items: Vec<&str> = d.iter().map(|d| d.item.as_str()).collect();
        assert_eq!(items, vec!["create", "create", "write"]);
    }

    #[test]
    fn r9_allows_resilience_trace_tests_and_reads() {
        let files = [
            (
                "crates/resilience/src/atomic.rs",
                "pub fn atomic_write(p: &Path) { std::fs::File::create(p); }",
            ),
            ("crates/trace/src/lib.rs", "fn sink(p: &Path) { std::fs::File::create(p); }"),
            ("crates/cli/src/commands.rs", "fn open(p: &Path) { std::fs::File::open(p); }"),
            (
                "crates/nn/src/serialize.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::fs::write(\"x\", b\"y\").unwrap(); }\n}\n",
            ),
            ("crates/core/tests/resume.rs", "fn t(p: &Path) { std::fs::File::create(p); }"),
        ];
        assert!(run("R9", &files).is_empty());
    }

    // ---- R10 ----

    #[test]
    fn r10_fires_on_instant_and_systemtime_outside_the_quarantine() {
        let files = [
            ("crates/core/src/train/mod.rs", "fn f() { let t = std::time::Instant::now(); }"),
            (
                "crates/bench/src/bin/table1.rs",
                "use std::time::SystemTime;\nfn g() { let t = SystemTime::now(); }",
            ),
            // the kernel lab's allow entry is scoped to calibrate.rs: a
            // sibling file in the same module still trips the rule
            (
                "crates/bench/src/kernels/mod.rs",
                "fn sweep() { let t = std::time::Instant::now(); }",
            ),
        ];
        let d = run("R10", &files);
        let items: Vec<&str> = d.iter().map(|d| d.item.as_str()).collect();
        assert_eq!(items, vec!["Instant", "SystemTime", "SystemTime", "Instant"]);
        assert!(d[0].message.contains("WallTimer"));
    }

    #[test]
    fn r10_allows_clock_module_obs_crate_and_test_code() {
        let files = [
            (
                "crates/trace/src/clock.rs",
                "pub struct WallTimer { start: std::time::Instant }",
            ),
            (
                "crates/obs/src/tree.rs",
                "fn stamp() -> std::time::Instant { std::time::Instant::now() }",
            ),
            (
                "crates/nn/src/layers.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::time::Instant::now(); }\n}\n",
            ),
            ("crates/tensor/tests/ops.rs", "fn t() { let _ = std::time::Instant::now(); }"),
            // comments and strings never tokenize into idents
            ("crates/data/src/lib.rs", "// Instant\nfn f() -> &'static str { \"SystemTime\" }"),
        ];
        assert!(run("R10", &files).is_empty());
    }

    // ---- R11 ----

    #[test]
    fn r11_fires_on_sockets_outside_the_serve_crate() {
        let files = [
            (
                "crates/bench/src/bin/custom.rs",
                "fn main() { let l = std::net::TcpListener::bind(\"0:0\"); }",
            ),
            (
                "crates/cli/src/commands.rs",
                "use std::net::TcpStream;\nfn f() { let _ = TcpStream::connect(\"a:1\"); }",
            ),
            // tests are NOT exempt: they must also go through the client
            ("tests/poke.rs", "fn t() { let _ = std::net::UdpSocket::bind(\"0:0\"); }"),
        ];
        let d = run("R11", &files);
        assert!(d.len() >= 3, "each socket use flagged: {d:?}");
        assert!(d[0].message.contains("simpadv_serve::client"));
    }

    #[test]
    fn r11_allows_the_serve_crate_and_inert_text() {
        let files = [
            (
                "crates/serve/src/server.rs",
                "use std::net::{TcpListener, TcpStream};\nfn f(l: &TcpListener) {}",
            ),
            (
                "crates/serve/src/client.rs",
                "fn c() { let _ = std::net::TcpStream::connect(\"a:1\"); }",
            ),
            // comments and strings never tokenize into idents
            ("crates/data/src/lib.rs", "// TcpStream\nfn f() -> &'static str { \"std::net\" }"),
        ];
        assert!(run("R11", &files).is_empty());
    }

    // ---- R12 ----

    #[test]
    fn r12_fires_on_process_use_outside_sweep_and_cli() {
        let files = [
            (
                "crates/bench/src/bin/custom.rs",
                "fn main() { let _ = std::process::Command::new(\"ls\").status(); }",
            ),
            (
                "crates/serve/src/server.rs",
                "use std::process::exit;\nfn f() { std::process::exit(2); }",
            ),
            // tests are NOT exempt: a test that spawns escapes supervision too
            ("crates/obs/tests/poke.rs", "fn t(c: std::process::Child) { drop(c); }"),
        ];
        let d = run("R12", &files);
        assert!(d.len() >= 3, "each process use flagged: {d:?}");
        assert!(d[0].message.contains("sweep supervisor"));
    }

    #[test]
    fn r12_allows_the_orchestrator_the_cli_and_inert_text() {
        let files = [
            (
                "crates/sweep/src/supervise.rs",
                "use std::process::{Child, Command, Stdio};\nfn f(c: &mut Child) {}",
            ),
            ("crates/cli/src/main.rs", "fn main() { std::process::exit(1); }"),
            // `process::id()` in temp-dir helpers is not a spawn or an exit
            ("crates/data/src/lib.rs", "fn tag() -> u32 { std::process::id() }"),
            // comments and strings never tokenize into idents
            ("crates/nn/src/lib.rs", "// Command\nfn f() -> &'static str { \"std::process\" }"),
        ];
        assert!(run("R12", &files).is_empty());
    }

    #[test]
    fn r8_allows_cli_lint_bench_sinks_and_tests() {
        let files = [
            ("crates/cli/src/main.rs", "fn main() { println!(\"ok\"); }"),
            ("crates/lint/src/main.rs", "fn main() { eprintln!(\"{d}\"); }"),
            ("crates/bench/src/bin/table1.rs", "fn main() { println!(\"{row}\"); }"),
            ("crates/trace/src/sink.rs", "fn emit() { println!(\"{line}\"); }"),
            (
                "crates/nn/src/layer.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}\n",
            ),
            ("crates/core/tests/train.rs", "fn t() { println!(\"dbg\"); }"),
            (
                "crates/data/src/doc.rs",
                r#"fn f() -> &'static str { "println! is mentioned here" }"#,
            ),
        ];
        assert!(run("R8", &files).is_empty());
    }
}
