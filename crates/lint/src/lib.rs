//! `simpadv-lint`: a repo-specific static analyzer for the
//! adversarial-training workspace.
//!
//! The analyzer parses every `.rs` file in the workspace with a
//! self-contained lexer (no external parser dependency — the build
//! environment is offline) and enforces seventeen invariants the stack's
//! correctness rests on: twelve file-local syntactic rules (R1–R12) and
//! five workspace-wide semantic rules (S1–S5) that reason over a symbol
//! table, call graph and taint lattice. See [`rules::RULES`] for the
//! catalogue and `DESIGN.md` for the rationale behind each. Diagnostics
//! are rendered rustc-style (`error[R3]: ... --> path:line`, with call
//! chains as `note:` lines for the S-rules), optionally as JSON, and
//! `--deny` turns any finding into a non-zero exit for CI.
//!
//! Intentional exceptions live in `lint.toml` at the workspace root; every
//! entry must carry a `reason`. The same file declares the S2 taint sinks
//! (`[[taint]]`) and S4 canonical kernels (`[[kernel]]`).

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod flow;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod semrules;
pub mod symbols;

use std::io::Read;
use std::path::{Path, PathBuf};

/// Where in a crate a file lives; rules use this to scope themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under a `src/` directory — library/binary code.
    Src,
    /// Under a `tests/` directory — integration tests.
    Test,
    /// Under a `benches/` directory.
    Bench,
    /// Under an `examples/` directory.
    Example,
    /// Anything else (build scripts, fixtures).
    Other,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Directory classification.
    pub kind: FileKind,
    /// Cargo package name the file belongs to (e.g. `simpadv-tensor`).
    pub crate_name: String,
    /// Lexed and structure-parsed content.
    pub parsed: parse::ParsedFile,
}

impl FileUnit {
    /// Builds a unit from in-memory source; used by rule fixtures and the
    /// walker alike.
    pub fn from_source(path: &str, src: &str) -> Self {
        let (crate_name, kind) = classify(path);
        FileUnit { path: path.to_string(), kind, crate_name, parsed: parse::parse(lexer::lex(src)) }
    }
}

/// Maps a workspace-relative path to (package name, file kind).
fn classify(path: &str) -> (String, FileKind) {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_name, rest): (String, &[&str]) =
        if parts.first() == Some(&"crates") && parts.len() > 2 {
            let pkg = match parts[1] {
                "trace" => "simpadv-trace",
                "obs" => "simpadv-obs",
                "runtime" => "simpadv-runtime",
                "tensor" => "simpadv-tensor",
                "nn" => "simpadv-nn",
                "data" => "simpadv-data",
                "attacks" => "simpadv-attacks",
                "resilience" => "simpadv-resilience",
                "core" => "simpadv",
                "cli" => "simpadv-cli",
                "lint" => "simpadv-lint",
                "bench" => "simpadv-bench",
                "serve" => "simpadv-serve",
                "sweep" => "simpadv-sweep",
                other => other,
            };
            (pkg.to_string(), &parts[2..])
        } else {
            ("simpadv-suite".to_string(), &parts[..])
        };
    let kind = match rest.first() {
        Some(&"src") => FileKind::Src,
        Some(&"tests") => FileKind::Test,
        Some(&"benches") => FileKind::Bench,
        Some(&"examples") => FileKind::Example,
        _ => FileKind::Other,
    };
    (crate_name, kind)
}

/// The set of analyzed files.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All files, in walk order.
    pub files: Vec<FileUnit>,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`R1`..`R12`, `S1`..`S5`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The offending item (method name, function name, parameter...);
    /// matched against `item` in `lint.toml`.
    pub item: String,
    /// Human-readable explanation.
    pub message: String,
    /// Call chain for semantic rules (`crate::Type::fn (path:line)` per
    /// hop, caller first); empty for syntactic rules.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// Renders the diagnostic rustc-style; call-chain hops become
    /// `note:` lines.
    pub fn render(&self) -> String {
        let mut out =
            format!("error[{}]: {}\n  --> {}:{}\n", self.rule, self.message, self.path, self.line);
        for (i, hop) in self.chain.iter().enumerate() {
            out.push_str(&format!("  note: [{i}] {hop}\n"));
        }
        out
    }

    /// Renders the diagnostic as a JSON object.
    pub fn to_json(&self) -> String {
        let chain = if self.chain.is_empty() {
            String::from("[]")
        } else {
            let hops: Vec<String> = self.chain.iter().map(|h| json_str(h)).collect();
            format!("[{}]", hops.join(","))
        };
        format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"item\":{},\"message\":{},\"chain\":{}}}",
            json_str(self.rule),
            json_str(&self.path),
            self.line,
            json_str(&self.item),
            json_str(&self.message),
            chain
        )
    }
}

/// JSON-escapes a string (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a list of diagnostics as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str("  ");
        out.push_str(&d.to_json());
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Directories the walker never descends into. `shims/` holds vendored
/// API-compatibility stubs for external crates (offline environment) and
/// is third-party surface, not project code; `fixtures/` holds the lint
/// suite's own planted-violation corpora, which must never join the real
/// wall.
const SKIP_DIRS: &[&str] = &["target", "shims", ".git", ".github", "node_modules", "fixtures"];

/// Recursively collects and parses every `.rs` file under `root`.
///
/// # Errors
///
/// Returns any I/O error from directory traversal or file reads.
pub fn collect_files(root: &Path) -> std::io::Result<Workspace> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let mut src = String::new();
        std::fs::File::open(&p)?.read_to_string(&mut src)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(FileUnit::from_source(&rel, &src));
    }
    Ok(Workspace { files })
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs rules over the workspace, applies the allowlist, and returns
/// diagnostics sorted by path, line, and rule id.
///
/// `spec` filters the registry: `None` runs everything, otherwise a
/// comma list of ids and ranges (`R1-R10,S2`) as accepted by
/// [`rules::expand_spec`]. An invalid spec selects nothing here — the
/// CLI validates specs before calling.
///
/// The semantic model (symbol table, call graph, taint sources) is
/// built only when at least one S-rule is selected.
pub fn run(ws: &Workspace, cfg: &config::Config, spec: Option<&str>) -> Vec<Diagnostic> {
    let selected: Option<Vec<&str>> = spec.map(|s| rules::expand_spec(s).unwrap_or_default());
    let wants = |id: &str| selected.as_ref().is_none_or(|ids| ids.contains(&id));
    let mut model: Option<semrules::SemanticModel> = None;
    let mut out = Vec::new();
    for rule in rules::RULES {
        if !wants(rule.id) {
            continue;
        }
        match rule.check {
            rules::Check::Syntactic(f) => out.extend(f(ws)),
            rules::Check::Semantic(f) => {
                let model = model.get_or_insert_with(|| semrules::SemanticModel::build(ws));
                out.extend(f(&semrules::SemanticCtx { ws, cfg, model }));
            }
        }
    }
    out.retain(|d| !cfg.is_allowed(d.rule, &d.path, &d.item));
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_crate_dirs_to_package_names() {
        assert_eq!(
            classify("crates/tensor/src/ops.rs"),
            ("simpadv-tensor".to_string(), FileKind::Src)
        );
        assert_eq!(
            classify("crates/runtime/src/lib.rs"),
            ("simpadv-runtime".to_string(), FileKind::Src)
        );
        assert_eq!(classify("crates/core/tests/train.rs"), ("simpadv".to_string(), FileKind::Test));
        assert_eq!(
            classify("crates/serve/src/server.rs"),
            ("simpadv-serve".to_string(), FileKind::Src)
        );
        assert_eq!(
            classify("crates/sweep/src/supervise.rs"),
            ("simpadv-sweep".to_string(), FileKind::Src)
        );
        assert_eq!(classify("src/lib.rs"), ("simpadv-suite".to_string(), FileKind::Src));
        assert_eq!(classify("tests/end_to_end.rs"), ("simpadv-suite".to_string(), FileKind::Test));
        assert_eq!(
            classify("crates/attacks/benches/attack_speed.rs"),
            ("simpadv-attacks".to_string(), FileKind::Bench)
        );
        assert_eq!(
            classify("crates/trace/src/sink.rs"),
            ("simpadv-trace".to_string(), FileKind::Src)
        );
        assert_eq!(classify("crates/obs/src/tree.rs"), ("simpadv-obs".to_string(), FileKind::Src));
        assert_eq!(
            classify("crates/resilience/src/atomic.rs"),
            ("simpadv-resilience".to_string(), FileKind::Src)
        );
        assert_eq!(
            classify("crates/bench/src/bin/table1.rs"),
            ("simpadv-bench".to_string(), FileKind::Src)
        );
    }

    #[test]
    fn allowlist_filters_matching_diagnostics() {
        let ws = Workspace {
            files: vec![FileUnit::from_source(
                "crates/nn/src/pool.rs",
                "fn backward(&self) { self.cache.expect(\"forward first\"); }",
            )],
        };
        let cfg = config::parse(
            "[[allow]]\nrule = \"R1\"\npath = \"crates/nn/src/pool.rs\"\nitem = \"expect\"\nreason = \"documented contract\"\n",
        )
        .expect("config");
        assert!(run(&ws, &cfg, None).is_empty());
        // Without the allow entry, it fires.
        assert_eq!(run(&ws, &config::Config::default(), Some("R1")).len(), 1);
    }

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic {
            rule: "R1",
            path: "a.rs".into(),
            line: 3,
            item: "unwrap".into(),
            message: "say \"no\"".into(),
            chain: Vec::new(),
        };
        assert_eq!(
            d.to_json(),
            "{\"rule\":\"R1\",\"path\":\"a.rs\",\"line\":3,\"item\":\"unwrap\",\"message\":\"say \\\"no\\\"\",\"chain\":[]}"
        );
        let arr = render_json(&[d]);
        assert!(arr.starts_with("[\n") && arr.ends_with("]\n"));
    }

    #[test]
    fn chain_renders_as_note_lines_and_json_array() {
        let d = Diagnostic {
            rule: "S1",
            path: "a.rs".into(),
            line: 3,
            item: "entry".into(),
            message: "reachable panic".into(),
            chain: vec!["a::entry (a.rs:3)".into(), "a::deep (a.rs:9)".into()],
        };
        let text = d.render();
        assert!(text.contains("note: [0] a::entry (a.rs:3)"));
        assert!(text.contains("note: [1] a::deep (a.rs:9)"));
        assert!(d.to_json().contains("\"chain\":[\"a::entry (a.rs:3)\",\"a::deep (a.rs:9)\"]"));
    }

    #[test]
    fn run_accepts_specs_with_ranges() {
        let ws = Workspace {
            files: vec![FileUnit::from_source(
                "crates/tensor/src/ops.rs",
                "pub fn f(x: Option<f32>) -> f32 { x.unwrap() }",
            )],
        };
        let cfg = config::Config::default();
        // R1 fires under a range spec that includes it, not under S-only.
        assert!(!run(&ws, &cfg, Some("R1-R3")).is_empty());
        assert!(run(&ws, &cfg, Some("S1-S5")).is_empty());
    }
}
