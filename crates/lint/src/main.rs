//! CLI entry point for `simpadv-lint`.
//!
//! ```text
//! simpadv-lint [--root DIR] [--config FILE] [--rule RN] [--json] [--deny] [--list]
//! ```
//!
//! Exit codes: `0` clean (or findings without `--deny`), `1` findings with
//! `--deny`, `2` usage or configuration error.

use simpadv_lint::{collect_files, config, render_json, rules, run};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    rule: Option<String>,
    json: bool,
    deny: bool,
    list: bool,
}

fn usage() -> &'static str {
    "usage: simpadv-lint [--root DIR] [--config FILE] [--rule RN] [--json] [--deny] [--list]\n\
     \n\
     --root DIR     workspace root to analyze (default: current directory)\n\
     --config FILE  allowlist file (default: <root>/lint.toml if present)\n\
     --rule RN      run a single rule (R1..R10)\n\
     --json         emit diagnostics as a JSON array\n\
     --deny         exit non-zero when any diagnostic is emitted (CI mode)\n\
     --list         print the rule catalogue and exit\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        rule: None,
        json: false,
        deny: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root requires a directory".to_string())?,
                );
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--config requires a file".to_string())?,
                ));
            }
            "--rule" => {
                let id = it.next().ok_or_else(|| "--rule requires an id (R1..R10)".to_string())?;
                if rules::rule_by_id(&id).is_none() {
                    return Err(format!("unknown rule `{id}`; try --list"));
                }
                args.rule = Some(id);
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list {
        for rule in rules::RULES {
            println!("{}: {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let config_path = args.config.clone().or_else(|| {
        let default = args.root.join("lint.toml");
        default.exists().then_some(default)
    });
    let cfg = match config_path {
        Some(path) => {
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match config::parse(&src) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => config::Config::default(),
    };

    let ws = match collect_files(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: walking {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    let diags = run(&ws, &cfg, args.rule.as_deref());

    if args.json {
        print!("{}", render_json(&diags));
    } else {
        for d in &diags {
            print!("{}", d.render());
        }
        let scope = args.rule.as_deref().unwrap_or("R1..R10");
        eprintln!(
            "simpadv-lint: {} file(s) analyzed, {} diagnostic(s) [{}]",
            ws.files.len(),
            diags.len(),
            scope
        );
    }

    if args.deny && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
