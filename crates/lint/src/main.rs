//! CLI entry point for `simpadv-lint`.
//!
//! ```text
//! simpadv-lint [--root DIR] [--config FILE] [--rules SPEC] [--json] [--deny]
//!              [--baseline FILE] [--write-baseline] [--list]
//! simpadv-lint graph --dot [--root DIR]
//! ```
//!
//! Exit codes:
//! - `0` — clean: no diagnostics, or diagnostics without `--deny`, and no
//!   baseline regressions
//! - `1` — findings with `--deny`, or counts above the `--baseline`
//!   snapshot
//! - `2` — usage or configuration error (bad flags, malformed lint.toml
//!   or baseline file, unreadable root)
//!
//! The tool never writes files (that is R9's job to police): `graph
//! --dot` and `--write-baseline` print to stdout for the caller to
//! redirect.

use simpadv_lint::{baseline, collect_files, config, render_json, rules, run, semrules};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    rules: Option<String>,
    json: bool,
    deny: bool,
    list: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    graph: bool,
    dot: bool,
}

fn usage() -> &'static str {
    "usage: simpadv-lint [--root DIR] [--config FILE] [--rules SPEC] [--json] [--deny]\n\
     \x20                   [--baseline FILE] [--write-baseline] [--list]\n\
     \x20      simpadv-lint graph --dot [--root DIR]\n\
     \n\
     --root DIR       workspace root to analyze (default: current directory)\n\
     --config FILE    lint.toml (default: <root>/lint.toml if present)\n\
     --rules SPEC     comma list of ids/ranges: R1, R1-R10, S1-S5, R2,S4 ...\n\
     --rule RN        alias for --rules with a single id\n\
     --json           emit diagnostics as a JSON array\n\
     --deny           exit 1 when any diagnostic is emitted (CI mode)\n\
     --baseline FILE  compare per-rule counts against a committed snapshot;\n\
     \x20                exit 1 on any rule above its recorded count\n\
     --write-baseline print the current counts as baseline JSON on stdout\n\
     --list           print the rule catalogue (R-tier, then S-tier) and exit\n\
     \n\
     graph --dot      print the workspace call graph in Graphviz DOT format\n\
     \n\
     exit codes: 0 clean, 1 findings (--deny) or baseline regression,\n\
     2 usage/configuration error\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        rules: None,
        json: false,
        deny: false,
        list: false,
        baseline: None,
        write_baseline: false,
        graph: false,
        dot: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("graph") {
        it.next();
        args.graph = true;
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root requires a directory".to_string())?,
                );
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--config requires a file".to_string())?,
                ));
            }
            "--rules" | "--rule" => {
                let spec = it
                    .next()
                    .ok_or_else(|| format!("{a} requires a spec (e.g. R1, R1-R10, S1-S5)"))?;
                rules::expand_spec(&spec)?;
                args.rules = Some(spec);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--baseline requires a file".to_string())?,
                ));
            }
            "--write-baseline" => args.write_baseline = true,
            "--dot" => args.dot = true,
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.graph && !args.dot {
        return Err("the graph subcommand requires --dot".to_string());
    }
    if args.dot && !args.graph {
        return Err("--dot only applies to the graph subcommand".to_string());
    }
    Ok(args)
}

fn print_list() {
    println!("Syntactic rules (file-local, token-accurate):");
    for rule in rules::RULES {
        if rule.id.starts_with('R') {
            println!("  {}: {}", rule.id, rule.summary);
        }
    }
    println!();
    println!("Semantic rules (workspace-wide: symbol table + call graph + taint):");
    for rule in rules::RULES {
        if rule.id.starts_with('S') {
            println!("  {}: {}", rule.id, rule.summary);
        }
    }
    println!();
    println!("exit codes: 0 clean, 1 findings (--deny) or baseline regression, 2 usage error");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list {
        print_list();
        return ExitCode::SUCCESS;
    }

    let ws = match collect_files(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: walking {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.graph {
        let model = semrules::SemanticModel::build(&ws);
        print!("{}", model.graph.to_dot());
        return ExitCode::SUCCESS;
    }

    let config_path = args.config.clone().or_else(|| {
        let default = args.root.join("lint.toml");
        default.exists().then_some(default)
    });
    let cfg = match config_path {
        Some(path) => {
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match config::parse(&src) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => config::Config::default(),
    };

    let diags = run(&ws, &cfg, args.rules.as_deref());

    if args.write_baseline {
        print!("{}", baseline::render(&diags));
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", render_json(&diags));
    } else {
        for d in &diags {
            print!("{}", d.render());
        }
        let scope = args.rules.as_deref().unwrap_or("R1-R12,S1-S5");
        eprintln!(
            "simpadv-lint: {} file(s) analyzed, {} diagnostic(s) [{}]",
            ws.files.len(),
            diags.len(),
            scope
        );
    }

    if let Some(path) = &args.baseline {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let counts = match baseline::parse(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let regressions = baseline::compare(&counts, &diags);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("baseline regression: {r}");
            }
            return ExitCode::FAILURE;
        }
    }

    if args.deny && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
