//! The five semantic rules (S1–S5).
//!
//! Where R1–R10 are per-file and token-local, the S-rules reason over
//! the whole workspace at once: a symbol table ([`crate::symbols`]), a
//! call graph ([`crate::callgraph`]), and a taint lattice
//! ([`crate::flow`]) let them follow a property across function and
//! crate boundaries and attach the full call chain to each diagnostic.

use crate::callgraph::{call_sites, CallGraph, Resolver};
use crate::config::Config;
use crate::flow::{self, SourceKind};
use crate::parse::ParsedFile;
use crate::rules::PANIC_FREE_CRATES;
use crate::symbols::{FnId, FnInfo, SymbolTable};
use crate::{Diagnostic, FileKind, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Everything the semantic rules need, built once per run.
pub struct SemanticModel {
    /// Resolved functions, impls and imports.
    pub symbols: SymbolTable,
    /// The workspace call graph.
    pub graph: CallGraph,
    /// Determinism-taint source functions.
    pub sources: BTreeMap<FnId, SourceKind>,
}

impl SemanticModel {
    /// Builds the symbol table, call graph and source set.
    pub fn build(ws: &Workspace) -> SemanticModel {
        let symbols = SymbolTable::build(ws);
        let graph = CallGraph::build(&symbols, ws);
        let sources = flow::find_sources(&symbols, ws);
        SemanticModel { symbols, graph, sources }
    }
}

/// The context handed to each semantic rule.
pub struct SemanticCtx<'a> {
    /// The parsed workspace.
    pub ws: &'a Workspace,
    /// `lint.toml` (allowlist + taint/kernel declarations).
    pub cfg: &'a Config,
    /// The semantic model.
    pub model: &'a SemanticModel,
}

impl SemanticCtx<'_> {
    fn fns(&self) -> &[FnInfo] {
        &self.model.symbols.fns
    }

    fn parsed(&self, f: &FnInfo) -> &ParsedFile {
        &self.ws.files[f.file].parsed
    }

    fn chain(&self, ids: &[FnId]) -> Vec<String> {
        ids.iter().map(|&id| self.model.symbols.chain_entry(id)).collect()
    }

    fn diag(
        &self,
        rule: &'static str,
        f: &FnInfo,
        item: &str,
        message: String,
        chain: Vec<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            path: f.path.clone(),
            line: f.line,
            item: item.to_string(),
            message,
            chain,
        }
    }
}

/// Whether `f` is workspace library code the semantic rules police.
fn is_library_fn(f: &FnInfo) -> bool {
    f.kind == FileKind::Src && !f.in_test && !f.body.is_empty()
}

/// Whether token `i` is the closing bracket `c`. Brackets are their own
/// token kinds (`Open`/`Close`), so `is_punct` never matches them.
fn is_close(p: &ParsedFile, i: usize, c: char) -> bool {
    matches!(p.tokens.get(i).map(|t| &t.kind), Some(crate::lexer::TokenKind::Close(x)) if *x == c)
}

// ---------------------------------------------------------------------
// S1: panic reachability
// ---------------------------------------------------------------------

/// Collects functions in panic-free crates whose bodies contain an
/// unsanctioned panic site (same detection as R1, minus the allowlist).
fn panic_site_fns(ctx: &SemanticCtx) -> BTreeSet<FnId> {
    let mut sites = BTreeSet::new();
    for (id, f) in ctx.fns().iter().enumerate() {
        if !is_library_fn(f) || !PANIC_FREE_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let p = ctx.parsed(f);
        for i in f.body.clone() {
            let hit = match p.ident(i) {
                Some(m @ ("unwrap" | "expect")) if p.is_method_call(i) => {
                    !ctx.cfg.is_allowed("R1", &f.path, m)
                }
                Some("panic") if p.is_punct(i + 1, '!') => {
                    !p.enclosing_calls(i).contains(&"unwrap_or_else")
                        && !ctx.cfg.is_allowed("R1", &f.path, "panic")
                }
                _ => false,
            };
            if hit {
                sites.insert(id as FnId);
                break;
            }
        }
    }
    sites
}

/// S1: a public API of a panic-free crate must not transitively reach an
/// unsanctioned panic site. Direct sites in the same function are R1's
/// job; S1 fires only on chains of length ≥ 2, and carries the chain.
pub fn s1_panic_reachability(ctx: &SemanticCtx) -> Vec<Diagnostic> {
    let sites = panic_site_fns(ctx);
    let mut out = Vec::new();
    if sites.is_empty() {
        return out;
    }
    for (id, f) in ctx.fns().iter().enumerate() {
        let id = id as FnId;
        if !is_library_fn(f)
            || !f.is_pub
            || !PANIC_FREE_CRATES.contains(&f.crate_name.as_str())
            || sites.contains(&id)
        {
            continue;
        }
        if let Some(path) = ctx.model.graph.path_to(id, &|t| sites.contains(&t)) {
            let Some((&site, _)) = path.split_last() else { continue };
            if path.len() < 2 {
                continue;
            }
            let site_label = ctx.model.symbols.label(site);
            out.push(ctx.diag(
                "S1",
                f,
                &f.name,
                format!(
                    "public `{}` can reach an unsanctioned panic site in `{site_label}` \
                     ({} calls deep); propagate the error or route through the \
                     `try_*().unwrap_or_else(|e| panic!(\"{{e}}\"))` wrapper",
                    f.name,
                    path.len() - 1
                ),
                ctx.chain(&path),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// S2: determinism taint
// ---------------------------------------------------------------------

/// S2: declared determinism sinks (`lint.toml` `[[taint]]`) must not meet
/// nondeterministic inputs — neither by reading one themselves
/// (transitively) nor by being called from a function whose call tree
/// reads one.
pub fn s2_determinism_taint(ctx: &SemanticCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut sink_ids: Vec<FnId> = Vec::new();
    for sink in &ctx.cfg.taints {
        let ids: Vec<FnId> = ctx
            .fns()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.path == sink.path && f.name == sink.item)
            .map(|(id, _)| id as FnId)
            .collect();
        if ids.is_empty() {
            out.push(Diagnostic {
                rule: "S2",
                path: sink.path.clone(),
                line: 1,
                item: sink.item.clone(),
                message: format!(
                    "[[taint]] sink `{}` does not resolve to any function in `{}`; \
                     fix or remove the declaration",
                    sink.item, sink.path
                ),
                chain: Vec::new(),
            });
        }
        sink_ids.extend(ids);
    }
    let sources = &ctx.model.sources;
    if sources.is_empty() {
        return out;
    }
    let tainted = flow::tainted_by(&ctx.model.graph, sources);
    for &sid in &sink_ids {
        let sf = &ctx.fns()[sid as usize];
        // (a) The sink's own call tree reads a nondeterministic input.
        if let Some(&src) = tainted.get(&sid) {
            let path = ctx.model.graph.path_to(sid, &|t| t == src).unwrap_or_else(|| vec![sid]);
            let kind = sources[&src];
            out.push(ctx.diag(
                "S2",
                sf,
                &sf.name,
                format!(
                    "determinism sink `{}` transitively reads {} — the logical \
                     stream must depend only on inputs and seeds",
                    sf.name,
                    kind.label()
                ),
                ctx.chain(&path),
            ));
            continue;
        }
        // (b) A tainted function feeds the sink directly.
        for &caller in &ctx.model.graph.redges[sid as usize] {
            let cf = &ctx.fns()[caller as usize];
            if !is_library_fn(cf) {
                continue;
            }
            if let Some(&src) = tainted.get(&caller) {
                let kind = sources[&src];
                let mut path =
                    ctx.model.graph.path_to(caller, &|t| t == src).unwrap_or_else(|| vec![caller]);
                let mut ids = vec![sid];
                ids.append(&mut path);
                out.push(ctx.diag(
                    "S2",
                    cf,
                    &cf.name,
                    format!(
                        "`{}` updates determinism sink `{}` while its call tree \
                         reads {} — split the nondeterministic read out of this \
                         function",
                        cf.name,
                        sf.name,
                        kind.label()
                    ),
                    ctx.chain(&ids),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// S3: parallel-reduction ordering
// ---------------------------------------------------------------------

/// Parallel-dispatch methods whose closure arguments S3 inspects.
const PAR_ENTRY_POINTS: &[&str] =
    &["par_map", "par_chunks", "par_join", "try_par_map", "try_par_chunks"];

/// Method calls that combine values in an order the scheduler picks.
const UNORDERED_COMBINATORS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "lock",
    "try_lock",
];

/// Crates whose internals may legitimately use atomics under a parallel
/// region: the runtime (work distribution) and trace (its counters are
/// commutative event tallies with a documented merge order).
const S3_INTERNAL_CRATES: &[&str] = &["simpadv-runtime", "simpadv-trace"];

/// Whether a function body uses an unordered combinator or hash
/// container (outside test code).
fn body_combines_unordered(p: &ParsedFile, body: Range<usize>) -> Option<&str> {
    for i in body {
        match p.ident(i) {
            Some(m) if UNORDERED_COMBINATORS.contains(&m) && p.is_method_call(i) => {
                return Some(m);
            }
            Some(h @ ("HashMap" | "HashSet")) => return Some(h),
            _ => {}
        }
    }
    None
}

/// Finds `let <name> = |...|` closure bindings in `body` and returns
/// `name -> closure token range` so a closure passed by variable can be
/// inspected (one level deep).
fn closure_bindings(p: &ParsedFile, body: Range<usize>) -> BTreeMap<String, Range<usize>> {
    let mut out = BTreeMap::new();
    let mut i = body.start;
    while i < body.end {
        if p.ident(i) == Some("let") {
            // let [mut] name = |...| ...;
            let mut k = i + 1;
            if p.ident(k) == Some("mut") {
                k += 1;
            }
            if let Some(name) = p.ident(k) {
                if p.is_punct(k + 1, '=') && p.is_punct(k + 2, '|') {
                    // Closure extends to the statement's `;` at this
                    // nesting depth (or the end of the body).
                    let mut j = k + 3;
                    let mut depth = 0i32;
                    while j < body.end {
                        if p.is_open(j, '(') || p.is_open(j, '{') || p.is_open(j, '[') {
                            depth += 1;
                        } else if is_close(p, j, ')') || is_close(p, j, '}') || is_close(p, j, ']')
                        {
                            depth -= 1;
                        } else if depth == 0 && p.is_punct(j, ';') {
                            break;
                        }
                        j += 1;
                    }
                    out.insert(name.to_string(), k + 2..j);
                }
            }
        }
        i += 1;
    }
    out
}

/// S3: closures handed to the runtime's parallel entry points must not
/// reduce through unordered combinators (atomics, locks, hash
/// containers) — reduction goes through the runtime's ordered per-chunk
/// result vectors.
pub fn s3_parallel_reduction(ctx: &SemanticCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let resolver = Resolver::new(&ctx.model.symbols);
    for (id, f) in ctx.fns().iter().enumerate() {
        let id = id as FnId;
        if !is_library_fn(f) || f.crate_name == "simpadv-runtime" {
            continue;
        }
        let p = ctx.parsed(f);
        let bindings = closure_bindings(p, f.body.clone());
        for i in f.body.clone() {
            let Some(m) = p.ident(i) else { continue };
            if !PAR_ENTRY_POINTS.contains(&m) || !p.is_method_call(i) || !p.is_open(i + 1, '(') {
                continue;
            }
            let close = p.match_of[i + 1];
            if close == usize::MAX {
                continue;
            }
            // The regions to inspect: the argument list itself, plus the
            // bodies of closures passed by variable (one level).
            let mut regions: Vec<Range<usize>> = Vec::new();
            regions.push(i + 2..close);
            for k in i + 2..close {
                if let Some(name) = p.ident(k) {
                    if !p.is_open(k + 1, '(') {
                        if let Some(r) = bindings.get(name) {
                            regions.push(r.clone());
                        }
                    }
                }
            }
            let mut flagged = false;
            for region in &regions {
                if flagged {
                    break;
                }
                // Direct unordered combination inside the closure.
                if let Some(what) = body_combines_unordered(p, region.clone()) {
                    out.push(ctx.diag(
                        "S3",
                        f,
                        m,
                        format!(
                            "closure passed to `{m}` combines results through \
                             `{what}` — an unordered reduction; return per-chunk \
                             values and fold the ordered result vector instead"
                        ),
                        ctx.chain(&[id]),
                    ));
                    break;
                }
                // Calls out of the closure: follow them.
                for site in call_sites(p, region.clone(), &[]) {
                    if let Some(name) = p.ident(site) {
                        if PAR_ENTRY_POINTS.contains(&name) {
                            continue;
                        }
                    }
                    for callee in resolver.resolve_call(p, f, site) {
                        let reached = ctx.model.graph.path_to(callee, &|t| {
                            let g = &ctx.fns()[t as usize];
                            !S3_INTERNAL_CRATES.contains(&g.crate_name.as_str())
                                && !g.body.is_empty()
                                && body_combines_unordered(
                                    &ctx.ws.files[g.file].parsed,
                                    g.body.clone(),
                                )
                                .is_some()
                        });
                        if let Some(mut chain) = reached {
                            let Some((&bad, _)) = chain.split_last() else { continue };
                            let g = &ctx.fns()[bad as usize];
                            let what = body_combines_unordered(
                                &ctx.ws.files[g.file].parsed,
                                g.body.clone(),
                            )
                            .unwrap_or("an unordered combinator");
                            let mut full = vec![id];
                            full.append(&mut chain);
                            out.push(ctx.diag(
                                "S3",
                                f,
                                m,
                                format!(
                                    "closure passed to `{m}` reaches `{}` which \
                                     combines through `{what}` — an unordered \
                                     reduction under a parallel region",
                                    ctx.model.symbols.label(bad)
                                ),
                                ctx.chain(&full),
                            ));
                            flagged = true;
                            break;
                        }
                    }
                    if flagged {
                        break;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// S4: float-accumulation discipline
// ---------------------------------------------------------------------

/// Crates whose hot paths S4 polices.
const S4_CRATES: &[&str] = &["simpadv-tensor", "simpadv-nn"];

/// Whether the brace enclosing token `i` (via the parent chain) belongs
/// to a `for`/`while`/`loop`. Walks every enclosing brace up to the
/// function body.
fn in_loop(p: &ParsedFile, i: usize, body: &Range<usize>) -> bool {
    let mut cur = p.parent[i];
    while cur != usize::MAX && cur >= body.start {
        if p.is_open(cur, '{') {
            // Scan backward from the brace to the start of its statement;
            // a `for`/`while`/`loop` keyword marks a loop header.
            let mut k = cur;
            while k > body.start {
                k -= 1;
                if p.is_punct(k, ';') || p.is_open(k, '{') || is_close(p, k, '}') {
                    break;
                }
                if matches!(p.ident(k), Some("for" | "while" | "loop")) {
                    return true;
                }
            }
        }
        cur = p.parent[cur];
    }
    false
}

/// Whether the `+=` at `(i, i+1)` is a counter increment: RHS is a
/// single integer literal statement (`x += 1;`).
fn is_integer_increment(p: &ParsedFile, i: usize) -> bool {
    let rhs = i + 2;
    match p.tokens.get(rhs).map(|t| &t.kind) {
        Some(crate::lexer::TokenKind::Literal(l)) if !l.contains('.') => p.is_punct(rhs + 1, ';'),
        _ => false,
    }
}

/// Classifies the assignment target ending at token `i - 1` (the token
/// before `+`). Returns `true` when it plausibly accumulates floats.
fn target_accumulates_floats(p: &ParsedFile, i: usize, body: &Range<usize>) -> bool {
    if i == 0 {
        return false;
    }
    let prev = i - 1;
    // `buf[idx] += v` / `*slot += v`: indexed or deref stores are the
    // classic accumulation shapes.
    if is_close(p, prev, ']') {
        return true;
    }
    if let Some(name) = p.ident(prev) {
        // `self.field += v`: skip (struct counters; too noisy to classify).
        if prev >= 1 && p.is_punct(prev - 1, '.') {
            return false;
        }
        if prev >= 1 && p.is_punct(prev - 1, '*') {
            return true;
        }
        // Bare local: accumulating only if its `let` initializer shows
        // float evidence (a literal with `.`, or an `f32` annotation).
        let mut k = body.start;
        while k + 2 < i {
            if p.ident(k) == Some("let") {
                let mut t = k + 1;
                if p.ident(t) == Some("mut") {
                    t += 1;
                }
                if p.ident(t) == Some(name) {
                    // Look at the initializer up to `;`.
                    let mut j = t;
                    while j < i && !p.is_punct(j, ';') {
                        if p.ident(j) == Some("f32") {
                            return true;
                        }
                        if let Some(crate::lexer::TokenKind::Literal(l)) =
                            p.tokens.get(j).map(|tok| &tok.kind)
                        {
                            if l.contains('.') {
                                return true;
                            }
                        }
                        j += 1;
                    }
                }
            }
            k += 1;
        }
        return false;
    }
    false
}

/// S4: raw `+=` float-accumulation loops in `tensor`/`nn` must live in a
/// declared canonical kernel (`lint.toml` `[[kernel]]`), so backend
/// parity work has one accumulation order per operation to preserve.
pub fn s4_float_accumulation(ctx: &SemanticCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Unresolved kernel declarations are configuration errors.
    for k in &ctx.cfg.kernels {
        let hit = ctx.fns().iter().any(|f| f.path == k.path && f.name == k.item);
        if !hit {
            out.push(Diagnostic {
                rule: "S4",
                path: k.path.clone(),
                line: 1,
                item: k.item.clone(),
                message: format!(
                    "[[kernel]] entry `{}` does not resolve to any function in `{}`; \
                     fix or remove the declaration",
                    k.item, k.path
                ),
                chain: Vec::new(),
            });
        }
    }
    for (id, f) in ctx.fns().iter().enumerate() {
        if !is_library_fn(f) || !S4_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let declared = ctx.cfg.kernels.iter().any(|k| k.path == f.path && k.item == f.name);
        if declared {
            continue;
        }
        let p = ctx.parsed(f);
        for i in f.body.clone() {
            if !(p.is_punct(i, '+') && p.is_punct(i + 1, '=')) {
                continue;
            }
            if is_integer_increment(p, i) {
                continue;
            }
            if !in_loop(p, i, &f.body) {
                continue;
            }
            if !target_accumulates_floats(p, i, &f.body) {
                continue;
            }
            // Chain: nearest public entry point that reaches this kernel,
            // so the diagnostic shows who depends on the accumulation
            // order.
            let chain = ctx
                .model
                .graph
                .rpath_to(id as FnId, &|t| ctx.fns()[t as usize].is_pub)
                .map(|mut path| {
                    path.reverse();
                    ctx.chain(&path)
                })
                .unwrap_or_else(|| ctx.chain(&[id as FnId]));
            out.push(ctx.diag(
                "S4",
                f,
                &f.name,
                format!(
                    "`{}` runs a raw `+=` float-accumulation loop but is not a \
                     declared canonical kernel; move the loop into a `[[kernel]]` \
                     function (or reuse one) so every backend shares one \
                     accumulation order",
                    f.name
                ),
                chain,
            ));
            break; // one diagnostic per function
        }
    }
    out
}

// ---------------------------------------------------------------------
// S5: fallible-sibling coverage
// ---------------------------------------------------------------------

/// Whether a body contains panic-capable tokens (macro or method forms).
fn body_can_panic(p: &ParsedFile, body: Range<usize>) -> bool {
    for i in body {
        if let Some(id) = p.ident(i) {
            match id {
                "panic" | "assert" | "assert_eq" | "assert_ne" | "unreachable" | "todo"
                | "unimplemented"
                    if p.is_punct(i + 1, '!') =>
                {
                    return true;
                }
                "unwrap" | "expect" if p.is_method_call(i) => return true,
                _ => {}
            }
        }
    }
    false
}

/// Whether `body` calls `callee(` anywhere.
fn body_calls(p: &ParsedFile, body: Range<usize>, callee: &str) -> bool {
    body.into_iter().any(|i| p.ident(i) == Some(callee) && p.is_open(i + 1, '('))
}

/// S5: every `try_*` function in a panic-free crate must have its
/// panicking twin implemented as a delegating wrapper — structurally:
/// the twin exists, and either cannot panic at all or panics only by
/// delegating through the `try_*` form. A twin that re-implements the
/// checked logic with its own `assert!`/`unwrap` drifts from the
/// fallible form the moment one of them changes.
pub fn s5_fallible_siblings(ctx: &SemanticCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fid, f) in ctx.fns().iter().enumerate() {
        let fid = fid as FnId;
        if !is_library_fn(f)
            || !PANIC_FREE_CRATES.contains(&f.crate_name.as_str())
            || !f.name.starts_with("try_")
        {
            continue;
        }
        let twin_name = &f.name["try_".len()..];
        // Candidate twins: same crate, same name; prefer the same impl
        // type when the try_* form is a method.
        let candidates: Vec<FnId> = ctx
            .fns()
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                g.crate_name == f.crate_name
                    && g.name == twin_name
                    && g.kind == FileKind::Src
                    && !g.in_test
                    && (f.impl_type.is_none() || g.impl_type == f.impl_type)
            })
            .map(|(gid, _)| gid as FnId)
            .collect();
        if candidates.is_empty() {
            out.push(ctx.diag(
                "S5",
                f,
                &f.name,
                format!(
                    "`{}` has no panicking twin `{twin_name}` in `{}`; expose the \
                     wrapper so callers get both forms of the contract",
                    f.name, f.crate_name
                ),
                Vec::new(),
            ));
            continue;
        }
        // Violation when every candidate twin is panic-capable on its own
        // yet never delegates to the try_* form. (A bodiless trait
        // declaration or a panic-free twin satisfies the rule; this is a
        // deliberate under-approximation — see DESIGN.md §8.)
        let all_bad = candidates.iter().all(|&gid| {
            let g = &ctx.fns()[gid as usize];
            if g.body.is_empty() {
                return false;
            }
            let gp = &ctx.ws.files[g.file].parsed;
            body_can_panic(gp, g.body.clone()) && !body_calls(gp, g.body.clone(), &f.name)
        });
        if all_bad {
            let gid = candidates[0];
            let g = &ctx.fns()[gid as usize];
            out.push(ctx.diag(
                "S5",
                g,
                &g.name,
                format!(
                    "`{}` can panic but re-implements its checks instead of \
                     delegating to `{}`; rewrite as \
                     `{}(..).unwrap_or_else(|e| panic!(\"{{e}}\"))` so the two \
                     forms cannot drift",
                    g.name, f.name, f.name
                ),
                ctx.chain(&[gid, fid]),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileUnit;

    fn ctx_run(
        rule: fn(&SemanticCtx) -> Vec<Diagnostic>,
        files: &[(&str, &str)],
        toml: &str,
    ) -> Vec<Diagnostic> {
        let ws = Workspace {
            files: files.iter().map(|(path, src)| FileUnit::from_source(path, src)).collect(),
        };
        let cfg = crate::config::parse(toml).expect("config");
        let model = SemanticModel::build(&ws);
        rule(&SemanticCtx { ws: &ws, cfg: &cfg, model: &model })
    }

    #[test]
    fn s1_flags_multi_hop_chain_with_call_chain() {
        let files = [(
            "crates/tensor/src/a.rs",
            r#"
pub fn entry(x: Option<f32>) -> f32 { middle(x) }
fn middle(x: Option<f32>) -> f32 { deep(x) }
fn deep(x: Option<f32>) -> f32 { x.unwrap() }
"#,
        )];
        let d = ctx_run(s1_panic_reachability, &files, "");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "entry");
        assert_eq!(d[0].chain.len(), 3);
        assert!(d[0].chain[2].contains("deep"));
    }

    #[test]
    fn s1_skips_direct_sites_and_sanctioned_wrappers() {
        let files = [(
            "crates/tensor/src/a.rs",
            r#"
pub fn direct(x: Option<f32>) -> f32 { x.unwrap() }
pub fn wrapped(&self) -> f32 { self.try_get().unwrap_or_else(|e| panic!("{e}")) }
"#,
        )];
        // `direct` is R1's job (chain length 1); `wrapped` is sanctioned.
        assert!(ctx_run(s1_panic_reachability, &files, "").is_empty());
    }

    #[test]
    fn s2_flags_sink_reaching_a_source() {
        let files = [
            ("crates/trace/src/clock.rs", "pub fn tick_forward() { stamp(); }"),
            ("crates/trace/src/meta.rs", "pub fn stamp() { let t = std::time::Instant::now(); }"),
        ];
        let toml = "[[taint]]\npath = \"crates/trace/src/clock.rs\"\nitem = \"tick_forward\"\nreason = \"logical counter\"\n";
        let d = ctx_run(s2_determinism_taint, &files, toml);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("wall-clock"));
        assert_eq!(d[0].chain.len(), 2);
    }

    #[test]
    fn s2_flags_tainted_caller_feeding_a_sink() {
        let files = [
            ("crates/trace/src/clock.rs", "pub fn tick_forward() {}"),
            (
                "crates/nn/src/model.rs",
                "pub fn step() { let r = entropy(); simpadv_trace::clock::tick_forward(); }\nfn entropy() -> u64 { thread_rng() }",
            ),
        ];
        let toml = "[[taint]]\npath = \"crates/trace/src/clock.rs\"\nitem = \"tick_forward\"\nreason = \"logical counter\"\n";
        let d = ctx_run(s2_determinism_taint, &files, toml);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "step");
        assert!(d[0].message.contains("entropy-seeded"));
    }

    #[test]
    fn s2_unresolved_sink_is_a_config_error() {
        let files = [("crates/trace/src/clock.rs", "pub fn tick_forward() {}")];
        let toml = "[[taint]]\npath = \"crates/trace/src/clock.rs\"\nitem = \"no_such_fn\"\nreason = \"x\"\n";
        let d = ctx_run(s2_determinism_taint, &files, toml);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("does not resolve"));
    }

    #[test]
    fn s3_flags_atomic_reduction_in_par_closure() {
        let files = [(
            "crates/nn/src/batch.rs",
            "pub fn reduce(rt: &Runtime, total: &AtomicU64) { rt.par_chunks(100, 10, |r| { total.fetch_add(r.len() as u64, Ordering::Relaxed); }); }",
        )];
        let d = ctx_run(s3_parallel_reduction, &files, "");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("fetch_add"));
    }

    #[test]
    fn s3_follows_calls_out_of_the_closure() {
        let files = [(
            "crates/nn/src/batch.rs",
            "pub fn reduce(rt: &Runtime) { rt.par_map(&items, |x| bump(x)); }\nfn bump(x: &u64) -> u64 { COUNT.fetch_add(*x, Ordering::Relaxed) }",
        )];
        let d = ctx_run(s3_parallel_reduction, &files, "");
        assert_eq!(d.len(), 1);
        assert!(d[0].chain.len() >= 2);
    }

    #[test]
    fn s3_allows_ordered_per_chunk_results() {
        let files = [(
            "crates/nn/src/batch.rs",
            "pub fn reduce(rt: &Runtime, xs: &[f32]) -> f32 { let sums = rt.par_chunks(xs.len(), 64, |r| r.map(|i| xs[i]).sum::<f32>()); sums.iter().sum() }",
        )];
        assert!(ctx_run(s3_parallel_reduction, &files, "").is_empty());
    }

    #[test]
    fn s4_flags_undeclared_accumulation_loop() {
        let files = [(
            "crates/tensor/src/blur.rs",
            "pub fn blur(out: &mut [f32], xs: &[f32]) { for (i, v) in xs.iter().enumerate() { out[i % 4] += v * 0.5; } }",
        )];
        let d = ctx_run(s4_float_accumulation, &files, "");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].item, "blur");
    }

    #[test]
    fn s4_accepts_declared_kernels_and_integer_counters() {
        let files = [
            (
                "crates/tensor/src/ops.rs",
                "pub fn add_assign(out: &mut [f32], xs: &[f32]) { for (o, x) in out.iter_mut().zip(xs) { *o += x; } }",
            ),
            (
                "crates/tensor/src/count.rs",
                "pub fn histogram(xs: &[usize], bins: &mut [u32]) { for &x in xs { bins[x] += 1; } }",
            ),
        ];
        let toml = "[[kernel]]\npath = \"crates/tensor/src/ops.rs\"\nitem = \"add_assign\"\nreason = \"canonical elementwise accumulate\"\n";
        assert!(ctx_run(s4_float_accumulation, &files, toml).is_empty());
    }

    #[test]
    fn s4_bare_local_needs_float_evidence() {
        let files = [(
            "crates/nn/src/loss.rs",
            "pub fn norm(xs: &[f32]) -> f32 { let mut acc = 0.0; for x in xs { acc += x * x; } acc }",
        )];
        let d = ctx_run(s4_float_accumulation, &files, "");
        assert_eq!(d.len(), 1);
        // usize accumulator: no float evidence, not flagged.
        let files = [(
            "crates/nn/src/loss.rs",
            "pub fn total(xs: &[Vec<f32>]) -> usize { let mut n = 0; for x in xs { n += x.len(); } n }",
        )];
        assert!(ctx_run(s4_float_accumulation, &files, "").is_empty());
    }

    #[test]
    fn s5_flags_missing_and_non_delegating_twins() {
        let files = [(
            "crates/tensor/src/ops.rs",
            r#"
impl Tensor {
    pub fn try_halve(&self) -> Result<Tensor, TensorError> { Ok(self.clone()) }
    pub fn try_scale(&self, s: f32) -> Result<Tensor, TensorError> { Ok(self.clone()) }
    pub fn scale(&self, s: f32) -> Tensor { assert!(s.is_finite()); self.clone() }
}
"#,
        )];
        let d = ctx_run(s5_fallible_siblings, &files, "");
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.item == "try_halve" && x.message.contains("no panicking twin")));
        assert!(d.iter().any(|x| x.item == "scale" && x.message.contains("delegating")));
    }

    #[test]
    fn s5_accepts_delegating_and_panic_free_twins() {
        let files = [(
            "crates/tensor/src/ops.rs",
            r#"
impl Tensor {
    pub fn reshape(&self, s: &[usize]) -> Tensor { self.try_reshape(s).unwrap_or_else(|e| panic!("{e}")) }
    pub fn try_reshape(&self, s: &[usize]) -> Result<Tensor, TensorError> { Ok(self.clone()) }
    pub fn sum(&self) -> f32 { 0.0 }
    pub fn try_sum(&self) -> Result<f32, TensorError> { Ok(0.0) }
}
"#,
        )];
        assert!(ctx_run(s5_fallible_siblings, &files, "").is_empty());
    }
}
