//! Source→sink taint analysis over the call graph.
//!
//! A function is a *determinism-taint source* if its body touches a
//! nondeterministic input: wall-clock time, unordered container
//! iteration, thread-count discovery, or entropy-seeded RNG. Taint
//! propagates from a source to every (transitive) caller; rule S2 then
//! checks that no declared sink (`lint.toml` `[[taint]]` tables) meets
//! a tainted function in either direction.

use crate::callgraph::CallGraph;
use crate::parse::ParsedFile;
use crate::symbols::{FnId, SymbolTable};
use crate::Workspace;
use std::collections::BTreeMap;

/// Why a function is considered a taint source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `Instant` / `SystemTime` wall-clock reads.
    WallClock,
    /// Iteration over `HashMap` / `HashSet` (unordered).
    UnorderedIter,
    /// `available_parallelism` (machine-dependent thread count).
    ThreadCount,
    /// Entropy-seeded randomness (`thread_rng`, `from_entropy`,
    /// `rand::random`).
    EntropyRng,
}

impl SourceKind {
    /// Short human label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock time",
            SourceKind::UnorderedIter => "unordered HashMap/HashSet iteration",
            SourceKind::ThreadCount => "available_parallelism",
            SourceKind::EntropyRng => "entropy-seeded RNG",
        }
    }
}

/// Iterator-producing / order-observing method names on hash containers.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

/// Files allowed to read the wall clock by design (mirrors the R10
/// quarantine plus its `lint.toml` allow entries): the trace clock
/// stores wall seconds only in event `meta`, the observatory
/// (`simpadv-obs`) is an offline analysis tool outside the training
/// determinism boundary, and the kernel lab's calibration loops feed
/// only the artifact's `meta` wall stats — its gateable logical rows
/// come from the trace clock in a separate, untimed sweep.
fn wall_clock_exempt(path: &str, crate_name: &str) -> bool {
    path == "crates/trace/src/clock.rs"
        || path == "crates/bench/src/kernels/calibrate.rs"
        || crate_name == "simpadv-obs"
}

/// The seeded-RNG implementation itself may name entropy constructors in
/// docs/guards without being a source.
fn rng_exempt(path: &str) -> bool {
    path == "crates/tensor/src/rng.rs"
}

/// Scans one function body for taint sources. Returns the first (and
/// strongest) kind found, in a fixed priority order for determinism.
/// `hash_in_file` says whether the surrounding file names a hash
/// container anywhere outside test code — the container type usually
/// appears in the signature, not the body, so the co-occurrence check
/// is file-scoped while the iteration call stays body-scoped.
fn body_sources(
    p: &ParsedFile,
    body: &std::ops::Range<usize>,
    path: &str,
    crate_name: &str,
    hash_in_file: bool,
) -> Option<SourceKind> {
    let mut wall = false;
    let mut thread_count = false;
    let mut rng = false;
    let mut hash_named = hash_in_file;
    let mut hash_iter = false;
    for i in body.clone() {
        let Some(id) = p.ident(i) else { continue };
        match id {
            "Instant" | "SystemTime" => wall = true,
            "available_parallelism" => thread_count = true,
            "thread_rng" | "from_entropy" => rng = true,
            // `rand::random(...)`; plain `.random()` on a seeded rng
            // is fine.
            "random" if i >= 3 && p.ident(i - 3) == Some("rand") => rng = true,
            "HashMap" | "HashSet" => hash_named = true,
            m if ITER_METHODS.contains(&m) && p.is_method_call(i) => hash_iter = true,
            _ => {}
        }
    }
    if wall && !wall_clock_exempt(path, crate_name) {
        return Some(SourceKind::WallClock);
    }
    // Thread-count discovery inside the runtime crate is the sanctioned
    // entry point: its contract (fixed chunking, ordered reduction —
    // enforced by S3 and the runtime's own thread-sweep tests) is that
    // the count steers scheduling only, never results. Anywhere else,
    // `available_parallelism` is a live determinism leak.
    if thread_count && crate_name != "simpadv-runtime" {
        return Some(SourceKind::ThreadCount);
    }
    if rng && !rng_exempt(path) {
        return Some(SourceKind::EntropyRng);
    }
    // Unordered iteration needs both a hash container named in the same
    // body and an iterator-family method call — a heuristic, but hash
    // containers are banned workspace-wide outside explicit exemptions,
    // so co-occurrence in one function is a strong signal.
    if hash_named && hash_iter {
        return Some(SourceKind::UnorderedIter);
    }
    None
}

/// Finds every taint-source function in the workspace (non-test `src`
/// code only). Returns a map from function id to the kind of source
/// observed in its body.
pub fn find_sources(symbols: &SymbolTable, ws: &Workspace) -> BTreeMap<FnId, SourceKind> {
    // Whether each file names HashMap/HashSet anywhere outside tests.
    let hash_in_file: Vec<bool> = ws
        .files
        .iter()
        .map(|u| {
            (0..u.parsed.tokens.len()).any(|i| {
                !u.parsed.test_mask[i]
                    && matches!(u.parsed.ident(i), Some("HashMap") | Some("HashSet"))
            })
        })
        .collect();
    let mut out = BTreeMap::new();
    for (id, f) in symbols.fns.iter().enumerate() {
        if f.in_test || f.body.is_empty() || f.kind != crate::FileKind::Src {
            continue;
        }
        let p = &ws.files[f.file].parsed;
        if let Some(kind) = body_sources(p, &f.body, &f.path, &f.crate_name, hash_in_file[f.file]) {
            out.insert(id as FnId, kind);
        }
    }
    out
}

/// Propagates taint from source functions to all transitive callers.
/// Returns, for every tainted function, the nearest source it reaches
/// (sources map to themselves). Multi-source BFS over reverse edges;
/// ties break toward the lowest source id for determinism.
pub fn tainted_by(graph: &CallGraph, sources: &BTreeMap<FnId, SourceKind>) -> BTreeMap<FnId, FnId> {
    let mut origin: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: Vec<FnId> = Vec::new();
    for &s in sources.keys() {
        origin.insert(s, s);
        queue.push(s);
    }
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        let src = origin[&u];
        for &caller in &graph.redges[u as usize] {
            if let std::collections::btree_map::Entry::Vacant(e) = origin.entry(caller) {
                e.insert(src);
                queue.push(caller);
            }
        }
    }
    origin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;
    use crate::FileUnit;

    fn sources_of(path: &str, src: &str) -> Vec<SourceKind> {
        let ws = Workspace { files: vec![FileUnit::from_source(path, src)] };
        let symbols = SymbolTable::build(&ws);
        find_sources(&symbols, &ws).into_values().collect()
    }

    #[test]
    fn wall_clock_is_a_source_outside_the_trace_clock() {
        assert_eq!(
            sources_of("crates/nn/src/model.rs", "fn f() { let t = Instant::now(); }"),
            vec![SourceKind::WallClock]
        );
        assert!(sources_of("crates/trace/src/clock.rs", "fn f() { let t = Instant::now(); }")
            .is_empty());
    }

    #[test]
    fn hash_iteration_requires_cooccurrence() {
        assert_eq!(
            sources_of(
                "crates/core/src/x.rs",
                "fn f(m: &HashMap<u32, u32>) { for k in m.keys() { let _ = k; } }"
            ),
            vec![SourceKind::UnorderedIter]
        );
        // keys() on a BTreeMap, no hash container named: not a source.
        assert!(sources_of(
            "crates/core/src/x.rs",
            "fn f(m: &BTreeMap<u32, u32>) { for k in m.keys() { let _ = k; } }"
        )
        .is_empty());
    }

    #[test]
    fn entropy_rng_and_thread_count_are_sources() {
        assert_eq!(
            sources_of("crates/core/src/x.rs", "fn f() { let r = thread_rng(); }"),
            vec![SourceKind::EntropyRng]
        );
        assert_eq!(
            sources_of(
                "crates/core/src/x.rs",
                "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }"
            ),
            vec![SourceKind::ThreadCount]
        );
        // The runtime crate owns thread-count discovery.
        assert!(sources_of(
            "crates/runtime/src/lib.rs",
            "pub fn available_threads() -> usize { std::thread::available_parallelism().map_or(1, NonZeroUsize::get) }"
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_never_a_source() {
        assert!(sources_of(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { let t = Instant::now(); }\n}"
        )
        .is_empty());
    }

    #[test]
    fn taint_propagates_to_callers_only() {
        let g = CallGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // Node 2 is a source: 0, 1, 2 are tainted (callers), 3 is not.
        let sources: BTreeMap<FnId, SourceKind> = [(2, SourceKind::WallClock)].into();
        let tainted = tainted_by(&g, &sources);
        assert!(tainted.contains_key(&0));
        assert!(tainted.contains_key(&1));
        assert!(tainted.contains_key(&2));
        assert!(!tainted.contains_key(&3));
        assert_eq!(tainted[&0], 2);
    }
}
