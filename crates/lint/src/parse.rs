//! Structure extraction over the token stream: function records, outer
//! docs/attributes, `#[cfg(test)]` regions, and delimiter matching.
//!
//! This is not a full Rust parser. It recognizes exactly the item shapes
//! the rules need — functions with their docs, attributes, visibility,
//! parameter names, and body span — and tracks which token spans live
//! inside test-only code. Unrecognized constructs degrade gracefully: the
//! parser skips them without losing delimiter balance.

use crate::lexer::{Token, TokenKind};
use std::ops::Range;

/// One `fn` item (free function, method, or nested function).
#[derive(Debug, Clone)]
pub struct FunctionRecord {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` for `pub` / `pub(...)` functions.
    pub is_pub: bool,
    /// Outer `///` docs, joined with newlines.
    pub doc: String,
    /// Flattened outer attributes, e.g. `"cfg(test)"`, `"test"`,
    /// `"inline"`.
    pub attrs: Vec<String>,
    /// Identifiers of the value parameters (binding names, not types).
    pub params: Vec<String>,
    /// Token-index range of the body between its braces (empty for
    /// trait-method declarations without a body).
    pub body: Range<usize>,
    /// `true` when the function is test-only: `#[test]`, `#[cfg(test)]`,
    /// or nested anywhere inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A token stream plus the structure the rules consume.
#[derive(Debug)]
pub struct ParsedFile {
    /// The underlying tokens.
    pub tokens: Vec<Token>,
    /// Every function item found, in source order.
    pub functions: Vec<FunctionRecord>,
    /// For each token, whether it lies inside test-only code.
    pub test_mask: Vec<bool>,
    /// For each `Open` token, the index of its matching `Close` (and vice
    /// versa); `usize::MAX` for unbalanced input.
    pub match_of: Vec<usize>,
    /// For each token, the index of the innermost enclosing `Open` token,
    /// or `usize::MAX` at the top level.
    pub parent: Vec<usize>,
}

impl ParsedFile {
    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        self.tokens.get(i).and_then(|t| t.kind.ident())
    }

    /// Whether token `i` is the punctuation character `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i), Some(Token { kind: TokenKind::Punct(p), .. }) if *p == c)
    }

    /// Whether token `i` is the opening delimiter `c`.
    pub fn is_open(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i), Some(Token { kind: TokenKind::Open(p), .. }) if *p == c)
    }

    /// The 1-based line of token `i` (0 if out of range).
    pub fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map_or(0, |t| t.line)
    }

    /// Whether token `i` (an identifier) is a method call: preceded by `.`
    /// and followed by `(`.
    pub fn is_method_call(&self, i: usize) -> bool {
        i > 0 && self.is_punct(i - 1, '.') && self.is_open(i + 1, '(')
    }

    /// Walks enclosing `(`-groups from token `i` outward, yielding for each
    /// the identifier immediately before the `(` — i.e. the call the token
    /// is an argument of.
    pub fn enclosing_calls(&self, i: usize) -> Vec<&str> {
        let mut out = Vec::new();
        let mut p = self.parent.get(i).copied().unwrap_or(usize::MAX);
        while p != usize::MAX {
            if self.is_open(p, '(') && p > 0 {
                if let Some(name) = self.ident(p - 1) {
                    out.push(name);
                }
            }
            p = self.parent.get(p).copied().unwrap_or(usize::MAX);
        }
        out
    }
}

/// Flattens the tokens of an attribute group (between `[` and `]`) into a
/// compact string such as `cfg(test)` or `derive(Debug,Clone)`.
fn flatten_attr(tokens: &[Token], range: Range<usize>) -> String {
    let mut out = String::new();
    for tok in &tokens[range] {
        match &tok.kind {
            TokenKind::Ident(s) => out.push_str(s),
            TokenKind::Literal(s) => out.push_str(s),
            TokenKind::Lifetime(s) => {
                out.push('\'');
                out.push_str(s);
            }
            TokenKind::Punct(c) => out.push(*c),
            TokenKind::Open(c) => out.push(*c),
            TokenKind::Close(c) => out.push(*c),
            TokenKind::DocComment { .. } => {}
        }
    }
    out
}

fn attr_is_test(attr: &str) -> bool {
    attr == "test" || attr.starts_with("cfg(test") || attr.contains("cfg(test)")
}

/// Parses a lexed file into rule-consumable structure.
pub fn parse(tokens: Vec<Token>) -> ParsedFile {
    let n = tokens.len();
    let mut match_of = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];

    // Delimiter matching and parent chains.
    {
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..n {
            parent[i] = stack.last().copied().unwrap_or(usize::MAX);
            match tokens[i].kind {
                TokenKind::Open(_) => stack.push(i),
                TokenKind::Close(_) => {
                    if let Some(open) = stack.pop() {
                        match_of[open] = i;
                        match_of[i] = open;
                        // The close token belongs to the outer scope.
                        parent[i] = stack.last().copied().unwrap_or(usize::MAX);
                    }
                }
                _ => {}
            }
        }
    }

    let mut functions = Vec::new();
    let mut test_mask = vec![false; n];

    // Brace stack: for each currently-open `{`, whether it is test-scoped.
    let mut brace_test: Vec<bool> = Vec::new();
    // Set when an item header with `#[cfg(test)]`/`#[test]` has been seen
    // and its body brace is still ahead.
    let mut armed_test = false;

    let mut pending_docs: Vec<String> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut pending_vis = false;

    let mut i = 0usize;
    while i < n {
        let in_test_now = brace_test.iter().any(|&b| b);
        test_mask[i] = in_test_now;
        match &tokens[i].kind {
            TokenKind::DocComment { inner: false, text } => {
                pending_docs.push(text.clone());
                i += 1;
            }
            TokenKind::DocComment { inner: true, .. } => {
                i += 1;
            }
            TokenKind::Punct('#') => {
                // `#[attr]` or `#![attr]`.
                let mut j = i + 1;
                let inner_attr =
                    matches!(tokens.get(j), Some(t) if t.kind == TokenKind::Punct('!'));
                if inner_attr {
                    j += 1;
                }
                if j < n && matches!(tokens[j].kind, TokenKind::Open('[')) {
                    let close = match_of[j];
                    if close != usize::MAX {
                        if !inner_attr {
                            pending_attrs.push(flatten_attr(&tokens, j + 1..close));
                        }
                        for m in test_mask.iter_mut().take(close + 1).skip(i) {
                            *m = in_test_now;
                        }
                        i = close + 1;
                        continue;
                    }
                }
                i += 1;
            }
            TokenKind::Ident(id) if id == "pub" => {
                pending_vis = true;
                i += 1;
                // pub(crate), pub(super), pub(in ...)
                if i < n && matches!(tokens[i].kind, TokenKind::Open('(')) {
                    let close = match_of[i];
                    if close != usize::MAX {
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
            }
            TokenKind::Ident(id) if id == "fn" => {
                let fn_line = tokens[i].line;
                let name = tokens.get(i + 1).and_then(|t| t.kind.ident()).unwrap_or("").to_string();
                // Find the parameter list: first `(` outside the generic
                // parameter list (a `Fn(..)` bound inside `<...>` must not
                // be mistaken for it).
                let mut j = i + 1;
                let mut params = Vec::new();
                let mut body = 0..0;
                let mut angle: i32 = 0;
                while j < n {
                    match tokens[j].kind {
                        TokenKind::Open('(') if angle == 0 => break,
                        TokenKind::Punct('<') => {
                            angle += 1;
                            j += 1;
                        }
                        TokenKind::Punct('>') => {
                            // `->` is an arrow, not a closing angle.
                            let arrow =
                                j > 0 && matches!(tokens[j - 1].kind, TokenKind::Punct('-'));
                            if !arrow {
                                angle = (angle - 1).max(0);
                            }
                            j += 1;
                        }
                        TokenKind::Open(_) => {
                            let c = match_of[j];
                            j = if c != usize::MAX { c + 1 } else { j + 1 };
                        }
                        _ => j += 1,
                    }
                }
                if j < n {
                    let close = match_of[j];
                    if close != usize::MAX {
                        // Parameter binding names: idents at depth 1 that
                        // are directly followed by `:` (skips `self`,
                        // pattern internals, and type tokens).
                        for k in j + 1..close {
                            if parent[k] == j {
                                if let Some(p) = tokens[k].kind.ident() {
                                    if matches!(
                                        tokens.get(k + 1),
                                        Some(t) if t.kind == TokenKind::Punct(':')
                                    ) && !matches!(
                                        tokens.get(k + 2),
                                        Some(t) if t.kind == TokenKind::Punct(':')
                                    ) {
                                        params.push(p.to_string());
                                    }
                                }
                            }
                        }
                        // Scan past the signature to the body `{` or `;`.
                        let mut k = close + 1;
                        while k < n {
                            match tokens[k].kind {
                                TokenKind::Open('{') => {
                                    let bclose = match_of[k];
                                    if bclose != usize::MAX {
                                        body = k + 1..bclose;
                                    }
                                    break;
                                }
                                TokenKind::Punct(';') => break,
                                TokenKind::Open(_) => {
                                    let c = match_of[k];
                                    k = if c != usize::MAX { c + 1 } else { k + 1 };
                                }
                                _ => k += 1,
                            }
                        }
                    }
                }
                let fn_is_test = pending_attrs.iter().any(|a| attr_is_test(a));
                functions.push(FunctionRecord {
                    name,
                    line: fn_line,
                    is_pub: pending_vis,
                    doc: pending_docs.join("\n"),
                    attrs: std::mem::take(&mut pending_attrs),
                    params,
                    body: body.clone(),
                    in_test: in_test_now || fn_is_test,
                });
                pending_docs.clear();
                pending_vis = false;
                if fn_is_test {
                    armed_test = true;
                }
                i += 1;
            }
            TokenKind::Ident(id)
                if matches!(
                    id.as_str(),
                    "mod" | "struct" | "enum" | "trait" | "impl" | "union"
                ) =>
            {
                if pending_attrs.iter().any(|a| attr_is_test(a)) {
                    armed_test = true;
                }
                pending_docs.clear();
                pending_attrs.clear();
                pending_vis = false;
                i += 1;
            }
            TokenKind::Ident(id) if id == "use" => {
                // Skip to the terminating `;` so `use foo::{...}` braces
                // don't consume an armed test flag.
                pending_docs.clear();
                pending_attrs.clear();
                pending_vis = false;
                let mut j = i + 1;
                while j < n {
                    match tokens[j].kind {
                        TokenKind::Punct(';') => break,
                        TokenKind::Open(_) => {
                            let c = match_of[j];
                            j = if c != usize::MAX { c + 1 } else { j + 1 };
                        }
                        _ => j += 1,
                    }
                }
                let end = j.min(n.saturating_sub(1));
                for m in test_mask.iter_mut().take(end + 1).skip(i) {
                    *m = in_test_now;
                }
                i = j + 1;
            }
            TokenKind::Open('{') => {
                brace_test.push(in_test_now || armed_test);
                armed_test = false;
                test_mask[i] = brace_test.iter().any(|&b| b);
                i += 1;
            }
            TokenKind::Close('}') => {
                brace_test.pop();
                i += 1;
            }
            TokenKind::Punct(';') => {
                pending_docs.clear();
                pending_attrs.clear();
                pending_vis = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // Second pass: functions marked test (e.g. `#[test]`) mask their whole
    // body even when the enclosing module is not `cfg(test)`.
    for f in &functions {
        if f.in_test {
            for k in f.body.clone() {
                test_mask[k] = true;
            }
        }
    }

    ParsedFile { tokens, functions, test_mask, match_of, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(lex(src))
    }

    #[test]
    fn finds_functions_with_docs_and_visibility() {
        let src = r#"
/// Does a thing.
///
/// # Panics
///
/// Panics if `x` is negative.
pub fn thing(x: f32, label: usize) -> f32 { x }

fn helper() {}
"#;
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 2);
        let f = &p.functions[0];
        assert_eq!(f.name, "thing");
        assert!(f.is_pub);
        assert!(f.doc.contains("# Panics"));
        assert_eq!(f.params, vec!["x", "label"]);
        assert!(!f.in_test);
        let h = &p.functions[1];
        assert_eq!(h.name, "helper");
        assert!(!h.is_pub);
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = r#"
pub fn library_code() { value.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn a_test() { value.unwrap(); }
}
"#;
        let p = parse_src(src);
        let unwraps: Vec<usize> =
            (0..p.tokens.len()).filter(|&i| p.ident(i) == Some("unwrap")).collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!p.test_mask[unwraps[0]], "library unwrap must not be masked");
        assert!(p.test_mask[unwraps[1]], "test unwrap must be masked");
        let records: Vec<_> = p.functions.iter().map(|f| (f.name.clone(), f.in_test)).collect();
        assert_eq!(
            records,
            vec![("library_code".to_string(), false), ("a_test".to_string(), true)]
        );
    }

    #[test]
    fn test_attribute_alone_masks_function_body() {
        let src = r#"
#[test]
fn standalone_test() { value.unwrap(); }
"#;
        let p = parse_src(src);
        let unwrap_idx =
            (0..p.tokens.len()).find(|&i| p.ident(i) == Some("unwrap")).expect("unwrap token");
        assert!(p.test_mask[unwrap_idx]);
    }

    #[test]
    fn impl_methods_are_recorded() {
        let src = r#"
impl Foo {
    /// Ctor.
    pub fn new(epsilon: f32) -> Self { Foo }
    fn private_helper(&self) {}
}
"#;
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].name, "new");
        assert!(p.functions[0].is_pub);
        assert_eq!(p.functions[0].params, vec!["epsilon"]);
        assert_eq!(p.functions[1].name, "private_helper");
        assert!(p.functions[1].params.is_empty());
    }

    #[test]
    fn use_braces_do_not_consume_test_arming() {
        let src = r#"
#[cfg(test)]
mod tests {
    use super::{a, b};
    fn inner() { x.unwrap(); }
}
"#;
        let p = parse_src(src);
        let unwrap_idx =
            (0..p.tokens.len()).find(|&i| p.ident(i) == Some("unwrap")).expect("unwrap token");
        assert!(p.test_mask[unwrap_idx]);
    }

    #[test]
    fn enclosing_calls_sees_call_chain() {
        let src = "fn f() { a.unwrap_or_else(|e| panic!(\"{e}\")); }";
        let p = parse_src(src);
        let panic_idx =
            (0..p.tokens.len()).find(|&i| p.ident(i) == Some("panic")).expect("panic token");
        assert!(p.enclosing_calls(panic_idx).contains(&"unwrap_or_else"));
    }

    #[test]
    fn generic_functions_parse() {
        let src = "pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor { body }";
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "zip_map");
        assert_eq!(p.functions[0].params, vec!["other", "f"]);
    }
}
