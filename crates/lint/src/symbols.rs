//! Symbol resolution over the parsed workspace: function identities,
//! impl-block association, module paths, and use-imports.
//!
//! The resolver recovers just enough item structure from the token stream
//! to support call-graph construction: which `impl` block a method lives
//! in (so receiver-type heuristics can narrow method calls), which module
//! a function belongs to (from the file layout plus inline `mod` blocks),
//! and what each file's `use` declarations bring into scope. Like the
//! parser it sits on, it is deliberately not a full Rust front end — the
//! soundness limits are documented in DESIGN.md §8.

use crate::lexer::TokenKind;
use crate::parse::ParsedFile;
use crate::{FileKind, Workspace};
use std::collections::BTreeMap;
use std::ops::Range;

/// Index of a function in [`SymbolTable::fns`].
pub type FnId = u32;

/// Everything the semantic rules need to know about one function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `parsed.functions`.
    pub func: usize,
    /// The function's name.
    pub name: String,
    /// Cargo package name (e.g. `simpadv-tensor`).
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Directory classification of the defining file.
    pub kind: FileKind,
    /// `true` for `pub` / `pub(...)` functions.
    pub is_pub: bool,
    /// Test-only: `#[test]`, inside `#[cfg(test)]`, or in a file whose
    /// `mod` declaration is `#[cfg(test)]`-gated.
    pub in_test: bool,
    /// Enclosing `impl` subject type (`impl Tensor` → `Tensor`), when the
    /// function is a method with a body.
    pub impl_type: Option<String>,
    /// Module path within the crate (file layout + inline `mod` blocks).
    pub module: Vec<String>,
    /// Token range of the body (empty for bodiless declarations).
    pub body: Range<usize>,
}

/// Function lookup maps over the whole workspace.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All functions, indexed by [`FnId`].
    pub fns: Vec<FnInfo>,
    /// Name → functions of that name (free functions and methods alike).
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// (impl type, method name) → implementations.
    pub by_method: BTreeMap<(String, String), Vec<FnId>>,
    /// Per-file `use` imports: local name → full path segments.
    pub imports: Vec<BTreeMap<String, Vec<String>>>,
}

/// The crate ident a package name appears as in source paths
/// (`simpadv-tensor` → `simpadv_tensor`).
pub fn crate_ident(pkg: &str) -> String {
    pkg.replace('-', "_")
}

impl SymbolTable {
    /// Builds the table for a workspace.
    pub fn build(ws: &Workspace) -> SymbolTable {
        // Files gated behind a `#[cfg(test)] mod name;` declaration are
        // test-only even though the file itself carries no marker.
        let gated = cfg_test_gated_prefixes(ws);

        let mut table = SymbolTable::default();
        for (fi, file) in ws.files.iter().enumerate() {
            let p = &file.parsed;
            let impls = impl_blocks(p);
            let mods = inline_mod_blocks(p);
            let base_module = module_path_of(&file.path);
            let file_gated = gated
                .iter()
                .any(|pre| file.path == pre.trim_end_matches('/') || file.path.starts_with(pre));
            table.imports.push(collect_imports(p));
            for (gi, f) in p.functions.iter().enumerate() {
                if f.name.is_empty() {
                    continue;
                }
                // The parser records bodiless declarations (trait methods,
                // extern fns) as the sentinel range `0..0`; an empty `{}`
                // body is a real position and still gets impl/module
                // association.
                let bodiless = f.body.start == 0 && f.body.end == 0;
                let (impl_type, module) = if bodiless {
                    (None, base_module.clone())
                } else {
                    let ty = impls
                        .iter()
                        .filter(|(r, _)| r.start <= f.body.start && f.body.end <= r.end)
                        .min_by_key(|(r, _)| r.end - r.start)
                        .map(|(_, t)| t.clone());
                    let mut m = base_module.clone();
                    for (r, name) in &mods {
                        if r.start <= f.body.start && f.body.end <= r.end {
                            m.push(name.clone());
                        }
                    }
                    (ty, m)
                };
                let id = table.fns.len() as FnId;
                table.by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(t) = &impl_type {
                    table.by_method.entry((t.clone(), f.name.clone())).or_default().push(id);
                }
                table.fns.push(FnInfo {
                    file: fi,
                    func: gi,
                    name: f.name.clone(),
                    crate_name: file.crate_name.clone(),
                    path: file.path.clone(),
                    line: f.line,
                    kind: file.kind,
                    is_pub: f.is_pub,
                    in_test: f.in_test || file_gated,
                    impl_type,
                    module,
                    body: f.body.clone(),
                });
            }
        }
        table
    }

    /// Human-readable label for a function: `crate::module::name`.
    pub fn label(&self, id: FnId) -> String {
        let f = &self.fns[id as usize];
        let mut out = crate_ident(&f.crate_name);
        for m in &f.module {
            out.push_str("::");
            out.push_str(m);
        }
        out.push_str("::");
        if let Some(t) = &f.impl_type {
            out.push_str(t);
            out.push_str("::");
        }
        out.push_str(&f.name);
        out
    }

    /// Label plus source location, for diagnostics chains.
    pub fn chain_entry(&self, id: FnId) -> String {
        let f = &self.fns[id as usize];
        format!("{} ({}:{})", self.label(id), f.path, f.line)
    }
}

/// Paths (files or `dir/` prefixes) whose contents are test-gated by a
/// `#[cfg(test)] mod name;` declaration elsewhere.
fn cfg_test_gated_prefixes(ws: &Workspace) -> Vec<String> {
    let mut out = Vec::new();
    for file in &ws.files {
        let Some(dir) = file.path.rfind('/').map(|i| &file.path[..i]) else { continue };
        for name in cfg_test_mod_decls(&file.parsed) {
            out.push(format!("{dir}/{name}.rs"));
            out.push(format!("{dir}/{name}/"));
        }
    }
    out
}

/// Names declared as `#[cfg(test)] mod name;` (out-of-line) in this file.
fn cfg_test_mod_decls(p: &ParsedFile) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..p.tokens.len() {
        // `cfg ( test )` inside an attribute bracket group.
        if p.ident(i) != Some("cfg")
            || !p.is_open(i + 1, '(')
            || p.ident(i + 2) != Some("test")
            || p.match_of.get(i + 1) != Some(&(i + 3))
        {
            continue;
        }
        let bracket = p.parent[i];
        if bracket == usize::MAX || !p.is_open(bracket, '[') {
            continue;
        }
        let mut j = p.match_of[bracket] + 1;
        // Skip visibility.
        if p.ident(j) == Some("pub") {
            j += 1;
            if p.is_open(j, '(') && p.match_of[j] != usize::MAX {
                j = p.match_of[j] + 1;
            }
        }
        if p.ident(j) == Some("mod") {
            if let Some(name) = p.ident(j + 1) {
                if p.is_punct(j + 2, ';') {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Skips a `<...>` generic group starting at `i` (which must be `<`),
/// returning the index just past the closing `>`.
fn skip_angles(p: &ParsedFile, i: usize) -> usize {
    let n = p.tokens.len();
    let mut depth = 0i32;
    let mut j = i;
    while j < n {
        match p.tokens[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                let arrow = j > 0 && matches!(p.tokens[j - 1].kind, TokenKind::Punct('-'));
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            TokenKind::Open(_) => {
                let c = p.match_of[j];
                if c != usize::MAX {
                    j = c;
                }
            }
            _ => {}
        }
        j += 1;
    }
    n
}

/// Whether the `impl` at `i` begins an item (vs. `impl Trait` in a type
/// position, where it is preceded by `:`/`,`/`(`/`&`/`->` and similar).
fn impl_is_item(p: &ParsedFile, i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match &p.tokens[i - 1].kind {
        TokenKind::Punct(';') | TokenKind::Open('{') | TokenKind::Close('}') => true,
        TokenKind::Close(']') => true, // after an attribute
        TokenKind::Ident(id) => id == "unsafe",
        TokenKind::DocComment { .. } => true,
        _ => false,
    }
}

/// Extracts `impl` blocks as (body token range, subject type name).
///
/// For `impl Trait for Type { .. }` the subject is `Type`; path prefixes
/// and generic arguments are dropped (`impl fmt::Display for TensorError`
/// → `TensorError`).
fn impl_blocks(p: &ParsedFile) -> Vec<(Range<usize>, String)> {
    let n = p.tokens.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if p.ident(i) != Some("impl") || !impl_is_item(p, i) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(p.tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('<'))) {
            j = skip_angles(p, j);
        }
        let mut subject: Option<String> = None;
        let mut in_where = false;
        while j < n {
            match &p.tokens[j].kind {
                TokenKind::Open('{') => break,
                TokenKind::Punct(';') => break, // `impl Foo;` — malformed, bail
                TokenKind::Ident(id) if id == "for" => {
                    subject = None;
                    j += 1;
                }
                TokenKind::Ident(id) if id == "where" => {
                    in_where = true;
                    j += 1;
                }
                TokenKind::Ident(id) if !in_where => {
                    if id != "dyn" && id != "mut" {
                        subject = Some(id.clone());
                    }
                    j += 1;
                }
                TokenKind::Punct('<') => j = skip_angles(p, j),
                TokenKind::Open(_) => {
                    let c = p.match_of[j];
                    j = if c != usize::MAX { c + 1 } else { j + 1 };
                }
                _ => j += 1,
            }
        }
        if j < n && p.is_open(j, '{') && p.match_of[j] != usize::MAX {
            if let Some(ty) = subject {
                out.push((j + 1..p.match_of[j], ty));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Extracts inline `mod name { .. }` blocks as (body range, name).
fn inline_mod_blocks(p: &ParsedFile) -> Vec<(Range<usize>, String)> {
    let mut out = Vec::new();
    for i in 0..p.tokens.len() {
        if p.ident(i) != Some("mod") {
            continue;
        }
        let Some(name) = p.ident(i + 1) else { continue };
        if p.is_open(i + 2, '{') && p.match_of[i + 2] != usize::MAX {
            out.push((i + 3..p.match_of[i + 2], name.to_string()));
        }
    }
    out
}

/// Module path implied by the file's location within its crate:
/// `src/lib.rs` → `[]`, `src/foo.rs` → `[foo]`, `src/foo/mod.rs` → `[foo]`,
/// `src/foo/bar.rs` → `[foo, bar]`, `src/bin/x.rs` → `[]` (own root).
fn module_path_of(path: &str) -> Vec<String> {
    let parts: Vec<&str> = path.split('/').collect();
    let Some(si) = parts.iter().position(|&c| c == "src") else {
        return Vec::new();
    };
    let rest = &parts[si + 1..];
    let mut out = Vec::new();
    for (k, comp) in rest.iter().enumerate() {
        if k + 1 == rest.len() {
            let stem = comp.strip_suffix(".rs").unwrap_or(comp);
            let under_bin = k > 0 && rest[k - 1] == "bin";
            if !matches!(stem, "lib" | "main" | "mod") && !under_bin && !stem.is_empty() {
                out.push(stem.to_string());
            }
        } else if *comp != "bin" {
            out.push(comp.to_string());
        }
    }
    out
}

/// Splits `range` on top-level commas (delimiter groups are opaque).
fn split_commas(p: &ParsedFile, range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = range.start;
    let mut i = range.start;
    while i < range.end {
        match p.tokens[i].kind {
            TokenKind::Punct(',') => {
                out.push(start..i);
                start = i + 1;
                i += 1;
            }
            TokenKind::Open(_) => {
                let c = p.match_of[i];
                i = if c != usize::MAX && c < range.end { c + 1 } else { i + 1 };
            }
            _ => i += 1,
        }
    }
    if start < range.end {
        out.push(start..range.end);
    }
    out
}

fn parse_use_path(
    p: &ParsedFile,
    range: Range<usize>,
    prefix: &[String],
    out: &mut BTreeMap<String, Vec<String>>,
) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut i = range.start;
    while i < range.end {
        match &p.tokens[i].kind {
            TokenKind::Ident(id) if id == "as" => {
                if let Some(r) = p.ident(i + 1) {
                    out.insert(r.to_string(), segs);
                }
                return;
            }
            TokenKind::Ident(id) => {
                segs.push(id.clone());
                i += 1;
            }
            TokenKind::Open('{') => {
                let close = p.match_of[i].min(range.end);
                for part in split_commas(p, i + 1..close) {
                    parse_use_path(p, part, &segs, out);
                }
                return;
            }
            TokenKind::Punct('*') => return,
            _ => i += 1,
        }
    }
    if segs.len() > prefix.len() {
        // `use a::b::{self}` imports `b` itself.
        if segs.last().map(String::as_str) == Some("self") {
            segs.pop();
        }
        if let Some(last) = segs.last() {
            out.insert(last.clone(), segs.clone());
        }
    }
}

/// All `use` declarations of a file as local name → full path segments.
fn collect_imports(p: &ParsedFile) -> BTreeMap<String, Vec<String>> {
    let n = p.tokens.len();
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < n {
        if p.ident(i) == Some("use") {
            let mut j = i + 1;
            while j < n && !p.is_punct(j, ';') {
                match p.tokens[j].kind {
                    TokenKind::Open(_) => {
                        let c = p.match_of[j];
                        j = if c != usize::MAX { c + 1 } else { j + 1 };
                    }
                    _ => j += 1,
                }
            }
            parse_use_path(p, i + 1..j, &[], &mut out);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileUnit;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files.iter().map(|(path, src)| FileUnit::from_source(path, src)).collect(),
        }
    }

    #[test]
    fn methods_are_associated_with_their_impl_type() {
        let t = SymbolTable::build(&ws(&[(
            "crates/tensor/src/ops.rs",
            r#"
impl Tensor {
    pub fn map(&self) -> Tensor { self.clone() }
}
impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, "x") }
}
pub fn free_fn() {}
"#,
        )]));
        let map = &t.fns[0];
        assert_eq!(map.impl_type.as_deref(), Some("Tensor"));
        let fmt = &t.fns[1];
        assert_eq!(fmt.impl_type.as_deref(), Some("TensorError"));
        let free = &t.fns[2];
        assert_eq!(free.impl_type, None);
        assert!(t.by_method.contains_key(&("Tensor".to_string(), "map".to_string())));
    }

    #[test]
    fn impl_trait_in_type_position_is_not_an_impl_block() {
        let t = SymbolTable::build(&ws(&[(
            "crates/tensor/src/ops.rs",
            "pub fn apply(f: impl Fn(f32) -> f32) -> f32 { helper(f) }\nfn helper(f: impl Fn(f32) -> f32) -> f32 { f(0.0) }",
        )]));
        assert!(t.fns.iter().all(|f| f.impl_type.is_none()));
    }

    #[test]
    fn module_paths_follow_file_layout_and_inline_mods() {
        let t = SymbolTable::build(&ws(&[
            ("crates/trace/src/clock.rs", "pub fn tick() {}"),
            ("crates/core/src/train/state.rs", "pub fn crc() {}"),
            ("crates/nn/src/lib.rs", "mod inner { pub fn hidden() {} }"),
        ]));
        assert_eq!(t.fns[0].module, vec!["clock"]);
        assert_eq!(t.fns[1].module, vec!["train", "state"]);
        assert_eq!(t.fns[2].module, vec!["inner"]);
    }

    #[test]
    fn cfg_test_gated_out_of_line_mod_marks_file_test_only() {
        let t = SymbolTable::build(&ws(&[
            ("crates/nn/src/lib.rs", "#[cfg(test)]\npub(crate) mod testutil;\n"),
            ("crates/nn/src/testutil.rs", "pub fn check_gradients() {}"),
            ("crates/nn/src/layer.rs", "pub fn forward() {}"),
        ]));
        let util = t.fns.iter().find(|f| f.name == "check_gradients").unwrap();
        assert!(util.in_test);
        let fwd = t.fns.iter().find(|f| f.name == "forward").unwrap();
        assert!(!fwd.in_test);
    }

    #[test]
    fn imports_resolve_groups_and_renames() {
        let t = SymbolTable::build(&ws(&[(
            "crates/nn/src/lib.rs",
            "use simpadv_tensor::{Tensor, ops::scale as rescale};\nuse simpadv_trace::clock;\n",
        )]));
        let im = &t.imports[0];
        assert_eq!(im.get("Tensor").unwrap(), &["simpadv_tensor", "Tensor"]);
        assert_eq!(im.get("rescale").unwrap(), &["simpadv_tensor", "ops", "scale"]);
        assert_eq!(im.get("clock").unwrap(), &["simpadv_trace", "clock"]);
    }

    #[test]
    fn labels_carry_crate_module_and_type() {
        let t = SymbolTable::build(&ws(&[(
            "crates/trace/src/clock.rs",
            "impl Clock { pub fn tick(&self) {} }",
        )]));
        assert_eq!(t.label(0), "simpadv_trace::clock::Clock::tick");
    }
}
