//! A line-tracking Rust lexer sufficient for invariant linting.
//!
//! `syn` is not available in this build environment, so the analyzer works
//! from a hand-rolled token stream. The lexer's contract is deliberately
//! narrower than rustc's: it must (a) never confuse comment/string content
//! with code, (b) preserve doc comments as first-class tokens (rule R2
//! inspects them), and (c) report accurate line numbers for diagnostics.
//! Everything else — precise number grammar, multi-character operators —
//! is left to the token consumers, which match on adjacent single-character
//! punctuation instead.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`, stored without `r#`).
    Ident(String),
    /// Lifetime such as `'a` (stored without the quote).
    Lifetime(String),
    /// Any literal: number, string, char, byte string. Stored as source
    /// text for numbers and as an opaque marker for strings (their content
    /// must never be mistaken for code).
    Literal(String),
    /// Outer (`///`) or inner (`//!`) doc comment text, `///`-prefix
    /// stripped, one token per comment line.
    DocComment {
        /// `true` for `//!` module-level docs.
        inner: bool,
        /// The comment text after the marker.
        text: String,
    },
    /// A single punctuation character (`.`, `#`, `!`, `:`, `>`, ...).
    Punct(char),
    /// An opening delimiter: `(`, `[`, or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]`, or `}`.
    Close(char),
}

impl TokenKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes a `//`-comment; returns a doc token when it is one.
    fn line_comment(&mut self) -> Option<TokenKind> {
        let line_start = self.pos;
        debug_assert!(self.src[line_start..].starts_with(b"//"));
        self.bump();
        self.bump();
        let (is_doc, inner) = match self.peek() {
            // `////...` is an ordinary comment by Rust's rules.
            Some(b'/') if self.peek_at(1) != Some(b'/') => {
                self.bump();
                (true, false)
            }
            Some(b'!') => {
                self.bump();
                (true, true)
            }
            _ => (false, false),
        };
        let text = self.take_while(|b| b != b'\n');
        if is_doc {
            Some(TokenKind::DocComment { inner, text })
        } else {
            None
        }
    }

    /// Consumes a nested `/* ... */` block comment.
    fn block_comment(&mut self) {
        debug_assert!(self.src[self.pos..].starts_with(b"/*"));
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"..."` string body (opening quote already consumed).
    fn string_body(&mut self) {
        while let Some(b) = self.bump() {
            match b {
                b'"' => return,
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
    }

    /// Consumes a raw string `r##"..."##` where `hashes` `#`s follow `r`.
    fn raw_string_body(&mut self, hashes: usize) {
        // Opening quote already consumed.
        loop {
            match self.bump() {
                None => return,
                Some(b'"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> String {
        let start = self.pos;
        self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        // Fraction: `.` followed by a digit (so `0..5` and `1.max()` stay
        // separate tokens).
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
        // Signed exponent (`1e-3`): the `e` was consumed above; a trailing
        // sign+digits follows only in that case.
        if matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(), Some(b'+' | b'-'))
            && self.peek_at(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes Rust source into a token stream with line numbers.
///
/// Comment and string *content* never appears as code tokens; doc comments
/// are preserved as [`TokenKind::DocComment`].
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0, line: 1 };
    let mut tokens = Vec::new();
    while let Some(b) = lx.peek() {
        let line = lx.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek_at(1) == Some(b'/') => {
                if let Some(doc) = lx.line_comment() {
                    tokens.push(Token { kind: doc, line });
                }
            }
            b'/' if lx.peek_at(1) == Some(b'*') => lx.block_comment(),
            b'"' => {
                lx.bump();
                lx.string_body();
                tokens.push(Token { kind: TokenKind::Literal("\"str\"".into()), line });
            }
            b'\'' => {
                // Lifetime vs char literal.
                let next = lx.peek_at(1);
                let after = lx.peek_at(2);
                let is_lifetime =
                    next.is_some_and(is_ident_start) && next != Some(b'\\') && after != Some(b'\'');
                if is_lifetime {
                    lx.bump(); // '
                    let name = lx.take_while(is_ident_continue);
                    tokens.push(Token { kind: TokenKind::Lifetime(name), line });
                } else {
                    lx.bump(); // '
                    if lx.peek() == Some(b'\\') {
                        lx.bump();
                        lx.bump();
                    } else {
                        lx.bump();
                    }
                    // Closing quote (missing on malformed input).
                    if lx.peek() == Some(b'\'') {
                        lx.bump();
                    }
                    tokens.push(Token { kind: TokenKind::Literal("'c'".into()), line });
                }
            }
            b if b.is_ascii_digit() => {
                let text = lx.number();
                tokens.push(Token { kind: TokenKind::Literal(text), line });
            }
            b if is_ident_start(b) => {
                let text = lx.take_while(is_ident_continue);
                // String-ish prefixes: r"", r#""#, b"", br"", b''.
                let hashes_then_quote = |lx: &Lexer<'_>| {
                    let mut n = 0;
                    while lx.peek_at(n) == Some(b'#') {
                        n += 1;
                    }
                    (lx.peek_at(n) == Some(b'"')).then_some(n)
                };
                match text.as_str() {
                    "r" | "br" | "b" if lx.peek() == Some(b'"') => {
                        lx.bump();
                        if text == "b" {
                            lx.string_body();
                        } else {
                            lx.raw_string_body(0);
                        }
                        tokens.push(Token { kind: TokenKind::Literal("\"str\"".into()), line });
                    }
                    "r" | "br" => {
                        if let Some(n) = hashes_then_quote(&lx) {
                            for _ in 0..=n {
                                lx.bump(); // the hashes and the quote
                            }
                            lx.raw_string_body(n);
                            tokens.push(Token { kind: TokenKind::Literal("\"str\"".into()), line });
                        } else if lx.peek() == Some(b'#') {
                            // Raw identifier r#ident.
                            lx.bump();
                            let name = lx.take_while(is_ident_continue);
                            tokens.push(Token { kind: TokenKind::Ident(name), line });
                        } else {
                            tokens.push(Token { kind: TokenKind::Ident(text), line });
                        }
                    }
                    "b" if lx.peek() == Some(b'\'') => {
                        lx.bump();
                        if lx.peek() == Some(b'\\') {
                            lx.bump();
                        }
                        lx.bump();
                        if lx.peek() == Some(b'\'') {
                            lx.bump();
                        }
                        tokens.push(Token { kind: TokenKind::Literal("b'c'".into()), line });
                    }
                    _ => tokens.push(Token { kind: TokenKind::Ident(text), line }),
                }
            }
            b'(' | b'[' | b'{' => {
                lx.bump();
                tokens.push(Token { kind: TokenKind::Open(b as char), line });
            }
            b')' | b']' | b'}' => {
                lx.bump();
                tokens.push(Token { kind: TokenKind::Close(b as char), line });
            }
            _ => {
                lx.bump();
                tokens.push(Token { kind: TokenKind::Punct(b as char), line });
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter_map(|t| t.kind.ident().map(str::to_string)).collect()
    }

    #[test]
    fn comments_and_strings_hide_code_like_text() {
        let src = r##"
            // thread_rng() in a comment
            /* unwrap() in /* nested */ block */
            let s = "thread_rng() in a string";
            let r = r#"panic!("in raw string")"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn doc_comments_are_preserved_separately() {
        let src = "/// # Panics\n///\n/// Panics if x < 0.\npub fn f() {}\n";
        let docs: Vec<String> = lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::DocComment { text, inner: false } => Some(text),
                _ => None,
            })
            .collect();
        assert_eq!(docs.len(), 3);
        assert!(docs[0].contains("# Panics"));
        // The doc text must NOT appear as identifiers.
        assert!(!idents(src).contains(&"Panics".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| matches!(t.kind, TokenKind::Lifetime(_))).collect();
        assert_eq!(lifetimes.len(), 3);
    }

    #[test]
    fn char_literals_lex_as_literals() {
        let toks = lex("let c = 'x'; let esc = '\\n'; let q = '\\'';");
        let lits = toks.iter().filter(|t| matches!(t.kind, TokenKind::Literal(_))).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = lex("for i in 0..10 { let x = 0.5e-3f32; }");
        let texts: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Literal(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["0", "10", "0.5e-3f32"]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let toks = lex(src);
        let fn_lines: Vec<u32> =
            toks.iter().filter(|t| t.kind.ident() == Some("fn")).map(|t| t.line).collect();
        assert_eq!(fn_lines, vec![1, 3]);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"line1\nline2\nline3\";\nfn after() {}\n";
        let toks = lex(src);
        let fn_tok = toks.iter().find(|t| t.kind.ident() == Some("fn")).unwrap();
        assert_eq!(fn_tok.line, 4);
    }
}
