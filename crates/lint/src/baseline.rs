//! Diagnostics-count baseline: a committed snapshot (`lint-baseline.json`)
//! that lets CI fail on *new* diagnostics even for rules running in
//! warn-only mode. The format is a single JSON object with per-rule
//! counts; comparison is one-sided — counts may shrink freely, growth is
//! a regression.

use crate::rules::RULES;
use crate::Diagnostic;
use std::collections::BTreeMap;

/// Renders the baseline JSON for a diagnostics set: every registered
/// rule appears with its count (zero included), in registry order.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": {\n");
    for (i, rule) in RULES.iter().enumerate() {
        let sep = if i + 1 == RULES.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {}{sep}\n",
            rule.id,
            counts.get(rule.id).copied().unwrap_or(0)
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parses baseline JSON produced by [`render`] into per-rule counts.
/// Hand-rolled to match exactly that shape; unknown keys are ignored.
pub fn parse(src: &str) -> Result<BTreeMap<String, usize>, String> {
    let rules_at = src.find("\"rules\"").ok_or("baseline JSON has no \"rules\" object")?;
    let open = src[rules_at..]
        .find('{')
        .map(|i| rules_at + i)
        .ok_or("baseline \"rules\" is not an object")?;
    let close = src[open..]
        .find('}')
        .map(|i| open + i)
        .ok_or("baseline \"rules\" object is unterminated")?;
    let mut out = BTreeMap::new();
    for pair in src[open + 1..close].split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) =
            pair.split_once(':').ok_or_else(|| format!("malformed baseline entry `{pair}`"))?;
        let key = key.trim().trim_matches('"');
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline count for `{key}` is not a number"))?;
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

/// Compares diagnostics against a baseline. Returns one message per rule
/// whose count exceeds the recorded one (a rule absent from the baseline
/// counts as 0 — new rules start strict).
pub fn compare(baseline: &BTreeMap<String, usize>, diags: &[Diagnostic]) -> Vec<String> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for rule in RULES {
        let have = counts.get(rule.id).copied().unwrap_or(0);
        let allowed = baseline.get(rule.id).copied().unwrap_or(0);
        if have > allowed {
            out.push(format!(
                "{}: {} diagnostic(s), baseline allows {} — new findings must be \
                 fixed (or the baseline regenerated with --write-baseline after review)",
                rule.id, have, allowed
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str) -> Diagnostic {
        Diagnostic {
            rule,
            path: "x.rs".into(),
            line: 1,
            item: "i".into(),
            message: "m".into(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let diags = vec![diag("R1"), diag("R1"), diag("S4")];
        let counts = parse(&render(&diags)).expect("parse");
        assert_eq!(counts["R1"], 2);
        assert_eq!(counts["S4"], 1);
        assert_eq!(counts["R2"], 0);
        // Every registered rule is present.
        assert_eq!(counts.len(), RULES.len());
    }

    #[test]
    fn compare_flags_growth_only() {
        let baseline = parse(&render(&[diag("R1")])).expect("parse");
        // Same count: clean. Fewer: clean. More: regression.
        assert!(compare(&baseline, &[diag("R1")]).is_empty());
        assert!(compare(&baseline, &[]).is_empty());
        let msgs = compare(&baseline, &[diag("R1"), diag("R1")]);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].starts_with("R1: 2 diagnostic"));
    }

    #[test]
    fn unknown_rule_in_diags_counts_from_zero() {
        let baseline = parse(&render(&[])).expect("parse");
        let msgs = compare(&baseline, &[diag("S2")]);
        assert_eq!(msgs.len(), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"rules\": {\"R1\": \"x\"}}").is_err());
    }
}
