//! Substrate throughput: the tensor kernels every experiment leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_tensor::{im2col, Conv2dGeometry, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
    }
    group.finish();
}

fn bench_matmul_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::rand_uniform(&mut rng, &[128, 784], -1.0, 1.0);
    let w = Tensor::rand_uniform(&mut rng, &[784, 128], -1.0, 1.0);
    let mut group = c.benchmark_group("matmul_variants");
    group.bench_function("nn", |b| b.iter(|| black_box(a.matmul(&w))));
    group.bench_function("tn", |b| {
        let at = a.transpose();
        b.iter(|| black_box(at.matmul_tn(&w)))
    });
    group.bench_function("nt", |b| {
        let wt = w.transpose();
        b.iter(|| black_box(a.matmul_nt(&wt)))
    });
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Tensor::rand_uniform(&mut rng, &[64, 784], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[64, 784], -1.0, 1.0);
    let mut group = c.benchmark_group("elementwise");
    group.bench_function("add", |bch| bch.iter(|| black_box(a.add(&b))));
    group.bench_function("sign", |bch| bch.iter(|| black_box(a.sign())));
    group.bench_function("clamp", |bch| bch.iter(|| black_box(a.clamp(0.0, 1.0))));
    group.bench_function("add_scaled_in_place", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.add_scaled(&b, 0.3);
            black_box(x)
        })
    });
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::rand_uniform(&mut rng, &[16, 1, 28, 28], 0.0, 1.0);
    let geom = Conv2dGeometry::new(28, 28, 3, 3, 1, 1);
    c.bench_function("im2col_16x1x28x28_k3", |b| b.iter(|| black_box(im2col(&x, 1, &geom))));
}

criterion_group!(benches, bench_matmul, bench_matmul_variants, bench_elementwise, bench_im2col);
criterion_main!(benches);
