//! Attack-generation cost: the inner loop whose repetition count is
//! exactly what separates Single-Adv from Iter-Adv in Table I.
//!
//! Expected shape: FGSM ≈ BIM(1); BIM(k) scales linearly in k; PGD(k) ≈
//! BIM(k) plus one random draw.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv::ModelSpec;
use simpadv_attacks::{Attack, Bim, Fgsm, Mim, Pgd, RandomNoise};
use simpadv_data::IMAGE_PIXELS;
use simpadv_tensor::Tensor;
use std::hint::black_box;

fn batch(n: usize) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(9);
    let x = Tensor::rand_uniform(&mut rng, &[n, IMAGE_PIXELS], 0.0, 1.0);
    let y = (0..n).map(|i| i % 10).collect();
    (x, y)
}

fn bench_attacks(c: &mut Criterion) {
    let mut clf = ModelSpec::default_mlp().build(0);
    let (x, y) = batch(64);
    let mut group = c.benchmark_group("attack_generation_batch64");
    group.sample_size(20);
    group.bench_function("fgsm", |b| {
        let mut atk = Fgsm::new(0.3);
        b.iter(|| black_box(atk.perturb(&mut clf, &x, &y)))
    });
    for &k in &[1usize, 10, 30] {
        group.bench_with_input(BenchmarkId::new("bim", k), &k, |b, &k| {
            let mut atk = Bim::new(0.3, k);
            b.iter(|| black_box(atk.perturb(&mut clf, &x, &y)))
        });
    }
    group.bench_function("pgd10", |b| {
        let mut atk = Pgd::new(0.3, 10, 7);
        b.iter(|| black_box(atk.perturb(&mut clf, &x, &y)))
    });
    group.bench_function("mim10", |b| {
        let mut atk = Mim::new(0.3, 10, 1.0);
        b.iter(|| black_box(atk.perturb(&mut clf, &x, &y)))
    });
    group.bench_function("noise", |b| {
        let mut atk = RandomNoise::new(0.3, 7);
        b.iter(|| black_box(atk.perturb(&mut clf, &x, &y)))
    });
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
