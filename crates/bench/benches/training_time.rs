//! The micro version of Table I's "training time per epoch" column: one
//! epoch of every method on a fixed small workload.
//!
//! Expected shape (the paper's): Vanilla < FGSM-Adv ≈ Proposed ≤ ATDA ≪
//! BIM(10)-Adv ≪ BIM(30)-Adv.

use criterion::{criterion_group, criterion_main, Criterion};
use simpadv::train::{
    AtdaTrainer, BimAdvTrainer, FgsmAdvTrainer, ProposedTrainer, Trainer, VanillaTrainer,
};
use simpadv::{ModelSpec, TrainConfig};
use simpadv_data::{SynthConfig, SynthDataset};
use std::hint::black_box;

fn bench_one_epoch(c: &mut Criterion) {
    let data = SynthDataset::Mnist.generate(&SynthConfig::new(256, 1));
    let config = TrainConfig::new(1, 0);
    let eps = 0.3;
    let mut group = c.benchmark_group("one_epoch_n256");
    group.sample_size(10);

    group.bench_function("vanilla", |b| {
        b.iter(|| {
            let mut clf = ModelSpec::small_mlp().build(3);
            black_box(VanillaTrainer::new().train(&mut clf, &data, &config))
        })
    });
    group.bench_function("fgsm_adv", |b| {
        b.iter(|| {
            let mut clf = ModelSpec::small_mlp().build(3);
            black_box(FgsmAdvTrainer::new(eps).train(&mut clf, &data, &config))
        })
    });
    group.bench_function("atda", |b| {
        b.iter(|| {
            let mut clf = ModelSpec::small_mlp().build(3);
            black_box(AtdaTrainer::new(eps).train(&mut clf, &data, &config))
        })
    });
    group.bench_function("proposed", |b| {
        b.iter(|| {
            let mut clf = ModelSpec::small_mlp().build(3);
            black_box(ProposedTrainer::paper_defaults(eps).train(&mut clf, &data, &config))
        })
    });
    group.bench_function("bim10_adv", |b| {
        b.iter(|| {
            let mut clf = ModelSpec::small_mlp().build(3);
            black_box(BimAdvTrainer::new(eps, 10).train(&mut clf, &data, &config))
        })
    });
    group.bench_function("bim30_adv", |b| {
        b.iter(|| {
            let mut clf = ModelSpec::small_mlp().build(3);
            black_box(BimAdvTrainer::new(eps, 30).train(&mut clf, &data, &config))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_one_epoch);
criterion_main!(benches);
