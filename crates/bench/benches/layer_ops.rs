//! Layer forward/backward throughput at the shapes the experiments use.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_nn::{Conv2d, Dense, Layer, MaxPool2d, Mode, Relu};
use simpadv_tensor::Tensor;
use std::hint::black_box;

fn bench_dense(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut layer = Dense::new(784, 128, &mut rng);
    let x = Tensor::rand_uniform(&mut rng, &[128, 784], 0.0, 1.0);
    let mut group = c.benchmark_group("dense_784x128_batch128");
    group.bench_function("forward", |b| b.iter(|| black_box(layer.forward(&x, Mode::Train))));
    let y = layer.forward(&x, Mode::Train);
    let g = Tensor::ones(y.shape());
    group.bench_function("backward", |b| b.iter(|| black_box(layer.backward(&g))));
    group.finish();
}

fn bench_relu(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut layer = Relu::new();
    let x = Tensor::rand_uniform(&mut rng, &[128, 128], -1.0, 1.0);
    c.bench_function("relu_forward_128x128", |b| {
        b.iter(|| black_box(layer.forward(&x, Mode::Train)))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut layer = Conv2d::new(1, 8, 3, 1, 1, 28, 28, &mut rng);
    let x = Tensor::rand_uniform(&mut rng, &[16, 1, 28, 28], 0.0, 1.0);
    let mut group = c.benchmark_group("conv2d_1to8_k3_batch16");
    group.sample_size(20);
    group.bench_function("forward", |b| b.iter(|| black_box(layer.forward(&x, Mode::Train))));
    let y = layer.forward(&x, Mode::Train);
    let g = Tensor::ones(y.shape());
    group.bench_function("backward", |b| b.iter(|| black_box(layer.backward(&g))));
    group.finish();
}

fn bench_maxpool(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut layer = MaxPool2d::new(2, 2);
    let x = Tensor::rand_uniform(&mut rng, &[16, 8, 28, 28], 0.0, 1.0);
    c.bench_function("maxpool2x2_forward_16x8x28x28", |b| {
        b.iter(|| black_box(layer.forward(&x, Mode::Train)))
    });
}

criterion_group!(benches, bench_dense, bench_relu, bench_conv, bench_maxpool);
criterion_main!(benches);
