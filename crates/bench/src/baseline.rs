//! `--baseline` mode: runs the experiment under an in-memory trace and
//! emits the `BENCH_<experiment>.json` artifact the CI perf gate
//! compares against (see `simpadv_obs::baseline` for the schema and the
//! comparison itself).
//!
//! The runner deliberately does **not** wrap the experiment in an extra
//! span: the recorded stream must have the exact shape a plain traced
//! run produces, so `trace diff` between a baseline dump and a normal
//! `--trace` capture stays empty.

use crate::BenchOpts;
use simpadv_obs::baseline as obs;
use simpadv_trace::Event;
use std::error::Error;
use std::path::PathBuf;

fn scale_info(opts: &BenchOpts) -> obs::ScaleInfo {
    obs::ScaleInfo {
        train_samples: opts.scale.train_samples as u64,
        test_samples: opts.scale.test_samples as u64,
        epochs: opts.scale.epochs as u64,
        seed: opts.scale.seed,
    }
}

fn build_artifact(
    opts: &BenchOpts,
    experiment: &str,
    accuracies: Vec<(String, f64)>,
    streams: &[Vec<Event>],
) -> Result<obs::BenchArtifact, Box<dyn Error>> {
    let tree = simpadv_obs::build_tree(&streams[0])?;
    let mut epoch_walls = Vec::new();
    let mut total_walls = Vec::new();
    for stream in streams {
        let t = simpadv_obs::build_tree(stream)?;
        let epochs = obs::epoch_walls_s(&t);
        if !epochs.is_empty() {
            epoch_walls.push(epochs.iter().sum::<f64>() / epochs.len() as f64);
        }
        total_walls.push(obs::total_wall_s(&t));
    }
    Ok(obs::BenchArtifact {
        schema_version: obs::BENCH_SCHEMA_VERSION,
        experiment: experiment.to_string(),
        scale: scale_info(opts),
        trainers: obs::trainer_costs(&tree),
        accuracies,
        events: streams[0].len() as u64,
        trace_digest: obs::logical_digest(&streams[0]),
        meta: obs::BenchMeta {
            threads: opts.threads.unwrap_or(0) as u64,
            threads_available: simpadv_runtime::available_threads() as u64,
            repeat: streams.len() as u64,
            wall_per_epoch_s: obs::WallStats::from_samples(&epoch_walls),
            wall_total_s: obs::WallStats::from_samples(&total_walls),
            repeats_logically_identical: obs::repeats_logically_identical(streams),
            note: obs::WALL_NOTE.to_string(),
        },
    })
}

fn dump_jsonl(path: &std::path::Path, events: &[Event]) -> Result<(), Box<dyn Error>> {
    let mut text = String::new();
    for ev in events {
        text.push_str(&ev.to_json_line());
        text.push('\n');
    }
    simpadv_resilience::atomic_write(path, text.as_bytes())?;
    Ok(())
}

/// Runs `run` once (or `--repeat` times under `--baseline`) and, in
/// baseline mode, writes `BENCH_<experiment>.json` to the current
/// directory (the repository root, by convention) and the repeat-0
/// trace to `--trace FILE` when given. Returns the first run's result
/// and the artifact path, if one was written.
///
/// `accuracies` projects the experiment result onto the named scalar
/// series the perf gate pins down.
///
/// # Errors
///
/// Returns trace-reconstruction and I/O errors from artifact
/// production; plain (non-baseline) runs never fail here.
pub fn run_with_baseline<T>(
    opts: &BenchOpts,
    experiment: &str,
    accuracies: impl Fn(&T) -> Vec<(String, f64)>,
    mut run: impl FnMut() -> T,
) -> Result<(T, Option<PathBuf>), Box<dyn Error>> {
    if !opts.baseline {
        return Ok((run(), None));
    }
    let mut streams: Vec<Vec<Event>> = Vec::with_capacity(opts.repeat);
    let mut first: Option<T> = None;
    for _ in 0..opts.repeat {
        let handle = simpadv_trace::install_memory();
        let result = run();
        simpadv_trace::flush();
        streams.push(handle.take());
        if first.is_none() {
            first = Some(result);
        }
    }
    simpadv_trace::uninstall();
    let Some(result) = first else {
        return Err("baseline mode needs --repeat >= 1".into());
    };

    let artifact = build_artifact(opts, experiment, accuracies(&result), &streams)?;
    if let Some(path) = &opts.trace {
        dump_jsonl(path, &streams[0])?;
    }
    let out = PathBuf::from(format!("BENCH_{experiment}.json"));
    simpadv_resilience::write_json_atomic(&out, &artifact)?;
    let _: obs::BenchArtifact = crate::verify_artifact(&out)?;
    Ok((result, Some(out)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpadv_trace::span;

    fn baseline_opts(dir: &std::path::Path) -> BenchOpts {
        let mut opts = BenchOpts::from_args(&["--smoke".to_string()]);
        opts.baseline = true;
        opts.trace = Some(dir.join("trace.jsonl"));
        opts
    }

    fn tiny_traced_workload() -> u64 {
        let _t = span!("train", trainer = "proposed", epochs = 1_u64);
        {
            let _e = span!("epoch", index = 0_u64);
            simpadv_trace::clock::tick_forward(3);
        }
        42
    }

    #[test]
    fn non_baseline_runs_pass_through() {
        let opts = BenchOpts::from_args(&[]);
        let (v, path) =
            run_with_baseline(&opts, "unit", |_| Vec::new(), || 7_u64).expect("plain run");
        assert_eq!(v, 7);
        assert!(path.is_none());
    }

    #[test]
    fn baseline_mode_writes_artifact_and_trace_dump() {
        let dir = std::env::temp_dir().join("simpadv-bench-baseline-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut opts = baseline_opts(&dir);
        opts.repeat = 2;
        // the artifact lands in the cwd (the package root under `cargo
        // test`); read it and clean it up
        let out = run_with_baseline(
            &opts,
            "unittest",
            |v| vec![("answer".into(), *v as f64)],
            tiny_traced_workload,
        );
        let (v, path) = out.expect("baseline run");
        assert_eq!(v, 42);
        let path = path.expect("artifact written");
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        std::fs::remove_file(&path).expect("artifact cleanup");
        let artifact: obs::BenchArtifact = serde_json::from_str(&text).expect("valid artifact");
        assert_eq!(artifact.experiment, "unittest");
        assert_eq!(artifact.meta.repeat, 2);
        assert!(artifact.meta.repeats_logically_identical);
        assert_eq!(artifact.trainers.len(), 1);
        assert_eq!(artifact.trainers[0].forward, 3);
        assert_eq!(artifact.accuracies, vec![("answer".to_string(), 42.0)]);

        let dump = std::fs::read_to_string(dir.join("trace.jsonl")).expect("dump readable");
        let events = simpadv_obs::read_events(&dump).expect("dump parses");
        assert_eq!(events.len() as u64, artifact.events);
        assert_eq!(obs::logical_digest(&events), artifact.trace_digest);
    }
}
