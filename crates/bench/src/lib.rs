//! # simpadv-bench
//!
//! Benchmark and regeneration harness for the `simpadv` reproduction.
//!
//! * **Regeneration binaries** — one per paper exhibit:
//!   `cargo run --release -p simpadv-bench --bin fig1` (and `fig2`,
//!   `table1`). Each prints the paper-shaped series/rows and writes a JSON
//!   artifact next to the repository's `results/` directory. Pass `--full`
//!   for the larger workload and `--smoke` for a seconds-scale sanity run.
//! * **Criterion benches** — `cargo bench -p simpadv-bench` measures the
//!   substrate (tensor/layer throughput), attack generation cost, and the
//!   per-epoch training cost of every method (the micro version of
//!   Table I's time column).

use simpadv::experiments::ExperimentScale;

/// Parses the common CLI of the regeneration binaries.
///
/// Recognized flags: `--full`, `--smoke` (default: quick). Unknown flags
/// abort with a usage message.
#[expect(clippy::exit, reason = "CLI usage-error abort in the regeneration binaries")]
pub fn scale_from_args(args: &[String]) -> ExperimentScale {
    let mut scale = ExperimentScale::quick();
    for a in args {
        match a.as_str() {
            "--full" => scale = ExperimentScale::full(),
            "--smoke" => scale = ExperimentScale::smoke(),
            "--quick" => scale = ExperimentScale::quick(),
            other => {
                eprintln!("unknown flag {other}; use --smoke | --quick | --full");
                std::process::exit(2);
            }
        }
    }
    scale
}

/// Writes a JSON artifact under `results/`, creating the directory.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_artifact<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let file = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(file, value)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        let s = scale_from_args(&[]);
        assert_eq!(s.train_samples, ExperimentScale::quick().train_samples);
    }

    #[test]
    fn full_flag_selects_full() {
        let s = scale_from_args(&["--full".to_string()]);
        assert_eq!(s.train_samples, ExperimentScale::full().train_samples);
    }

    #[test]
    fn smoke_flag_selects_smoke() {
        let s = scale_from_args(&["--smoke".to_string()]);
        assert_eq!(s.train_samples, ExperimentScale::smoke().train_samples);
    }
}
