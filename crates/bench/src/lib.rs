//! # simpadv-bench
//!
//! Benchmark and regeneration harness for the `simpadv` reproduction.
//!
//! * **Regeneration binaries** — one per paper exhibit:
//!   `cargo run --release -p simpadv-bench --bin fig1` (and `fig2`,
//!   `table1`). Each prints the paper-shaped series/rows and writes a JSON
//!   artifact next to the repository's `results/` directory. Pass `--full`
//!   for the larger workload, `--smoke` for a seconds-scale sanity run,
//!   and `--trace FILE` to capture a structured event trace of the run
//!   (summarize it with `simpadv-cli trace summarize FILE`).
//! * **Criterion benches** — `cargo bench -p simpadv-bench` measures the
//!   substrate (tensor/layer throughput), attack generation cost, and the
//!   per-epoch training cost of every method (the micro version of
//!   Table I's time column).

use simpadv::experiments::ExperimentScale;
use simpadv_trace::TraceFormat;

pub mod baseline;
pub mod kernels;

/// Reads a just-written `BENCH_*.json` back and type-checks it through
/// `simpadv_obs::parse_artifact`, so a torn write (writer killed
/// mid-write, disk full) surfaces at the writer as the typed
/// `TruncatedArtifact` error — mirroring `simpadv_obs::read_events`'s
/// torn-tail handling — instead of as a panic in a later `bench
/// compare` against the committed baseline.
///
/// # Errors
///
/// The read-back I/O error, or the typed truncation/parse error from
/// `parse_artifact`, each prefixed with the artifact path.
pub fn verify_artifact<T: serde::Deserialize>(
    path: &std::path::Path,
) -> Result<T, Box<dyn std::error::Error>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read back {}: {e}", path.display()))?;
    let artifact = simpadv_obs::parse_artifact(&text)
        .map_err(|e| format!("artifact {} failed read-back validation: {e}", path.display()))?;
    Ok(artifact)
}

/// The common CLI of the regeneration binaries: workload scale, thread
/// override, trace destination, and crash-safe checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchOpts {
    /// Experiment workload (`--smoke` / `--quick` / `--full`).
    pub scale: ExperimentScale,
    /// `--threads N` override; `None` keeps the runtime default
    /// (`SIMPADV_THREADS`, else all cores). Results are bitwise identical
    /// either way — the flag only changes wall-clock.
    pub threads: Option<usize>,
    /// `--trace FILE` destination for the run's event trace.
    pub trace: Option<std::path::PathBuf>,
    /// `--trace-format jsonl|pretty` (default jsonl).
    pub trace_format: TraceFormat,
    /// `--checkpoint-dir DIR` root for training snapshots; every training
    /// run inside the binary gets its own numbered subdirectory (in call
    /// order, which is deterministic), so `--resume` after a crash pairs
    /// each run with its own checkpoints.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// `--checkpoint-every N` epochs between snapshots (default 1).
    pub checkpoint_every: usize,
    /// `--resume`: continue each training run from its newest valid
    /// snapshot; bitwise identical to an uninterrupted run.
    pub resume: bool,
    /// `--baseline`: run under an in-memory trace and emit a
    /// `BENCH_<experiment>.json` benchmark-baseline artifact at the
    /// repository root (see `simpadv_obs::baseline`).
    pub baseline: bool,
    /// `--repeat N` (default 1, baseline mode only): repetitions behind
    /// the artifact's wall median/min/max statistics.
    pub repeat: usize,
}

impl BenchOpts {
    /// Parses the shared flags of the regeneration binaries.
    ///
    /// Recognized: `--full`, `--smoke`, `--quick` (default: quick),
    /// `--threads N`, `--trace FILE`, `--trace-format jsonl|pretty`,
    /// `--checkpoint-dir DIR`, `--checkpoint-every N`, `--resume`,
    /// `--baseline` and `--repeat N`. Unknown flags or missing/invalid
    /// values abort with a usage message.
    pub fn from_args(args: &[String]) -> Self {
        let mut opts = BenchOpts {
            scale: ExperimentScale::quick(),
            threads: None,
            trace: None,
            trace_format: TraceFormat::Jsonl,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            baseline: false,
            repeat: 1,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => opts.scale = ExperimentScale::full(),
                "--smoke" => opts.scale = ExperimentScale::smoke(),
                "--quick" => opts.scale = ExperimentScale::quick(),
                "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n > 0 => opts.threads = Some(n),
                    _ => {
                        eprintln!("--threads needs a positive integer value");
                        std::process::exit(2);
                    }
                },
                "--trace" => match it.next() {
                    Some(path) => opts.trace = Some(std::path::PathBuf::from(path)),
                    None => {
                        eprintln!("--trace needs a file path value");
                        std::process::exit(2);
                    }
                },
                "--trace-format" => match it.next().and_then(|v| TraceFormat::parse(v)) {
                    Some(f) => opts.trace_format = f,
                    None => {
                        eprintln!("--trace-format needs jsonl or pretty");
                        std::process::exit(2);
                    }
                },
                "--checkpoint-dir" => match it.next() {
                    Some(dir) => opts.checkpoint_dir = Some(std::path::PathBuf::from(dir)),
                    None => {
                        eprintln!("--checkpoint-dir needs a directory value");
                        std::process::exit(2);
                    }
                },
                "--checkpoint-every" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n > 0 => opts.checkpoint_every = n,
                    _ => {
                        eprintln!("--checkpoint-every needs a positive integer value");
                        std::process::exit(2);
                    }
                },
                "--resume" => opts.resume = true,
                "--baseline" => opts.baseline = true,
                "--repeat" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n > 0 => opts.repeat = n,
                    _ => {
                        eprintln!("--repeat needs a positive integer value");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!(
                        "unknown flag {other}; use --smoke | --quick | --full | --threads N \
                         | --trace FILE | --trace-format jsonl|pretty | --checkpoint-dir DIR \
                         | --checkpoint-every N | --resume | --baseline | --repeat N"
                    );
                    std::process::exit(2);
                }
            }
        }
        if opts.resume && opts.checkpoint_dir.is_none() {
            eprintln!("--resume requires --checkpoint-dir");
            std::process::exit(2);
        }
        if opts.repeat > 1 && !opts.baseline {
            eprintln!("--repeat only makes sense with --baseline");
            std::process::exit(2);
        }
        if opts.baseline && opts.trace_format == TraceFormat::Pretty {
            eprintln!("--baseline records traces in jsonl; --trace-format pretty is unsupported");
            std::process::exit(2);
        }
        opts
    }

    /// Applies the options to the process: sets the global thread count
    /// (when overridden), installs the trace sink (when requested) and the
    /// ambient checkpoint policy (when `--checkpoint-dir` was given) that
    /// every `Trainer::train` call inside the binary picks up.
    /// Pair with [`BenchOpts::finish`] before exiting.
    pub fn apply(&self) {
        if let Some(n) = self.threads {
            simpadv_runtime::set_global_threads(n);
        }
        if let Some(path) = &self.trace {
            // In baseline mode the runner records through an in-memory
            // sink and writes the jsonl dump itself (atomically).
            if self.baseline {
                return self.apply_policy();
            }
            if let Err(e) = simpadv_trace::install_file(path, self.trace_format) {
                eprintln!("cannot open trace file {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        self.apply_policy();
    }

    fn apply_policy(&self) {
        simpadv::train::set_checkpoint_policy(self.checkpoint_dir.as_ref().map(|dir| {
            simpadv::train::CheckpointPolicy {
                dir: dir.clone(),
                every: self.checkpoint_every,
                resume: self.resume,
            }
        }));
    }

    /// Flushes and removes the trace sink installed by
    /// [`BenchOpts::apply`]; a no-op when `--trace` was not given. Also
    /// clears the ambient checkpoint policy.
    pub fn finish(&self) {
        if self.trace.is_some() {
            simpadv_trace::uninstall();
        }
        if self.checkpoint_dir.is_some() {
            simpadv::train::set_checkpoint_policy(None);
        }
    }
}

/// Writes a JSON artifact under `results/`, creating the directory.
///
/// The write is atomic (temp file + rename via `simpadv-resilience`) with
/// a bounded retry on transient I/O errors, so a crash mid-regeneration
/// never leaves a truncated artifact behind.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_artifact<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    simpadv_resilience::write_json_atomic(&path, value)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn verify_artifact_reports_truncation_as_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("simpadv-bench-verify-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_torn.json");

        // a strict prefix of a valid artifact: the mid-write kill signature
        std::fs::write(&path, "{\"experiment\": \"kernels\", \"work").expect("plant torn file");
        let err = verify_artifact::<serde::Value>(&path).unwrap_err().to_string();
        assert!(err.contains("truncated artifact"), "{err}");
        assert!(err.contains("BENCH_torn.json"), "names the file: {err}");

        // an intact artifact reads back clean
        std::fs::write(&path, "{\"experiment\": \"kernels\"}").expect("plant whole file");
        let value: serde::Value = verify_artifact(&path).expect("intact artifact");
        assert!(value.get("experiment").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_scale_is_quick() {
        let opts = BenchOpts::from_args(&[]);
        assert_eq!(opts.scale.train_samples, ExperimentScale::quick().train_samples);
        assert_eq!(opts.threads, None);
        assert_eq!(opts.trace, None);
        assert_eq!(opts.trace_format, TraceFormat::Jsonl);
    }

    #[test]
    fn full_flag_selects_full() {
        let opts = BenchOpts::from_args(&argv("--full"));
        assert_eq!(opts.scale.train_samples, ExperimentScale::full().train_samples);
    }

    #[test]
    fn smoke_flag_selects_smoke() {
        let opts = BenchOpts::from_args(&argv("--smoke"));
        assert_eq!(opts.scale.train_samples, ExperimentScale::smoke().train_samples);
    }

    #[test]
    fn threads_flag_is_parsed_alongside_scale() {
        let opts = BenchOpts::from_args(&argv("--smoke --threads 4"));
        assert_eq!(opts.scale.train_samples, ExperimentScale::smoke().train_samples);
        assert_eq!(opts.threads, Some(4));
        let opts = BenchOpts::from_args(&argv("--threads 2 --full"));
        assert_eq!(opts.threads, Some(2));
    }

    #[test]
    fn trace_flags_are_parsed() {
        let opts = BenchOpts::from_args(&argv("--trace out.jsonl --trace-format pretty"));
        assert_eq!(opts.trace.as_deref(), Some(std::path::Path::new("out.jsonl")));
        assert_eq!(opts.trace_format, TraceFormat::Pretty);
        // finish without apply (or without --trace at all) is a no-op
        BenchOpts::from_args(&[]).finish();
    }

    #[test]
    fn apply_without_overrides_is_a_no_op() {
        let opts = BenchOpts::from_args(&[]);
        opts.apply();
        opts.finish();
    }

    #[test]
    fn checkpoint_flags_are_parsed() {
        let opts = BenchOpts::from_args(&argv("--smoke --checkpoint-dir ckpts"));
        assert_eq!(opts.checkpoint_dir.as_deref(), Some(std::path::Path::new("ckpts")));
        assert_eq!(opts.checkpoint_every, 1);
        assert!(!opts.resume);
        let opts =
            BenchOpts::from_args(&argv("--checkpoint-dir ckpts --checkpoint-every 5 --resume"));
        assert_eq!(opts.checkpoint_every, 5);
        assert!(opts.resume);
    }

    #[test]
    fn apply_installs_and_finish_clears_the_ambient_policy() {
        let dir = std::env::temp_dir().join("simpadv-bench-policy-test");
        let opts = BenchOpts::from_args(&argv(&format!("--checkpoint-dir {}", dir.display())));
        opts.apply();
        opts.finish();
        // after finish, plain train calls must not checkpoint: the policy
        // is global, so leaving it set would leak into other tests
        assert!(!dir.join("000-vanilla").exists());
    }
}
