//! # simpadv-bench
//!
//! Benchmark and regeneration harness for the `simpadv` reproduction.
//!
//! * **Regeneration binaries** — one per paper exhibit:
//!   `cargo run --release -p simpadv-bench --bin fig1` (and `fig2`,
//!   `table1`). Each prints the paper-shaped series/rows and writes a JSON
//!   artifact next to the repository's `results/` directory. Pass `--full`
//!   for the larger workload and `--smoke` for a seconds-scale sanity run.
//! * **Criterion benches** — `cargo bench -p simpadv-bench` measures the
//!   substrate (tensor/layer throughput), attack generation cost, and the
//!   per-epoch training cost of every method (the micro version of
//!   Table I's time column).

use simpadv::experiments::ExperimentScale;

/// Parses the common CLI of the regeneration binaries.
///
/// Recognized flags: `--full`, `--smoke`, `--quick` (default: quick) and
/// `--threads N` (returned for [`apply_threads`]). Unknown flags or a
/// missing/invalid `--threads` value abort with a usage message.
#[expect(clippy::exit, reason = "CLI usage-error abort in the regeneration binaries")]
pub fn scale_from_args(args: &[String]) -> (ExperimentScale, Option<usize>) {
    let mut scale = ExperimentScale::quick();
    let mut threads = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => scale = ExperimentScale::full(),
            "--smoke" => scale = ExperimentScale::smoke(),
            "--quick" => scale = ExperimentScale::quick(),
            "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}; use --smoke | --quick | --full | --threads N");
                std::process::exit(2);
            }
        }
    }
    (scale, threads)
}

/// Applies a parsed `--threads` override to the process-global runtime;
/// `None` keeps the default (`SIMPADV_THREADS`, else all cores). Results
/// are bitwise identical either way — the flag only changes wall-clock.
pub fn apply_threads(threads: Option<usize>) {
    if let Some(n) = threads {
        simpadv_runtime::set_global_threads(n);
    }
}

/// Writes a JSON artifact under `results/`, creating the directory.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_artifact<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let file = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(file, value)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn default_scale_is_quick() {
        let (s, threads) = scale_from_args(&[]);
        assert_eq!(s.train_samples, ExperimentScale::quick().train_samples);
        assert_eq!(threads, None);
    }

    #[test]
    fn full_flag_selects_full() {
        let (s, _) = scale_from_args(&argv("--full"));
        assert_eq!(s.train_samples, ExperimentScale::full().train_samples);
    }

    #[test]
    fn smoke_flag_selects_smoke() {
        let (s, _) = scale_from_args(&argv("--smoke"));
        assert_eq!(s.train_samples, ExperimentScale::smoke().train_samples);
    }

    #[test]
    fn threads_flag_is_parsed_alongside_scale() {
        let (s, threads) = scale_from_args(&argv("--smoke --threads 4"));
        assert_eq!(s.train_samples, ExperimentScale::smoke().train_samples);
        assert_eq!(threads, Some(4));
        let (_, threads) = scale_from_args(&argv("--threads 2 --full"));
        assert_eq!(threads, Some(2));
    }

    #[test]
    fn apply_threads_none_is_a_no_op() {
        apply_threads(None);
    }
}
