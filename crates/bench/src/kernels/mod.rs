//! The kernel microbenchmark lab: `bench kernels`.
//!
//! A registry of the workspace's hot kernels at the shapes the real
//! experiments run them — the default-MLP matmuls at batch 64, their
//! `matmul_tn`/`matmul_nt` gradient forms, the CNN's im2col lowering
//! tiles, the BIM/PGD craft-chunk attack steps, and the serve path's
//! batched forward — swept two ways:
//!
//! 1. **Logical sweep** (gateable): one iteration per workload under
//!    an in-memory trace. Per-iteration forward/backward/flop/attack
//!    counters come off the [`simpadv_trace::clock`] snapshot delta and
//!    logical bytes from shape arithmetic, so the resulting rows are
//!    bitwise identical across machines and `--threads` settings.
//! 2. **Wall sweep** (informational): warmup, a calibrated iteration
//!    count aimed at a per-workload wall budget (see `calibrate.rs`),
//!    and median/min/max seconds-per-iteration over `--repeat` runs,
//!    from which GFLOP/s and GB/s are derived. All of it lands in the
//!    artifact's `meta` and can only ever warn in the perf gate — this
//!    project benchmarks on one CPU, wall numbers are weather.
//!
//! The sweep emits `BENCH_kernels.json`
//! ([`simpadv_obs::KernelsArtifact`]) plus, with `--flame-dir`,
//! collapsed-stack flamegraphs of the logical sweep in both wall and
//! flop weights.

mod calibrate;

use simpadv::ModelSpec;
use simpadv_obs::baseline::{logical_digest, WallStats};
use simpadv_obs::{FlameWeight, KernelRow, KernelWallRow, KernelsArtifact, KernelsMeta};
use simpadv_tensor::{im2col, matmul_bytes, Conv2dGeometry, Tensor};
use simpadv_trace::{clock, span, Event};
use std::error::Error;
use std::path::PathBuf;

/// The craft-chunk width BIM/PGD attacks batch over (mirrors
/// `crates/attacks`' internal chunking).
const CRAFT_CHUNK: usize = 16;

/// Serve's default `batch_max`, the shape of the hot batched forward.
const SERVE_BATCH: usize = 16;

/// One registered microbenchmark: a named, shaped kernel invocation
/// plus its logical byte traffic.
pub struct Workload {
    /// Workload id, e.g. `matmul/64x784x128`.
    pub name: String,
    /// Registry group (`matmul`, `conv`, `attack`, `serve`).
    pub group: &'static str,
    /// Shape parameters, recorded verbatim in the artifact row.
    pub shape: Vec<u64>,
    /// Logical bytes one iteration reads + writes (shape arithmetic).
    pub bytes: u64,
    run: Box<dyn FnMut()>,
}

impl Workload {
    fn new(
        name: impl Into<String>,
        group: &'static str,
        shape: &[u64],
        bytes: u64,
        run: impl FnMut() + 'static,
    ) -> Workload {
        Workload { name: name.into(), group, shape: shape.to_vec(), bytes, run: Box::new(run) }
    }

    /// Runs one iteration of the kernel.
    pub fn run_once(&mut self) {
        (self.run)()
    }
}

/// Deterministic pseudo-data in `[0, 1)`: the kernels' cost is
/// data-independent, but seeded patterns keep any future
/// value-sensitive assertion reproducible.
fn pattern(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| (((i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt * 97)) % 1000) as f32)
        .map(|v| v / 1000.0)
        .collect()
}

fn tensor(shape: &[usize], salt: u64) -> Tensor {
    Tensor::from_vec(pattern(shape.iter().product(), salt), shape)
}

fn labels(n: usize) -> Vec<usize> {
    (0..n).map(|i| i % simpadv_data::CLASS_COUNT).collect()
}

/// Builds the workload registry: every hot kernel at the shapes the
/// experiments actually run. Registry order is the artifact row order.
pub fn registry() -> Vec<Workload> {
    let px = simpadv_data::IMAGE_PIXELS; // 784
    let classes = simpadv_data::CLASS_COUNT; // 10
    let hidden = 128usize; // ModelSpec::default_mlp
    let batch = 64usize; // TrainConfig::default batch_size
    let mut workloads = Vec::new();

    // -- matmul group: the default MLP's forward and gradient GEMMs.
    let (x, w1) = (tensor(&[batch, px], 1), tensor(&[px, hidden], 2));
    workloads.push(Workload::new(
        format!("matmul/{batch}x{px}x{hidden}"),
        "matmul",
        &[batch as u64, px as u64, hidden as u64],
        matmul_bytes(batch, px, hidden),
        move || {
            let _ = x.matmul(&w1);
        },
    ));
    let (h, w2) = (tensor(&[batch, hidden], 3), tensor(&[hidden, classes], 4));
    workloads.push(Workload::new(
        format!("matmul/{batch}x{hidden}x{classes}"),
        "matmul",
        &[batch as u64, hidden as u64, classes as u64],
        matmul_bytes(batch, hidden, classes),
        move || {
            let _ = h.matmul(&w2);
        },
    ));
    // Weight gradient dW = xᵀ·δ — matmul_tn at [m=784, k=64, n=128].
    let (xg, delta) = (tensor(&[batch, px], 5), tensor(&[batch, hidden], 6));
    workloads.push(Workload::new(
        format!("matmul_tn/{px}x{batch}x{hidden}"),
        "matmul",
        &[px as u64, batch as u64, hidden as u64],
        matmul_bytes(px, batch, hidden),
        move || {
            let _ = xg.matmul_tn(&delta);
        },
    ));
    // Input gradient dx = δ·Wᵀ — matmul_nt at [m=64, k=128, n=784].
    let (dg, wg) = (tensor(&[batch, hidden], 7), tensor(&[px, hidden], 8));
    workloads.push(Workload::new(
        format!("matmul_nt/{batch}x{hidden}x{px}"),
        "matmul",
        &[batch as u64, hidden as u64, px as u64],
        matmul_bytes(batch, hidden, px),
        move || {
            let _ = dg.matmul_nt(&wg);
        },
    ));

    // -- conv group: the small CNN's im2col lowering tiles (3×3, s1, p1).
    let conv_batch = 4usize;
    for (channels, side, salt) in [(1usize, 28usize, 9u64), (8, 14, 10)] {
        let geom = Conv2dGeometry::new(side, side, 3, 3, 1, 1);
        let input = tensor(&[conv_batch, channels, side, side], salt);
        let bytes = geom.im2col_bytes(conv_batch, channels);
        workloads.push(Workload::new(
            format!("conv/im2col/{conv_batch}x{channels}x{side}x{side}k3"),
            "conv",
            &[conv_batch as u64, channels as u64, side as u64, side as u64, 3, 1, 1],
            bytes,
            move || {
                let _ = im2col(&input, channels, &geom);
            },
        ));
    }

    // -- attack group: one BIM/PGD craft chunk against the default MLP.
    let elems = CRAFT_CHUNK * px;
    let mut clf = ModelSpec::default_mlp().build(7);
    let (ax, aorigin, ay) =
        (tensor(&[CRAFT_CHUNK, px], 11), tensor(&[CRAFT_CHUNK, px], 11), labels(CRAFT_CHUNK));
    workloads.push(Workload::new(
        format!("attack/signed_step/{CRAFT_CHUNK}x{px}"),
        "attack",
        &[CRAFT_CHUNK as u64, px as u64],
        simpadv_attacks::signed_step_bytes(elems),
        move || {
            let _ = simpadv_attacks::signed_step(&mut clf, &ax, &aorigin, &ay, 0.01, 0.1);
        },
    ));
    let (bx, borigin) = (tensor(&[CRAFT_CHUNK, px], 12), tensor(&[CRAFT_CHUNK, px], 13));
    workloads.push(Workload::new(
        format!("attack/project_ball/{CRAFT_CHUNK}x{px}"),
        "attack",
        &[CRAFT_CHUNK as u64, px as u64],
        simpadv_attacks::project_ball_bytes(elems),
        move || {
            let _ = simpadv_attacks::project_ball(&bx, &borigin, 0.1);
        },
    ));

    // -- serve group: the batched forward behind one dispatch.
    let mut served = ModelSpec::default_mlp().build(7);
    let sx = tensor(&[SERVE_BATCH, px], 14);
    workloads.push(Workload::new(
        format!("serve/predict/{SERVE_BATCH}x{px}"),
        "serve",
        &[SERVE_BATCH as u64, px as u64],
        4 * (SERVE_BATCH * px + SERVE_BATCH * classes) as u64,
        move || {
            let _ = served.predict(&sx);
        },
    ));
    workloads
}

/// CLI options of the `kernels` binary and the `bench kernels` verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelsOpts {
    /// Wall budget each calibrated timing loop aims for, microseconds
    /// (`--smoke` 20 ms, `--quick` 100 ms, `--full` 500 ms, or
    /// `--target-us N`). Only affects `meta` precision — the logical
    /// rows are scale-independent.
    pub target_iter_wall_us: u64,
    /// `--threads N` runtime override (logical rows are identical
    /// regardless).
    pub threads: Option<usize>,
    /// `--repeat N` timed repeats behind the wall statistics.
    pub repeat: usize,
    /// `--warmup N` untimed iterations before calibration.
    pub warmup: u64,
    /// `--out FILE` artifact destination.
    pub out: PathBuf,
    /// `--flame-dir DIR` for collapsed-stack flamegraphs (optional).
    pub flame_dir: Option<PathBuf>,
}

impl Default for KernelsOpts {
    fn default() -> Self {
        KernelsOpts {
            target_iter_wall_us: 100_000,
            threads: None,
            repeat: 3,
            warmup: 2,
            out: PathBuf::from("BENCH_kernels.json"),
            flame_dir: None,
        }
    }
}

impl KernelsOpts {
    /// Parses the kernel lab's flags; unknown flags or bad values abort
    /// with a usage message (mirroring [`crate::BenchOpts::from_args`]).
    pub fn from_args(args: &[String]) -> Self {
        let mut opts = KernelsOpts::default();
        let mut it = args.iter();
        let bad = |msg: &str| -> ! {
            eprintln!("{msg}");
            std::process::exit(2);
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--smoke" => opts.target_iter_wall_us = 20_000,
                "--quick" => opts.target_iter_wall_us = 100_000,
                "--full" => opts.target_iter_wall_us = 500_000,
                "--target-us" => match it.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) if n > 0 => opts.target_iter_wall_us = n,
                    _ => bad("--target-us needs a positive integer value"),
                },
                "--threads" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n > 0 => opts.threads = Some(n),
                    _ => bad("--threads needs a positive integer value"),
                },
                "--repeat" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n > 0 => opts.repeat = n,
                    _ => bad("--repeat needs a positive integer value"),
                },
                "--warmup" => match it.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(n)) => opts.warmup = n,
                    _ => bad("--warmup needs a non-negative integer value"),
                },
                "--out" => match it.next() {
                    Some(path) => opts.out = PathBuf::from(path),
                    None => bad("--out needs a file path value"),
                },
                "--flame-dir" => match it.next() {
                    Some(dir) => opts.flame_dir = Some(PathBuf::from(dir)),
                    None => bad("--flame-dir needs a directory value"),
                },
                other => bad(&format!(
                    "unknown flag {other}; use --smoke | --quick | --full | --target-us N \
                     | --threads N | --repeat N | --warmup N | --out FILE | --flame-dir DIR"
                )),
            }
        }
        opts
    }
}

/// The logical sweep: one traced iteration per workload, clock-delta
/// counters per row, plus the captured event stream. Deterministic —
/// same rows and digest on any machine at any thread count.
fn logical_sweep(workloads: &mut [Workload]) -> (Vec<KernelRow>, Vec<Event>) {
    let handle = simpadv_trace::install_memory();
    let mut rows = Vec::with_capacity(workloads.len());
    {
        let _sweep = span!("kernels");
        for w in workloads.iter_mut() {
            let before = clock::snapshot();
            {
                let _k = span!(&w.name);
                w.run_once();
            }
            let d = clock::snapshot().delta_since(&before);
            rows.push(KernelRow {
                name: w.name.clone(),
                group: w.group.to_string(),
                shape: w.shape.clone(),
                forward: d.forward,
                backward: d.backward,
                flops: d.flops,
                attack_steps: d.attack_steps,
                bytes: w.bytes,
            });
        }
    }
    simpadv_trace::flush();
    let events = handle.take();
    simpadv_trace::uninstall();
    (rows, events)
}

/// The wall sweep: warmup, calibration, `repeat` timed loops per
/// workload. Runs strictly after the trace sink is gone, so calibrated
/// iteration counts can never leak events into the logical stream.
fn wall_sweep(
    workloads: &mut [Workload],
    rows: &[KernelRow],
    opts: &KernelsOpts,
) -> Vec<KernelWallRow> {
    let target_s = opts.target_iter_wall_us as f64 / 1e6;
    let mut out = Vec::with_capacity(workloads.len());
    for (w, row) in workloads.iter_mut().zip(rows) {
        for _ in 0..opts.warmup {
            w.run_once();
        }
        let iters = calibrate::calibrate_iters(&mut *w.run, target_s);
        let samples: Vec<f64> =
            (0..opts.repeat).map(|_| calibrate::time_iters(&mut *w.run, iters)).collect();
        let stats = WallStats::from_samples(&samples);
        let median = stats.median_s;
        out.push(KernelWallRow {
            name: w.name.clone(),
            iters,
            wall_per_iter_s: stats,
            gflops: if median > 0.0 { row.flops as f64 / median / 1e9 } else { 0.0 },
            gbytes_per_s: if median > 0.0 { row.bytes as f64 / median / 1e9 } else { 0.0 },
        });
    }
    out
}

/// Runs the full sweep and assembles the scoreboard artifact plus the
/// logical sweep's event stream (for flamegraph output).
pub fn run_sweep(opts: &KernelsOpts) -> (KernelsArtifact, Vec<Event>) {
    if let Some(n) = opts.threads {
        simpadv_runtime::set_global_threads(n);
    }
    let mut workloads = registry();
    let (rows, events) = logical_sweep(&mut workloads);
    let wall = wall_sweep(&mut workloads, &rows, opts);
    let artifact = KernelsArtifact {
        schema_version: simpadv_obs::KERNELS_SCHEMA_VERSION,
        experiment: simpadv_obs::KERNELS_EXPERIMENT.to_string(),
        workloads: rows,
        events: events.len() as u64,
        trace_digest: logical_digest(&events),
        meta: KernelsMeta {
            threads: opts.threads.unwrap_or(0) as u64,
            threads_available: simpadv_runtime::available_threads() as u64,
            repeat: opts.repeat as u64,
            warmup: opts.warmup,
            target_iter_wall_us: opts.target_iter_wall_us,
            wall,
            note: KernelsArtifact::wall_note(),
        },
    };
    (artifact, events)
}

/// Writes the artifact (atomically) and, when `--flame-dir` was given,
/// the logical sweep's collapsed-stack flamegraphs in wall and flop
/// weights (`kernels_wall.collapsed`, `kernels_flops.collapsed`).
///
/// # Errors
///
/// Returns I/O and trace-reconstruction errors.
pub fn write_outputs(
    opts: &KernelsOpts,
    artifact: &KernelsArtifact,
    events: &[Event],
) -> Result<(), Box<dyn Error>> {
    simpadv_resilience::write_json_atomic(&opts.out, artifact)?;
    let _: KernelsArtifact = crate::verify_artifact(&opts.out)?;
    if let Some(dir) = &opts.flame_dir {
        std::fs::create_dir_all(dir)?;
        let tree = simpadv_obs::build_tree(events)?;
        for (weight, stem) in
            [(FlameWeight::Wall, "kernels_wall"), (FlameWeight::Flops, "kernels_flops")]
        {
            let stacks = simpadv_obs::collapse(&tree, weight);
            let text = simpadv_obs::render_collapsed(&stacks);
            simpadv_resilience::atomic_write(
                &dir.join(format!("{stem}.collapsed")),
                text.as_bytes(),
            )?;
        }
    }
    Ok(())
}

/// Renders the human-facing scoreboard table: logical columns first,
/// wall columns clearly bracketed as meta.
pub fn render_table(artifact: &KernelsArtifact) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>4} {:>4} {:>12} {:>12} | {:>12} {:>9} {:>9}",
        "workload", "group", "fwd", "bwd", "flops", "bytes", "wall/iter(s)", "GFLOP/s", "GB/s"
    );
    for row in &artifact.workloads {
        let wall = artifact.meta.wall.iter().find(|w| w.name == row.name);
        let (wps, gf, gb) = wall
            .map(|w| (w.wall_per_iter_s.median_s, w.gflops, w.gbytes_per_s))
            .unwrap_or((0.0, 0.0, 0.0));
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>4} {:>4} {:>12} {:>12} | {:>12.3e} {:>9.2} {:>9.2}",
            row.name, row.group, row.forward, row.backward, row.flops, row.bytes, wps, gf, gb
        );
    }
    let _ = writeln!(out, "({})", artifact.meta.note);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpadv_tensor::matmul_flops;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn registry_covers_every_kernel_group() {
        let reg = registry();
        for group in ["matmul", "conv", "attack", "serve"] {
            assert!(reg.iter().any(|w| w.group == group), "missing group {group}");
        }
        // names are unique — they key both artifact tables
        let mut names: Vec<&str> = reg.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
    }

    #[test]
    fn opts_parse_scales_and_overrides() {
        assert_eq!(KernelsOpts::from_args(&[]).target_iter_wall_us, 100_000);
        assert_eq!(KernelsOpts::from_args(&argv("--smoke")).target_iter_wall_us, 20_000);
        assert_eq!(KernelsOpts::from_args(&argv("--full")).target_iter_wall_us, 500_000);
        let opts = KernelsOpts::from_args(&argv(
            "--target-us 5000 --threads 2 --repeat 5 --warmup 0 --out k.json --flame-dir fl",
        ));
        assert_eq!(opts.target_iter_wall_us, 5_000);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.repeat, 5);
        assert_eq!(opts.warmup, 0);
        assert_eq!(opts.out, PathBuf::from("k.json"));
        assert_eq!(opts.flame_dir.as_deref(), Some(std::path::Path::new("fl")));
    }

    #[test]
    fn logical_sweep_rows_match_the_shape_formulas() {
        let mut workloads = registry();
        let (rows, events) = logical_sweep(&mut workloads);
        assert_eq!(rows.len(), workloads.len());
        assert!(!events.is_empty());

        let mm = rows.iter().find(|r| r.name.starts_with("matmul/64x784x")).expect("matmul row");
        assert_eq!(mm.flops, matmul_flops(64, 784, 128));
        assert_eq!((mm.forward, mm.backward, mm.attack_steps), (0, 0, 0));

        let step = rows.iter().find(|r| r.group == "attack" && r.name.contains("signed_step"));
        let step = step.expect("signed_step row");
        assert_eq!((step.forward, step.backward, step.attack_steps), (1, 1, 1));
        assert!(step.flops > 0, "the gradient passes tick flops");

        let ball = rows.iter().find(|r| r.name.contains("project_ball")).expect("project_ball row");
        assert_eq!((ball.forward, ball.backward, ball.flops, ball.attack_steps), (0, 0, 0, 0));
        assert_eq!(ball.bytes, simpadv_attacks::project_ball_bytes(16 * 784));

        let serve = rows.iter().find(|r| r.group == "serve").expect("serve row");
        assert_eq!(serve.forward, 1);
        assert_eq!(serve.flops, matmul_flops(16, 784, 128) + matmul_flops(16, 128, 10));
    }

    #[test]
    fn logical_sweep_is_reproducible() {
        // Same rows, same digest, run to run — the property the
        // threads-1-vs-4 CI check rests on.
        let (rows_a, events_a) = logical_sweep(&mut registry());
        let (rows_b, events_b) = logical_sweep(&mut registry());
        assert_eq!(rows_a, rows_b);
        assert_eq!(logical_digest(&events_a), logical_digest(&events_b));
    }

    #[test]
    fn sweep_trace_has_one_span_per_workload() {
        let mut workloads = registry();
        let n = workloads.len();
        let (_, events) = logical_sweep(&mut workloads);
        let tree = simpadv_obs::build_tree(&events).expect("balanced sweep trace");
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "kernels");
        assert_eq!(tree.roots[0].children.len(), n);
        // and it collapses into flamegraph stacks with logical weight
        let stacks = simpadv_obs::collapse(&tree, FlameWeight::Flops);
        assert!(stacks.iter().any(|(s, w)| s.contains("matmul") && *w > 0), "{stacks:?}");
    }

    #[test]
    fn full_run_produces_a_self_consistent_artifact() {
        let opts = KernelsOpts {
            target_iter_wall_us: 200, // keep the test fast
            repeat: 2,
            warmup: 1,
            ..KernelsOpts::default()
        };
        let (artifact, events) = run_sweep(&opts);
        assert_eq!(artifact.schema_version, simpadv_obs::KERNELS_SCHEMA_VERSION);
        assert_eq!(artifact.experiment, simpadv_obs::KERNELS_EXPERIMENT);
        assert_eq!(artifact.events, events.len() as u64);
        assert_eq!(artifact.workloads.len(), artifact.meta.wall.len());
        for wall in &artifact.meta.wall {
            assert!(wall.iters >= 1);
            assert!(wall.wall_per_iter_s.median_s >= 0.0);
        }
        // identity comparison passes the gate cleanly
        let report = simpadv_obs::compare_kernels(
            &artifact,
            &artifact,
            &simpadv_obs::CompareOptions::default(),
        );
        assert!(report.passed(), "{:?}", report.regressions);
        // the table renders every workload and the wall caveat
        let table = render_table(&artifact);
        for row in &artifact.workloads {
            assert!(table.contains(&row.name), "missing {} in:\n{table}", row.name);
        }
        assert!(table.contains(&artifact.meta.note));
    }
}
