//! Wall-clock calibration primitives for the kernel lab.
//!
//! This file is the only place in `crates/bench` that touches
//! `std::time::Instant` directly (see the R10 allow entry in
//! `lint.toml`): auto-scaling iteration counts needs raw elapsed time
//! before any trace sink exists, and the measured numbers flow only
//! into the artifact's `meta` section — never into the logical stream.

use std::time::Instant;

/// Ceiling on calibrated iterations per timed repeat; a kernel fast
/// enough to hit it gets timed in bulk rather than spinning forever.
const MAX_ITERS: u64 = 1 << 24;

/// Seconds per iteration over `iters` back-to-back calls of `f`.
pub(crate) fn time_iters(f: &mut dyn FnMut(), iters: u64) -> f64 {
    let iters = iters.max(1);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Picks an iteration count so one timed repeat of `f` spends roughly
/// `target_s` wall seconds: probes with a doubling loop until the
/// probe itself is long enough to trust (at least 1/50 of the target),
/// then scales. Never returns 0.
pub(crate) fn calibrate_iters(f: &mut dyn FnMut(), target_s: f64) -> u64 {
    let floor = (target_s / 50.0).max(1e-6);
    let mut iters = 1u64;
    loop {
        let per_iter = time_iters(f, iters);
        if per_iter * iters as f64 >= floor || iters >= MAX_ITERS {
            return ((target_s / per_iter.max(1e-9)).ceil() as u64).clamp(1, MAX_ITERS);
        }
        iters = iters.saturating_mul(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_a_noop_is_fast_and_finite() {
        let mut noop = || {};
        let per_iter = time_iters(&mut noop, 100);
        assert!(per_iter.is_finite() && per_iter >= 0.0);
    }

    #[test]
    fn calibration_scales_iters_to_the_budget() {
        // A ~50µs kernel against a 5ms budget needs on the order of
        // 100 iterations — grant slack for scheduler noise, but the
        // count must be neither 1 nor the ceiling.
        let mut spin = || {
            let mut acc = 0u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            assert!(acc > 0);
        };
        let iters = calibrate_iters(&mut spin, 5e-3);
        assert!(iters > 1, "budget should require several iterations, got {iters}");
        assert!(iters < MAX_ITERS);
    }

    #[test]
    fn calibration_never_returns_zero() {
        // A closure far slower than the 1ns budget: even one iteration
        // overshoots the target, so the count must clamp to 1.
        let mut slow = || {
            let mut acc = 0u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_add(i ^ (i << 7));
            }
            assert!(acc > 0);
        };
        assert_eq!(calibrate_iters(&mut slow, 1e-9), 1);
    }
}
