//! Regenerates the ablation study of the proposed method's two knobs
//! (per-epoch step size, reset period) — the design-choice analysis
//! DESIGN.md lists beyond the paper's own exhibits.

use simpadv::experiments::ablation::{self, AblationResult};
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn accuracies(result: &AblationResult) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (sweep, rows) in [("step", &result.step_sweep), ("reset", &result.reset_sweep)] {
        for row in rows {
            out.push((format!("{sweep}/{}/clean", row.variant), f64::from(row.clean)));
            out.push((format!("{sweep}/{}/robust", row.variant), f64::from(row.robust)));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("ablation at scale {scale:?}");
    let (result, baseline_path) = run_with_baseline(&opts, "ablation", accuracies, || {
        ablation::run(SynthDataset::Mnist, &scale)
    })?;
    println!("{result}");
    match write_artifact("ablation.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
