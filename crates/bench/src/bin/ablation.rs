//! Regenerates the ablation study of the proposed method's two knobs
//! (per-epoch step size, reset period) — the design-choice analysis
//! DESIGN.md lists beyond the paper's own exhibits.

use simpadv::experiments::ablation;
use simpadv_bench::{write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("ablation at scale {scale:?}");
    let result = ablation::run(SynthDataset::Mnist, &scale);
    println!("{result}");
    match write_artifact("ablation.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    opts.finish();
}
