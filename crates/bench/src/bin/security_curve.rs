//! Regenerates the security-curve extension: accuracy vs BIM(10) budget
//! for Vanilla / FGSM-Adv / Proposed / BIM(10)-Adv.

use simpadv::experiments::security_curve;
use simpadv_bench::{write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("security curves at scale {scale:?}");
    let result = security_curve::run(SynthDataset::Mnist, &scale);
    println!("{result}");
    let labels: Vec<String> = result.epsilons.iter().map(|e| format!("{e:.2}")).collect();
    println!("{}", simpadv::chart::render_accuracy_chart(&labels, &result.series));
    match write_artifact("security_curve.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    opts.finish();
}
