//! Regenerates the security-curve extension: accuracy vs BIM(10) budget
//! for Vanilla / FGSM-Adv / Proposed / BIM(10)-Adv.

use simpadv::experiments::security_curve::{self, SecurityCurveResult};
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn accuracies(result: &SecurityCurveResult) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (series, values) in &result.series {
        for (i, acc) in values.iter().enumerate() {
            out.push((format!("{series}/eps{i}"), f64::from(*acc)));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("security curves at scale {scale:?}");
    let (result, baseline_path) = run_with_baseline(&opts, "security_curve", accuracies, || {
        security_curve::run(SynthDataset::Mnist, &scale)
    })?;
    println!("{result}");
    let labels: Vec<String> = result.epsilons.iter().map(|e| format!("{e:.2}")).collect();
    println!("{}", simpadv::chart::render_accuracy_chart(&labels, &result.series));
    match write_artifact("security_curve.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
