//! Gradient-masking audit of the proposed defense (and, for contrast, a
//! vanilla model) — the executable version of the paper's claim that
//! adversarial training does not rely on obfuscated gradients.

use simpadv::train::{ProposedTrainer, Trainer, VanillaTrainer};
use simpadv::{audit_masking, ModelSpec};
use simpadv_bench::{write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    let dataset = SynthDataset::Mnist;
    let (train, test) = scale.load(dataset);
    let eps = dataset.paper_epsilon();
    let config = scale.train_config();

    eprintln!("training vanilla + proposed for the audit ({scale:?})");
    let mut vanilla = ModelSpec::default_mlp().build(scale.seed);
    VanillaTrainer::new().train(&mut vanilla, &train, &config);
    let mut proposed = ModelSpec::default_mlp().build(scale.seed);
    ProposedTrainer::paper_defaults(eps).train(&mut proposed, &train, &config);

    let mut reports = Vec::new();
    for (name, clf) in [("vanilla", &mut vanilla), ("proposed", &mut proposed)] {
        let report = audit_masking(clf, &test, eps, scale.seed);
        println!("== {name} ==\n{report}");
        reports.push((name.to_string(), report));
    }
    match write_artifact("audit.json", &reports) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    opts.finish();
}
