//! Gradient-masking audit of the proposed defense (and, for contrast, a
//! vanilla model) — the executable version of the paper's claim that
//! adversarial training does not rely on obfuscated gradients.

use simpadv::train::{ProposedTrainer, Trainer, VanillaTrainer};
use simpadv::{audit_masking, MaskingReport, ModelSpec};
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn accuracies(reports: &[(String, MaskingReport)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (model, report) in reports {
        for check in &report.checks {
            out.push((format!("{model}/{}", check.name), f64::from(u8::from(check.passed))));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    let dataset = SynthDataset::Mnist;
    let eps = dataset.paper_epsilon();

    eprintln!("training vanilla + proposed for the audit ({scale:?})");
    let (reports, baseline_path) = run_with_baseline(
        &opts,
        "audit",
        |r: &Vec<(String, MaskingReport)>| accuracies(r),
        || {
            let (train, test) = scale.load(dataset);
            let config = scale.train_config();
            let mut vanilla = ModelSpec::default_mlp().build(scale.seed);
            VanillaTrainer::new().train(&mut vanilla, &train, &config);
            let mut proposed = ModelSpec::default_mlp().build(scale.seed);
            ProposedTrainer::paper_defaults(eps).train(&mut proposed, &train, &config);
            [("vanilla", &mut vanilla), ("proposed", &mut proposed)]
                .map(|(name, clf)| (name.to_string(), audit_masking(clf, &test, eps, scale.seed)))
                .into_iter()
                .collect::<Vec<_>>()
        },
    )?;
    for (name, report) in &reports {
        println!("== {name} ==\n{report}");
    }
    match write_artifact("audit.json", &reports) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
