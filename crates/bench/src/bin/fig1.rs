//! Regenerates Figure 1: test accuracy vs BIM iteration count, for the
//! four probe classifiers on both synthetic datasets.

use simpadv::experiments::fig1::{self, Fig1Result};
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn accuracies(results: &[Fig1Result]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for result in results {
        for (series, values) in &result.series {
            for (iters, acc) in result.iterations.iter().zip(values) {
                out.push((format!("{}/{series}/iter{iters}", result.dataset), f64::from(*acc)));
            }
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("figure 1 at scale {scale:?}");
    let (artifacts, baseline_path) = run_with_baseline(
        &opts,
        "fig1",
        |r: &Vec<Fig1Result>| accuracies(r),
        || {
            [SynthDataset::Mnist, SynthDataset::Fashion]
                .into_iter()
                .map(|dataset| fig1::run(dataset, &scale))
                .collect::<Vec<_>>()
        },
    )?;
    for result in &artifacts {
        println!("{result}");
        let labels: Vec<String> = result.iterations.iter().map(|n| n.to_string()).collect();
        println!("{}", simpadv::chart::render_accuracy_chart(&labels, &result.series));
    }
    match write_artifact("fig1.json", &artifacts) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
