//! Regenerates the convergence-dynamics extension: BIM(10) robustness vs
//! training epochs for FGSM-Adv, the proposed method and BIM(10)-Adv.

use simpadv::experiments::convergence::{self, ConvergenceResult};
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn accuracies(result: &ConvergenceResult) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (series, values) in &result.series {
        for (epochs, acc) in result.epochs.iter().zip(values) {
            out.push((format!("{series}/epochs{epochs}"), f64::from(*acc)));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    // epoch grid scaled to the configured budget
    let max = scale.epochs;
    let grid: Vec<usize> = [1, 2, 4, 8].iter().map(|f| (max * f / 8).max(1)).collect();
    eprintln!("convergence at scale {scale:?}, epoch grid {grid:?}");
    let (result, baseline_path) = run_with_baseline(&opts, "convergence", accuracies, || {
        convergence::run(SynthDataset::Mnist, &scale, &grid)
    })?;
    println!("{result}");
    let labels: Vec<String> = result.epochs.iter().map(|e| e.to_string()).collect();
    println!("{}", simpadv::chart::render_accuracy_chart(&labels, &result.series));
    match write_artifact("convergence.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
