//! Regenerates Table I: accuracy of all five defensive methods on
//! Original / FGSM / BIM(10) / BIM(30) inputs for both datasets, plus
//! training cost per epoch.

use simpadv::experiments::table1;
use simpadv_bench::{write_artifact, BenchOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("table 1 at scale {scale:?}");
    let result = table1::run(&scale);
    println!("{result}");
    match write_artifact("table1.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    opts.finish();
}
