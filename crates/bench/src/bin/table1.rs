//! Regenerates Table I: accuracy of all five defensive methods on
//! Original / FGSM / BIM(10) / BIM(30) inputs for both datasets, plus
//! training cost per epoch.

use simpadv::experiments::table1;
use simpadv_bench::{apply_threads, scale_from_args, write_artifact};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, threads) = scale_from_args(&args);
    apply_threads(threads);
    eprintln!("table 1 at scale {scale:?}");
    let result = table1::run(&scale);
    println!("{result}");
    match write_artifact("table1.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}
