//! Regenerates Table I: accuracy of all five defensive methods on
//! Original / FGSM / BIM(10) / BIM(30) inputs for both datasets, plus
//! training cost per epoch.

use simpadv::experiments::table1::{self, Table1Result};
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};

fn accuracies(result: &Table1Result) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for row in &result.rows {
        for (ds, eval) in &row.evals {
            for (col, acc) in eval.columns.iter().zip(&eval.accuracies) {
                out.push((format!("{ds}/{}/{col}", row.method), f64::from(*acc)));
            }
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("table 1 at scale {scale:?}");
    let (result, baseline_path) =
        run_with_baseline(&opts, "table1", accuracies, || table1::run(&scale))?;
    println!("{result}");
    match write_artifact("table1.json", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
