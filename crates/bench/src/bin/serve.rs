//! `bench serve`: closed-loop load generator for the inference server.
//!
//! Starts an in-process [`simpadv_serve::Server`] over a checkpoint
//! directory, then drives it with N closed-loop clients (each keeps
//! exactly one request in flight) mixing clean and adversarially
//! perturbed traffic at a configurable fraction. Every answered request
//! is checked bitwise against offline single-input inference on the same
//! generation — the serving path must not change a single logit bit.
//!
//! Emits `BENCH_serve.json` (schema v1): per-generation
//! clean-vs-adversarial accuracy counters in the logical section,
//! latency percentiles / throughput / batch occupancy quarantined in
//! `meta` (see `simpadv_obs::serve`).

use simpadv_attacks::{parallel::craft_parallel, Attack, Bim, Pgd};
use simpadv_data::{SynthConfig, SynthDataset, CLASS_COUNT};
use simpadv_nn::GradientModel;
use simpadv_obs::{
    ServeArtifact, ServeGenerationRow, ServeMeta, ServeScale, SERVE_EXPERIMENT,
    SERVE_SCHEMA_VERSION,
};
use simpadv_runtime::{split_seed, Runtime};
use simpadv_serve::{
    client, load_latest_servable, BatchConfig, PredictRequest, ServeConfig, Server,
};
use simpadv_trace::clock::WallTimer;

/// Parsed command line of the load generator.
struct ServeBenchOpts {
    model_dir: std::path::PathBuf,
    requests: usize,
    clients: usize,
    adv_permille: u64,
    attack: String,
    samples: usize,
    dataset: SynthDataset,
    batch_max: usize,
    batch_timeout_us: u64,
    queue_cap: Option<usize>,
    threads: Option<usize>,
    trace: Option<std::path::PathBuf>,
    seed: u64,
    out: std::path::PathBuf,
}

const USAGE: &str = "usage: serve --model-dir DIR [--requests N] [--clients N] \
[--adv-fraction F] [--attack pgd|bim] [--samples N] [--dataset mnist|fashion] \
[--batch-max N] [--batch-timeout-us N] [--queue-cap N] [--threads N] [--trace FILE] \
[--seed N] [--out FILE]";

fn next_usize(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
    match it.next().map(|v| v.parse::<usize>()) {
        Some(Ok(n)) => Ok(n),
        _ => Err(format!("{flag} needs a non-negative integer value")),
    }
}

fn parse_args(args: &[String]) -> Result<ServeBenchOpts, String> {
    let mut opts = ServeBenchOpts {
        model_dir: std::path::PathBuf::new(),
        requests: 200,
        clients: 4,
        adv_permille: 100,
        attack: "pgd".to_string(),
        samples: 64,
        dataset: SynthDataset::Mnist,
        batch_max: 16,
        batch_timeout_us: 500,
        queue_cap: None,
        threads: None,
        trace: None,
        seed: 2019,
        out: std::path::PathBuf::from("BENCH_serve.json"),
    };
    let mut have_dir = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model-dir" => match it.next() {
                Some(dir) => {
                    opts.model_dir = std::path::PathBuf::from(dir);
                    have_dir = true;
                }
                None => return Err(USAGE.to_string()),
            },
            "--requests" => opts.requests = next_usize(&mut it, "--requests")?,
            "--clients" => opts.clients = next_usize(&mut it, "--clients")?,
            "--adv-fraction" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(f)) if (0.0..=1.0).contains(&f) => {
                    opts.adv_permille = (f * 1000.0).round() as u64;
                }
                _ => return Err("--adv-fraction needs a value in [0, 1]".to_string()),
            },
            "--attack" => match it.next().map(String::as_str) {
                Some(name @ ("pgd" | "bim")) => opts.attack = name.to_string(),
                _ => return Err("--attack needs pgd or bim".to_string()),
            },
            "--samples" => opts.samples = next_usize(&mut it, "--samples")?,
            "--dataset" => match it.next().map(String::as_str) {
                Some("mnist") => opts.dataset = SynthDataset::Mnist,
                Some("fashion") => opts.dataset = SynthDataset::Fashion,
                _ => return Err("--dataset needs mnist or fashion".to_string()),
            },
            "--batch-max" => opts.batch_max = next_usize(&mut it, "--batch-max")?,
            "--batch-timeout-us" => {
                opts.batch_timeout_us = next_usize(&mut it, "--batch-timeout-us")? as u64
            }
            "--queue-cap" => opts.queue_cap = Some(next_usize(&mut it, "--queue-cap")?),
            "--threads" => opts.threads = Some(next_usize(&mut it, "--threads")?),
            "--trace" => match it.next() {
                Some(path) => opts.trace = Some(std::path::PathBuf::from(path)),
                None => return Err(USAGE.to_string()),
            },
            "--seed" => opts.seed = next_usize(&mut it, "--seed")? as u64,
            "--out" => match it.next() {
                Some(path) => opts.out = std::path::PathBuf::from(path),
                None => return Err(USAGE.to_string()),
            },
            _ => return Err(USAGE.to_string()),
        }
    }
    if !have_dir {
        return Err(format!(
            "--model-dir is required (a checkpoint directory with at least one generation)\n{USAGE}"
        ));
    }
    if opts.requests == 0 || opts.clients == 0 || opts.samples == 0 || opts.batch_max == 0 {
        return Err("--requests, --clients, --samples and --batch-max must be positive".to_string());
    }
    Ok(opts)
}

/// Deterministic adversarial schedule: request `i` is adversarial iff
/// the cumulative adversarial quota increases at `i`, which spreads the
/// fraction evenly over the run instead of front-loading it.
fn is_adversarial(i: usize, permille: u64) -> bool {
    let i = i as u64;
    ((i + 1) * permille) / 1000 > (i * permille) / 1000
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Some(n) = opts.threads {
        simpadv_runtime::set_global_threads(n);
    }
    if let Some(path) = &opts.trace {
        if let Err(e) = simpadv_trace::install_file(path, simpadv_trace::TraceFormat::Jsonl) {
            eprintln!("cannot open trace file {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    // Offline reference: the same generation the server will serve.
    let store = match simpadv_resilience::CheckpointStore::open(&opts.model_dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("cannot open {}: {e}", opts.model_dir.display());
            std::process::exit(1);
        }
    };
    let (generation, served_model) = match load_latest_servable(&store) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("no servable model in {}: {e}", opts.model_dir.display());
            std::process::exit(1);
        }
    };
    let mut offline = match served_model.restore() {
        Ok(clf) => clf,
        Err(e) => {
            eprintln!("cannot restore model: {e}");
            std::process::exit(1);
        }
    };

    // Request pool: `samples` clean inputs plus their perturbed twins,
    // crafted once up front against the serving generation.
    let pool = opts.dataset.generate(&SynthConfig::new(opts.samples, opts.seed));
    let labels = pool.labels().to_vec();
    let eps = opts.dataset.paper_epsilon();
    let seed = opts.seed;
    let make_attack: Box<dyn Fn(usize) -> Box<dyn Attack> + Sync> = match opts.attack.as_str() {
        "bim" => Box::new(move |_| Box::new(Bim::new(eps, 4))),
        _ => Box::new(move |first| Box::new(Pgd::new(eps, 4, split_seed(seed, first as u64)))),
    };
    let rt = Runtime::global();
    let adv_pool = craft_parallel(&rt, &offline, make_attack.as_ref(), pool.images(), &labels);

    // Offline single-input expectations, one batched forward per pool;
    // row-independent kernels make this bitwise equal to row-at-a-time.
    let clean_logits = offline.logits(pool.images()).into_vec();
    let adv_logits = offline.logits(&adv_pool).into_vec();

    let mut cfg = ServeConfig::for_dir(&opts.model_dir);
    cfg.batch = BatchConfig {
        batch_max: opts.batch_max,
        batch_timeout_us: opts.batch_timeout_us,
        queue_cap: opts.queue_cap.unwrap_or_else(|| opts.clients.max(64)),
    };
    let queue_cap = cfg.batch.queue_cap;
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    if let Err(e) = client::wait_ready(&addr, 10_000_000) {
        eprintln!("{e}");
        std::process::exit(1);
    }

    // Closed loop: client c owns requests i with i % clients == c and
    // keeps exactly one in flight, so offered load adapts to capacity.
    let client_ids: Vec<usize> = (0..opts.clients).collect();
    let permille = opts.adv_permille;
    let requests = opts.requests;
    let clients = opts.clients;
    let samples = opts.samples;
    let clean_pixels = pool.images().as_slice();
    let adv_pixels = adv_pool.as_slice();
    let pixel_len = pool.images().shape()[1];
    let loop_rt = Runtime::new(opts.clients);
    let wall = WallTimer::start();
    let per_client: Vec<(u64, u64, u64)> = loop_rt.par_map(&client_ids, |&c| {
        let mut answered = 0u64;
        let mut rejected = 0u64;
        let mut mismatches = 0u64;
        let mut i = c;
        while i < requests {
            let adversarial = is_adversarial(i, permille);
            let sample = i % samples;
            let src = if adversarial { adv_pixels } else { clean_pixels };
            let expected = if adversarial { &adv_logits } else { &clean_logits };
            let request = PredictRequest {
                pixels: src[sample * pixel_len..(sample + 1) * pixel_len].to_vec(),
                label: Some(labels[sample]),
                adversarial,
            };
            match client::predict(&addr, &request) {
                Ok(client::PredictOutcome::Predicted(resp)) => {
                    answered += 1;
                    let want = &expected[sample * CLASS_COUNT..(sample + 1) * CLASS_COUNT];
                    let exact = resp.generation == generation
                        && resp.logits.len() == want.len()
                        && resp.logits.iter().zip(want).all(|(a, b)| a.to_bits() == b.to_bits());
                    if !exact {
                        mismatches += 1;
                    }
                }
                Ok(client::PredictOutcome::Rejected(_)) => rejected += 1,
                Err(e) => {
                    eprintln!("client {c}: request {i} failed: {e}");
                    mismatches += 1;
                }
            }
            i += clients;
        }
        (answered, rejected, mismatches)
    });
    let wall_total_s = wall.elapsed_seconds();
    let snapshot = server.shutdown();

    let answered: u64 = per_client.iter().map(|r| r.0).sum();
    let client_rejected: u64 = per_client.iter().map(|r| r.1).sum();
    let mismatches: u64 = per_client.iter().map(|r| r.2).sum();

    let artifact = ServeArtifact {
        schema_version: SERVE_SCHEMA_VERSION,
        experiment: SERVE_EXPERIMENT.to_string(),
        scale: ServeScale {
            requests: opts.requests as u64,
            clients: opts.clients as u64,
            samples: opts.samples as u64,
            adv_permille: opts.adv_permille,
            attack: opts.attack.clone(),
            batch_max: opts.batch_max as u64,
            queue_cap: queue_cap as u64,
            seed: opts.seed,
        },
        served: snapshot.served,
        skipped_generations: snapshot.skipped_generations,
        generations: snapshot
            .generations
            .iter()
            .map(|g| ServeGenerationRow {
                generation: g.generation,
                traffic: g.traffic.clone(),
                requests: g.requests,
                labeled: g.labeled,
                correct: g.correct,
            })
            .collect(),
        meta: ServeMeta {
            threads: rt.threads() as u64,
            wall_total_s,
            throughput_rps: if wall_total_s > 0.0 {
                snapshot.served as f64 / wall_total_s
            } else {
                0.0
            },
            latency_p50_us: snapshot.latency_us.p50_us,
            latency_p90_us: snapshot.latency_us.p90_us,
            latency_p99_us: snapshot.latency_us.p99_us,
            latency_max_us: snapshot.latency_us.max_us,
            batch_occupancy_mean: snapshot.batch_occupancy.mean,
            batch_occupancy_max: snapshot.batch_occupancy.max,
            rejected: snapshot.rejected,
            note: ServeArtifact::wall_note(),
        },
    };
    if let Err(e) = simpadv_resilience::write_json_atomic(&opts.out, &artifact) {
        eprintln!("cannot write {}: {e}", opts.out.display());
        std::process::exit(1);
    }
    if let Err(e) = simpadv_bench::verify_artifact::<ServeArtifact>(&opts.out) {
        eprintln!("{e}");
        std::process::exit(1);
    }

    println!(
        "serve bench: generation {generation}, {} served / {} rejected, \
         {:.1} rps, p50 {} us, p99 {} us, mean batch {:.2}",
        snapshot.served,
        snapshot.rejected.max(client_rejected),
        artifact.meta.throughput_rps,
        artifact.meta.latency_p50_us,
        artifact.meta.latency_p99_us,
        artifact.meta.batch_occupancy_mean,
    );
    for row in &artifact.generations {
        println!(
            "  gen {} {:<11} {:>5} requests, accuracy {}/{}",
            row.generation, row.traffic, row.requests, row.correct, row.labeled
        );
    }
    println!("artifact: {}", opts.out.display());

    if opts.trace.is_some() {
        simpadv_trace::uninstall();
    }
    if mismatches > 0 {
        eprintln!("{mismatches} responses deviated bitwise from offline inference");
        std::process::exit(1);
    }
    if snapshot.served == 0 || answered == 0 {
        eprintln!("no requests were served");
        std::process::exit(1);
    }
}
