//! Regenerates Figure 2: test accuracy after each intermediate BIM
//! iterate, for the four probe classifiers on both synthetic datasets.

use simpadv::experiments::fig2;
use simpadv_bench::{write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("figure 2 at scale {scale:?}");
    let mut artifacts = Vec::new();
    for dataset in [SynthDataset::Mnist, SynthDataset::Fashion] {
        let result = fig2::run(dataset, &scale);
        println!("{result}");
        let labels: Vec<String> = (1..=fig2::ATTACK_ITERATIONS).map(|n| n.to_string()).collect();
        println!("{}", simpadv::chart::render_accuracy_chart(&labels, &result.series));
        artifacts.push(result);
    }
    match write_artifact("fig2.json", &artifacts) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    opts.finish();
}
