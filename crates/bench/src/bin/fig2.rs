//! Regenerates Figure 2: test accuracy after each intermediate BIM
//! iterate, for the four probe classifiers on both synthetic datasets.

use simpadv::experiments::fig2::{self, Fig2Result};
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};
use simpadv_data::SynthDataset;

fn accuracies(results: &[Fig2Result]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for result in results {
        for (series, values) in &result.series {
            for (i, acc) in values.iter().enumerate() {
                out.push((format!("{}/{series}/step{}", result.dataset, i + 1), f64::from(*acc)));
            }
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply();
    let scale = opts.scale;
    eprintln!("figure 2 at scale {scale:?}");
    let (artifacts, baseline_path) = run_with_baseline(
        &opts,
        "fig2",
        |r: &Vec<Fig2Result>| accuracies(r),
        || {
            [SynthDataset::Mnist, SynthDataset::Fashion]
                .into_iter()
                .map(|dataset| fig2::run(dataset, &scale))
                .collect::<Vec<_>>()
        },
    )?;
    for result in &artifacts {
        println!("{result}");
        let labels: Vec<String> = (1..=fig2::ATTACK_ITERATIONS).map(|n| n.to_string()).collect();
        println!("{}", simpadv::chart::render_accuracy_chart(&labels, &result.series));
    }
    match write_artifact("fig2.json", &artifacts) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
