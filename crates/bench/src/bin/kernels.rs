//! `bench kernels`: the kernel microbenchmark lab.
//!
//! Sweeps every registered hot kernel at real experiment shapes, prints
//! the scoreboard, and writes `BENCH_kernels.json` (plus optional
//! flamegraphs). See `simpadv_bench::kernels` for the registry and the
//! logical/wall split.
//!
//! ```text
//! cargo run --release -p simpadv-bench --bin kernels -- --smoke
//! cargo run --release -p simpadv-bench --bin kernels -- \
//!     --full --repeat 5 --flame-dir results/flame
//! ```

use simpadv_bench::kernels::{run_sweep, write_outputs, KernelsOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = KernelsOpts::from_args(&args);
    let (artifact, events) = run_sweep(&opts);
    print!("{}", simpadv_bench::kernels::render_table(&artifact));
    if let Err(e) = write_outputs(&opts, &artifact, &events) {
        eprintln!("cannot write kernel scoreboard: {e}");
        std::process::exit(1);
    }
    println!("wrote {}", opts.out.display());
    if let Some(dir) = &opts.flame_dir {
        println!("wrote flamegraphs under {}", dir.display());
    }
}
