//! Measures how the deterministic runtime scales: matmul, attack
//! crafting, and training-epoch throughput at 1, 2, 4, and all-core
//! thread counts, cross-checking that every thread count produces
//! bitwise-identical numerics. Writes `results/runtime_scaling.json`.

use serde::Serialize;
use simpadv::experiments::ExperimentScale;
use simpadv::train::{ProposedTrainer, Trainer};
use simpadv::{ModelSpec, TrainConfig};
use simpadv_attacks::parallel::craft_parallel;
use simpadv_attacks::Bim;
use simpadv_bench::{baseline::run_with_baseline, write_artifact, BenchOpts};
use simpadv_data::SynthDataset;
use simpadv_nn::Classifier;
use simpadv_runtime::{available_threads, set_global_threads, Runtime};
use simpadv_tensor::Tensor;
use simpadv_trace::clock::WallTimer;

/// Epochs per timed training run (each run re-trains from the same seed).
const TIMED_EPOCHS: usize = 3;
/// Matmul timing repetitions.
const MATMUL_REPS: usize = 5;

#[derive(Debug, Serialize)]
struct ScalingPoint {
    threads: usize,
    matmul_gmacs_per_s: f64,
    attack_examples_per_s: f64,
    epochs_per_s: f64,
    epoch_speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct ScalingReport {
    train_samples: usize,
    test_samples: usize,
    timed_epochs: usize,
    available_threads: usize,
    bitwise_identical: bool,
    points: Vec<ScalingPoint>,
}

/// One timed training run; returns (epochs/s, final-loss bits).
fn time_training(scale: &ExperimentScale, data: &simpadv_data::Dataset) -> (f64, u32) {
    let mut clf = ModelSpec::default_mlp().build(scale.seed);
    let config = TrainConfig::new(TIMED_EPOCHS, scale.seed).with_lr_decay(0.97);
    let report = ProposedTrainer::paper_defaults(0.3).train(&mut clf, data, &config);
    (1.0 / report.mean_epoch_seconds().max(1e-9), report.final_loss().to_bits())
}

/// Times BIM(10) batch crafting; returns (examples/s, output checksum bits).
fn time_crafting(model: &Classifier, x: &Tensor, y: &[usize]) -> (f64, u64) {
    let rt = Runtime::global();
    let start = WallTimer::start();
    let adv = craft_parallel(&rt, model, &|_| Box::new(Bim::new(0.3, 10)), x, y);
    let rate = y.len() as f64 / start.elapsed_seconds().max(1e-9);
    let checksum =
        adv.as_slice().iter().fold(0u64, |h, v| h.rotate_left(5) ^ u64::from(v.to_bits()));
    (rate, checksum)
}

/// Times a row-parallel matmul; returns giga-MACs per second.
fn time_matmul() -> f64 {
    let a = Tensor::full(&[512, 784], 0.5);
    let b = Tensor::full(&[784, 256], 0.25);
    let macs = (512 * 784 * 256 * MATMUL_REPS) as f64;
    let start = WallTimer::start();
    for _ in 0..MATMUL_REPS {
        let c = a.matmul(&b);
        std::hint::black_box(&c);
    }
    macs / start.elapsed_seconds().max(1e-9) / 1e9
}

fn measure(scale: &ExperimentScale, threads_override: Option<usize>) -> ScalingReport {
    let (train, test) = scale.load(SynthDataset::Mnist);
    let craft_model = ModelSpec::default_mlp().build(scale.seed);
    let craft_x = test.images().clone();
    let craft_y = test.labels().to_vec();

    let all = available_threads();
    let mut counts: Vec<usize> = vec![1, 2, 4, all];
    if let Some(n) = threads_override {
        counts.push(n);
    }
    counts.sort_unstable();
    counts.dedup();

    let mut points = Vec::new();
    let mut loss_bits = Vec::new();
    let mut craft_bits = Vec::new();
    let mut serial_epochs_per_s = 0.0f64;
    for &threads in &counts {
        set_global_threads(threads);
        let gmacs = time_matmul();
        let (craft_rate, checksum) = time_crafting(&craft_model, &craft_x, &craft_y);
        let (epochs_per_s, bits) = time_training(scale, &train);
        if threads == 1 {
            serial_epochs_per_s = epochs_per_s;
        }
        loss_bits.push(bits);
        craft_bits.push(checksum);
        let speedup = epochs_per_s / serial_epochs_per_s.max(1e-12);
        println!(
            "threads {threads:>2}: matmul {gmacs:7.2} GMAC/s | craft {craft_rate:8.1} ex/s \
             | train {epochs_per_s:6.3} epochs/s ({speedup:4.2}x vs serial)"
        );
        points.push(ScalingPoint {
            threads,
            matmul_gmacs_per_s: gmacs,
            attack_examples_per_s: craft_rate,
            epochs_per_s,
            epoch_speedup_vs_serial: speedup,
        });
    }
    set_global_threads(1);

    let bitwise_identical = loss_bits.iter().all(|&b| b == loss_bits[0])
        && craft_bits.iter().all(|&b| b == craft_bits[0]);
    println!(
        "numerics across thread counts: {}",
        if bitwise_identical { "bitwise identical" } else { "MISMATCH" }
    );
    assert!(bitwise_identical, "thread counts disagreed — determinism contract broken");

    ScalingReport {
        train_samples: scale.train_samples,
        test_samples: scale.test_samples,
        timed_epochs: TIMED_EPOCHS,
        available_threads: all,
        bitwise_identical,
        points,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = BenchOpts::from_args(&args);
    opts.apply(); // thread count is re-set per measured point below
    let scale = opts.scale;
    let threads_override = opts.threads;
    eprintln!("runtime scaling at scale {scale:?}");

    // This bin measures wall throughput, not accuracies: the baseline
    // artifact carries the trace counters and wall stats only.
    let (report, baseline_path) = run_with_baseline(
        &opts,
        "runtime_scaling",
        |_| Vec::new(),
        || measure(&scale, threads_override),
    )?;
    match write_artifact("runtime_scaling.json", &report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("artifact write failed: {e}"),
    }
    if let Some(path) = baseline_path {
        eprintln!("wrote baseline {}", path.display());
    }
    opts.finish();
    Ok(())
}
