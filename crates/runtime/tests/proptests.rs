//! Property-based tests for the determinism contract: every `par_*`
//! entry point equals its serial counterpart, bitwise, for arbitrary
//! input lengths (including 0 and lengths below the thread count).

use proptest::prelude::*;
use simpadv_runtime::{split_seed, Runtime};

proptest! {
    #[test]
    fn par_map_equals_serial_map(
        items in prop::collection::vec(-1_000_000i64..1_000_000, 0..200),
        threads in 1usize..9,
    ) {
        let rt = Runtime::new(threads);
        let serial: Vec<i64> = items.iter().map(|x| x.wrapping_mul(31).wrapping_add(7)).collect();
        let parallel = rt.par_map(&items, |x| x.wrapping_mul(31).wrapping_add(7));
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn par_map_float_results_are_bitwise_equal(
        items in prop::collection::vec(-1.0e3f32..1.0e3, 0..150),
        threads in 1usize..9,
    ) {
        let rt = Runtime::new(threads);
        let serial: Vec<u32> = items.iter().map(|x| (x.sin() * x.exp()).to_bits()).collect();
        let parallel: Vec<u32> = rt.par_map(&items, |x| (x.sin() * x.exp()).to_bits());
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn par_chunks_equals_serial_chunking(
        len in 0usize..500,
        chunk in 1usize..40,
        threads in 1usize..9,
    ) {
        let data: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).cos()).collect();
        let serial: Vec<f32> = data.chunks(chunk).map(|c| c.iter().sum()).collect();
        let parallel = Runtime::new(threads)
            .par_chunks(len, chunk, |r| data[r].iter().sum::<f32>());
        let serial_bits: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
        let parallel_bits: Vec<u32> = parallel.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(parallel_bits, serial_bits);
    }

    #[test]
    fn chunk_partition_is_thread_count_invariant(
        len in 0usize..300,
        chunk in 1usize..32,
        ta in 1usize..9,
        tb in 1usize..9,
    ) {
        let a = Runtime::new(ta).par_chunks(len, chunk, |r| r);
        let b = Runtime::new(tb).par_chunks(len, chunk, |r| r);
        prop_assert_eq!(&a, &b);
        // the ranges tile 0..len exactly
        let mut cursor = 0usize;
        for r in &a {
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end > r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, len);
    }

    #[test]
    fn try_par_map_error_choice_is_deterministic(
        len in 1usize..120,
        fail_a in 0usize..120,
        fail_b in 0usize..120,
        threads in 1usize..9,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let expected = items
            .iter()
            .copied()
            .map(|i| if i == fail_a || i == fail_b { Err(i) } else { Ok(i) })
            .collect::<Result<Vec<_>, _>>();
        let got = Runtime::new(threads)
            .par_map(&items, |&i| if i == fail_a || i == fail_b { Err(i) } else { Ok(i) })
            .into_iter()
            .collect::<Result<Vec<_>, _>>();
        prop_assert_eq!(got.clone(), expected.clone());
        let via_try = Runtime::new(threads)
            .try_par_map(&items, |&i| if i == fail_a || i == fail_b { Err(i) } else { Ok(i) });
        prop_assert_eq!(via_try, expected);
    }

    #[test]
    fn split_seed_is_injective_on_small_streams(base in 0u64..u64::MAX) {
        let seeds: Vec<u64> = (0..64).map(|s| split_seed(base, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len());
    }
}
