//! # simpadv-runtime
//!
//! Deterministic data-parallel execution substrate for the `simpadv`
//! workspace.
//!
//! The workspace's reproducibility invariant (R5 in the lint catalogue)
//! promises that a fixed seed produces bitwise-identical experiment
//! outputs. Naive parallelism breaks that promise in two ways: work gets
//! partitioned differently depending on how many workers exist, and
//! floating-point reductions happen in whatever order threads finish.
//! This crate rules both out by contract:
//!
//! 1. **Fixed chunking** — how a job is split into tasks depends only on
//!    the job itself (input length and an explicit chunk size), never on
//!    the thread count. Threads *claim* tasks dynamically, but the tasks
//!    themselves are identical for 1..N threads.
//! 2. **Ordered reduction** — task results are merged in task-index
//!    order, regardless of completion order. A floating-point
//!    accumulation over chunk results therefore runs in the same order
//!    as the serial loop over the same chunks.
//! 3. **RNG stream splitting** — stochastic per-task work derives an
//!    independent seed with [`split_seed`] keyed by a *stable* task
//!    identity (e.g. the first example index of a chunk), so streams do
//!    not depend on which thread runs the task.
//!
//! Consequently every `par_*` entry point returns results bitwise equal
//! to its serial counterpart, for any thread count.
//!
//! This is also the only crate in the workspace allowed to touch
//! `std::thread` (lint rule R7): all other crates express parallelism
//! through a [`Runtime`] handle, obtained explicitly or via
//! [`Runtime::global`].

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default global thread count.
pub const THREADS_ENV: &str = "SIMPADV_THREADS";

/// Errors from the fallible runtime constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A thread count of zero was requested.
    ZeroThreads,
    /// A chunk size of zero was requested.
    ZeroChunk,
    /// The [`THREADS_ENV`] variable is set but not a positive integer.
    InvalidEnv(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ZeroThreads => write!(f, "thread count must be at least 1"),
            RuntimeError::ZeroChunk => write!(f, "chunk size must be at least 1"),
            RuntimeError::InvalidEnv(v) => {
                write!(f, "{THREADS_ENV}={v:?} is not a positive integer")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Global fallback thread count; `0` means "not yet resolved".
///
/// An atomic (rather than a write-once cell) so tests can switch the
/// in-process thread count and compare runs: the determinism contract
/// makes concurrent readers safe — any observed value produces the same
/// results.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether the current thread is a `run_tasks` worker. Workers asking
    /// for [`Runtime::global`] get a serial runtime, so nested data
    /// parallelism (e.g. a parallel matmul inside a parallel eval task)
    /// degrades gracefully instead of oversubscribing the machine.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the calling thread is already a runtime worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(std::cell::Cell::get)
}

/// Marks the current thread as a worker for a scope, restoring the
/// previous flag on drop (the caller thread doubles as worker 0 during
/// `run_tasks` but must return to its ordinary state afterwards).
struct WorkerFlagGuard {
    was: bool,
}

impl WorkerFlagGuard {
    fn enter() -> Self {
        WorkerFlagGuard { was: IN_WORKER.with(|f| f.replace(true)) }
    }
}

impl Drop for WorkerFlagGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_WORKER.with(|f| f.set(was));
    }
}

/// Number of hardware threads, with a serial fallback when unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Sets the process-wide thread count used by [`Runtime::global`].
///
/// # Panics
///
/// Panics when `threads == 0`; use [`try_set_global_threads`] for the
/// fallible form.
pub fn set_global_threads(threads: usize) {
    try_set_global_threads(threads).unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible form of [`set_global_threads`].
///
/// # Errors
///
/// Returns [`RuntimeError::ZeroThreads`] when `threads == 0`.
pub fn try_set_global_threads(threads: usize) -> Result<(), RuntimeError> {
    if threads == 0 {
        return Err(RuntimeError::ZeroThreads);
    }
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
    Ok(())
}

/// A handle on a data-parallel execution policy.
///
/// Carries only a thread count: workers are scoped `std::thread`s spawned
/// per call, so a `Runtime` is trivially cheap to construct, copy, and
/// pass down a call stack. `threads == 1` means strictly serial
/// execution on the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Runtime {
    /// A runtime executing on `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`; use [`Runtime::try_new`] for the
    /// fallible form.
    pub fn new(threads: usize) -> Self {
        Runtime::try_new(threads).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Runtime::new`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ZeroThreads`] when `threads == 0`.
    pub fn try_new(threads: usize) -> Result<Self, RuntimeError> {
        if threads == 0 {
            return Err(RuntimeError::ZeroThreads);
        }
        Ok(Runtime { threads })
    }

    /// A strictly serial runtime (one thread, no spawning).
    pub fn serial() -> Self {
        Runtime { threads: 1 }
    }

    /// A runtime sized from the environment: [`THREADS_ENV`] when set,
    /// otherwise [`available_threads`].
    ///
    /// # Panics
    ///
    /// Panics when [`THREADS_ENV`] is set to something other than a
    /// positive integer; use [`Runtime::try_from_env`] for the fallible
    /// form.
    pub fn from_env() -> Self {
        Runtime::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Runtime::from_env`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidEnv`] when [`THREADS_ENV`] is set
    /// but not a positive integer.
    pub fn try_from_env() -> Result<Self, RuntimeError> {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => Ok(Runtime { threads: n }),
                _ => Err(RuntimeError::InvalidEnv(v)),
            },
            Err(_) => Ok(Runtime { threads: available_threads() }),
        }
    }

    /// The process-wide runtime used by library call sites.
    ///
    /// Resolution order: the last [`set_global_threads`] call, else a
    /// valid [`THREADS_ENV`] value, else [`available_threads`]. An
    /// invalid [`THREADS_ENV`] falls back to hardware parallelism here
    /// (library call sites must not abort); binaries surface the error
    /// through [`Runtime::from_env`] / CLI parsing instead.
    ///
    /// On a thread that is itself a runtime worker this returns
    /// [`Runtime::serial`]: nested parallel regions run serially rather
    /// than oversubscribing the machine. The determinism contract makes
    /// this invisible in results.
    pub fn global() -> Self {
        if in_worker() {
            return Runtime::serial();
        }
        let mut threads = GLOBAL_THREADS.load(Ordering::Relaxed);
        if threads == 0 {
            threads = Runtime::try_from_env().map_or_else(|_| available_threads(), |r| r.threads);
            // First resolution wins; a racing set_global_threads would
            // overwrite with `store`, which is fine.
            let _ =
                GLOBAL_THREADS.compare_exchange(0, threads, Ordering::Relaxed, Ordering::Relaxed);
            threads = GLOBAL_THREADS.load(Ordering::Relaxed);
        }
        Runtime { threads }
    }

    /// The worker thread count this runtime executes with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_tasks` indexed tasks, returning results in task order.
    ///
    /// The scheduling contract: tasks are identified by index `0..n_tasks`,
    /// claimed dynamically by up to `threads` workers, and the result
    /// vector is assembled in index order. The calling thread participates
    /// as one of the workers (only `threads - 1` threads are spawned).
    /// With `threads == 1` (or fewer than two tasks) the tasks simply run
    /// in order on the calling thread.
    ///
    /// Any panic raised by a task is propagated to the caller.
    ///
    /// Tracing: the whole region — including the serial fallback and the
    /// caller's own worker-0 share — runs with event emission suppressed
    /// (`simpadv_trace::suppress_events`), so the emitted event stream is
    /// identical no matter how the tasks were scheduled. The logical
    /// clock keeps ticking inside tasks; pool shape and per-task busy
    /// time are recorded on the non-logical side of the clock.
    fn run_tasks<R, F>(&self, n_tasks: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        simpadv_trace::clock::tick_pool_region(n_tasks as u64);
        let timed = |i: usize| {
            let t0 = simpadv_trace::clock::WallTimer::start();
            let r = task(i);
            simpadv_trace::clock::add_busy_ns(t0.elapsed_ns());
            r
        };
        if self.threads == 1 || n_tasks <= 1 {
            let _quiet = simpadv_trace::suppress_events();
            return (0..n_tasks).map(timed).collect();
        }
        let workers = self.threads.min(n_tasks);
        simpadv_trace::clock::add_spawned_threads((workers - 1) as u64);
        let next = AtomicUsize::new(0);
        let timed = &timed;
        let next = &next;
        let claim = move || {
            let mut claimed = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                claimed.push((i, timed(i)));
            }
            claimed
        };
        let claim = &claim;
        let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|_| {
                    scope.spawn(move || {
                        IN_WORKER.with(|f| f.set(true));
                        simpadv_trace::suppress_events_on_this_thread();
                        claim()
                    })
                })
                .collect();
            // The caller is worker 0, flagged like the rest so nested
            // parallel regions degrade to serial here too.
            let own = {
                let _guard = WorkerFlagGuard::enter();
                let _quiet = simpadv_trace::suppress_events();
                claim()
            };
            let mut all: Vec<Vec<(usize, R)>> = handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
                .collect();
            all.push(own);
            all
        });
        let mut indexed: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Applies `f` to every item, in parallel, preserving input order.
    ///
    /// Equivalent to `items.iter().map(f).collect()` — bitwise, for any
    /// thread count — with one task per item. Use for coarse items (a
    /// batch, an eval column); for many small items prefer
    /// [`Runtime::par_chunks`].
    ///
    /// Panics raised by `f` are propagated.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_tasks(items.len(), |i| f(&items[i]))
    }

    /// Fallible form of [`Runtime::par_map`].
    ///
    /// All items are evaluated (no early abort — that keeps the error
    /// deterministic), and the error of the lowest-index failing item is
    /// returned.
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-index) error produced by `f`.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.run_tasks(items.len(), |i| f(&items[i])).into_iter().collect()
    }

    /// Splits `0..len` into fixed chunks of `chunk` indices (the last may
    /// be short) and applies `f` to each range in parallel, returning the
    /// per-chunk results in range order.
    ///
    /// The chunk boundaries depend only on `(len, chunk)` — never on the
    /// thread count — so downstream reductions over the returned vector
    /// are deterministic.
    ///
    /// # Panics
    ///
    /// Panics when `chunk == 0`; use [`Runtime::try_par_chunks`] for the
    /// fallible form. Panics raised by `f` are propagated.
    pub fn par_chunks<R, F>(&self, len: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        self.try_par_chunks(len, chunk, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Runtime::par_chunks`]: reports an invalid chunk
    /// size as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ZeroChunk`] when `chunk == 0`.
    pub fn try_par_chunks<R, F>(
        &self,
        len: usize,
        chunk: usize,
        f: F,
    ) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if chunk == 0 {
            return Err(RuntimeError::ZeroChunk);
        }
        let n_tasks = len.div_ceil(chunk);
        Ok(self.run_tasks(n_tasks, |i| f(i * chunk..((i + 1) * chunk).min(len))))
    }

    /// Runs two closures, potentially in parallel, and returns both
    /// results as `(a, b)`.
    ///
    /// Both closures run with trace-event emission suppressed on every
    /// path (serial and spawned), so the emitted stream does not depend
    /// on whether `fb` ran inline or on its own thread.
    ///
    /// Panics raised by either closure are propagated.
    pub fn par_join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.threads == 1 {
            let _quiet = simpadv_trace::suppress_events();
            return (fa(), fb());
        }
        simpadv_trace::clock::add_spawned_threads(1);
        std::thread::scope(|scope| {
            let hb = scope.spawn(move || {
                simpadv_trace::suppress_events_on_this_thread();
                fb()
            });
            let a = {
                let _quiet = simpadv_trace::suppress_events();
                fa()
            };
            let b = hb.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            (a, b)
        })
    }
}

impl Default for Runtime {
    /// Same resolution as [`Runtime::global`].
    fn default() -> Self {
        Runtime::global()
    }
}

/// Derives an independent RNG seed for a numbered stream.
///
/// SplitMix64-style mixing of `(base, stream)`: nearby stream indices
/// (0, 1, 2, …) yield statistically unrelated seeds, so per-example or
/// per-chunk generators can be keyed by a stable index without
/// correlated draws. Pure and deterministic — safe to call from any
/// thread.
pub fn split_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_is_rejected() {
        assert_eq!(Runtime::try_new(0), Err(RuntimeError::ZeroThreads));
        assert_eq!(try_set_global_threads(0), Err(RuntimeError::ZeroThreads));
        assert!(Runtime::try_new(3).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn new_panics_on_zero() {
        let _ = Runtime::new(0);
    }

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let rt = Runtime::new(threads);
            assert_eq!(rt.par_map(&items, |x| x * x + 1), serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let rt = Runtime::new(4);
        assert_eq!(rt.par_map(&[] as &[u8], |x| *x), Vec::<u8>::new());
        assert_eq!(rt.par_map(&[9u8], |x| *x + 1), vec![10]);
    }

    #[test]
    fn par_chunks_covers_range_in_order() {
        let rt = Runtime::new(4);
        let ranges = rt.par_chunks(10, 3, |r| r);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(rt.par_chunks(0, 3, |r| r), Vec::<Range<usize>>::new());
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn par_chunks_rejects_zero_chunk() {
        let _ = Runtime::new(2).par_chunks(10, 0, |r| r);
    }

    #[test]
    fn try_par_chunks_reports_zero_chunk_as_error() {
        assert_eq!(Runtime::new(2).try_par_chunks(10, 0, |r| r), Err(RuntimeError::ZeroChunk));
        assert_eq!(Runtime::new(2).try_par_chunks(4, 2, |r| r.len()), Ok(vec![2, 2]));
    }

    #[test]
    fn try_par_map_returns_lowest_index_error() {
        let rt = Runtime::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = rt.try_par_map(&items, |&i| if i == 50 || i == 7 { Err(i) } else { Ok(i) });
        assert_eq!(out, Err(7));
        let ok = rt.try_par_map(&items, |&i| Ok::<_, usize>(i * 2));
        assert_eq!(ok, Ok(items.iter().map(|i| i * 2).collect::<Vec<_>>()));
    }

    #[test]
    fn par_join_returns_both() {
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            let (a, b) = rt.par_join(|| 2 + 2, || "ok");
            assert_eq!((a, b), (4, "ok"));
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let rt = Runtime::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let items: Vec<usize> = (0..16).collect();
            let _ = rt.par_map(&items, |&i| {
                assert!(i != 11, "task {i} exploded");
                i
            });
        }));
        assert!(caught.is_err());
    }

    // The global thread count is process-wide state, so everything that
    // observes it lives in this one test (tests in a binary run
    // concurrently).
    #[test]
    fn global_threads_can_be_switched_and_workers_degrade_to_serial() {
        set_global_threads(3);
        assert_eq!(Runtime::global().threads(), 3);
        set_global_threads(4);
        assert_eq!(Runtime::global().threads(), 4);
        assert_eq!(Runtime::default().threads(), 4);
        // Inside a worker, the global runtime degrades to serial so
        // nested parallel regions cannot oversubscribe.
        let seen = Runtime::new(2)
            .par_map(&[0u8, 1, 2, 3], |_| (in_worker(), Runtime::global().threads()));
        assert!(seen.iter().all(|&(w, t)| w && t == 1), "{seen:?}");
        assert!(!in_worker());
    }

    #[test]
    fn split_seed_separates_streams() {
        let a = split_seed(2019, 0);
        let b = split_seed(2019, 1);
        let c = split_seed(2020, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // stable: pure function of its inputs
        assert_eq!(a, split_seed(2019, 0));
    }

    #[test]
    fn ordered_reduction_is_bitwise_stable() {
        // Sum of chunk sums in chunk order must not depend on threads.
        let data: Vec<f32> = (0..1000).map(|i| (i as f32).sin() * 1e-3).collect();
        let sum_with = |threads: usize| -> f32 {
            Runtime::new(threads)
                .par_chunks(data.len(), 64, |r| data[r].iter().sum::<f32>())
                .into_iter()
                .sum()
        };
        let s1 = sum_with(1);
        for threads in [2, 4, 7] {
            assert_eq!(s1.to_bits(), sum_with(threads).to_bits(), "threads={threads}");
        }
    }
}
