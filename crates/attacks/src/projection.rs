//! l∞-ball projection and signed gradient steps — the shared geometry of
//! every attack in this crate.

use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// Projects `x` onto the intersection of the l∞ ball of radius `eps`
/// around `origin` and the valid pixel box `[0, 1]`.
///
/// This is the `clip` of the paper's BIM definition.
///
/// # Panics
///
/// Panics if shapes differ or `eps` is negative.
pub fn project_ball(x: &Tensor, origin: &Tensor, eps: f32) -> Tensor {
    assert_eq!(x.shape(), origin.shape(), "project_ball shape mismatch");
    assert!(eps >= 0.0, "epsilon must be non-negative");
    let lo = origin.add_scalar(-eps).clamp(0.0, 1.0);
    let hi = origin.add_scalar(eps).clamp(0.0, 1.0);
    x.maximum(&lo).minimum(&hi)
}

/// Logical bytes one [`project_ball`] call moves over `elems` pixels:
/// `x` and `origin` read, the projected batch written, at 4 bytes per
/// `f32` (the derived bound tensors are not counted — they are
/// implementation detail, not kernel interface). Shape introspection
/// for the kernel microbenchmark lab.
pub fn project_ball_bytes(elems: usize) -> u64 {
    4 * 3 * elems as u64
}

/// Logical bytes one [`signed_step`] call moves over `elems` pixels:
/// `x`, `origin` and the input gradient read, the stepped batch
/// written. The model passes behind the gradient are accounted
/// separately through the trace clock's forward/backward counters.
pub fn signed_step_bytes(elems: usize) -> u64 {
    4 * 4 * elems as u64
}

/// The l∞ distance between two tensors.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn linf_distance(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "linf_distance shape mismatch");
    a.sub(b).norm_linf()
}

/// One signed-gradient ascent step from `x` (the core of FGSM and of each
/// BIM iteration):
///
/// `x' = clip(x + step · sign(∇ₓ L(C(x), y)))`
///
/// projected onto the `eps`-ball around `origin` and `[0, 1]`. Exposed as a
/// free function because the paper's proposed trainer performs exactly one
/// such step per epoch from a *persistent* starting point.
///
/// # Panics
///
/// Panics on shape mismatches or a negative budget.
pub fn signed_step(
    model: &mut dyn GradientModel,
    x: &Tensor,
    origin: &Tensor,
    y: &[usize],
    step: f32,
    eps: f32,
) -> Tensor {
    assert!(step >= 0.0, "step must be non-negative");
    simpadv_trace::clock::tick_attack_steps(1);
    let (_, grad) = model.loss_and_input_grad(x, y);
    let stepped = x.add(&grad.sign().mul_scalar(step));
    project_ball(&stepped, origin, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};

    #[test]
    fn projection_is_identity_inside_ball() {
        let origin = Tensor::full(&[4], 0.5);
        let x = Tensor::from_slice(&[0.45, 0.5, 0.55, 0.52]);
        assert_eq!(project_ball(&x, &origin, 0.1), x);
    }

    #[test]
    fn projection_clips_to_ball_and_box() {
        let origin = Tensor::from_slice(&[0.05, 0.5, 0.95]);
        let x = Tensor::from_slice(&[-0.5, 0.9, 1.5]);
        let p = project_ball(&x, &origin, 0.2);
        // coordinate 0: ball floor is -0.15, box floor 0 → 0
        assert_eq!(p.as_slice()[0], 0.0);
        // coordinate 1: ball ceiling 0.7
        assert!((p.as_slice()[1] - 0.7).abs() < 1e-6);
        // coordinate 2: ball ceiling 1.15, box ceiling 1 → 1
        assert_eq!(p.as_slice()[2], 1.0);
    }

    #[test]
    fn projection_is_idempotent() {
        let origin = Tensor::full(&[8], 0.4);
        let x = Tensor::linspace(-1.0, 2.0, 8);
        let p1 = project_ball(&x, &origin, 0.3);
        let p2 = project_ball(&p1, &origin, 0.3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn linf_distance_values() {
        let a = Tensor::from_slice(&[0.0, 1.0]);
        let b = Tensor::from_slice(&[0.25, 0.5]);
        assert_eq!(linf_distance(&a, &b), 0.5);
        assert_eq!(linf_distance(&a, &a), 0.0);
    }

    #[test]
    fn signed_step_moves_against_the_model() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let x1 = signed_step(&mut m, &x, &x, &y, 0.05, 0.1);
        // the step increases the loss
        use simpadv_nn::GradientModel;
        let (l0, _) = m.loss_and_input_grad(&x, &y);
        let (l1, _) = m.loss_and_input_grad(&x1, &y);
        assert!(l1 > l0, "loss should rise: {l0} -> {l1}");
        // and respects the ball
        assert!(linf_distance(&x1, &x) <= 0.05 + 1e-6);
    }

    #[test]
    fn signed_step_respects_total_budget() {
        let mut m = linear_model();
        let (x, y) = centred_batch(1);
        let mut cur = x.clone();
        for _ in 0..10 {
            cur = signed_step(&mut m, &cur, &x, &y, 0.05, 0.08);
        }
        assert!(linf_distance(&cur, &x) <= 0.08 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        let x = Tensor::zeros(&[2]);
        project_ball(&x, &x, -0.1);
    }

    #[test]
    fn byte_formulas_count_tensor_traffic() {
        // project_ball: x + origin read, output written
        assert_eq!(project_ball_bytes(784), 3 * 4 * 784);
        // signed_step: x + origin + gradient read, output written
        assert_eq!(signed_step_bytes(784), 4 * 4 * 784);
        assert_eq!(project_ball_bytes(0), 0);
    }
}
