//! l2-norm attacks — extensions beyond the paper's l∞ evaluation, useful
//! for checking that a defense is not narrowly specialized to one
//! perturbation geometry.

use crate::attack::Attack;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// Per-example l2 norms of a batched tensor `[n, d...]`.
pub fn row_l2_norms(x: &Tensor) -> Vec<f32> {
    let n = x.shape()[0];
    let d: usize = x.shape()[1..].iter().product();
    let s = x.as_slice();
    (0..n).map(|i| s[i * d..(i + 1) * d].iter().map(|&v| v * v).sum::<f32>().sqrt()).collect()
}

/// Maximum per-example l2 distance between two batches.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn l2_distance(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "l2_distance shape mismatch");
    row_l2_norms(&a.sub(b)).into_iter().fold(0.0, f32::max)
}

/// Projects each example of `x` onto the l2 ball of radius `eps` around
/// the matching example of `origin`, then clamps to the pixel box.
///
/// # Panics
///
/// Panics on shape mismatch or negative `eps`.
pub fn project_ball_l2(x: &Tensor, origin: &Tensor, eps: f32) -> Tensor {
    assert_eq!(x.shape(), origin.shape(), "project_ball_l2 shape mismatch");
    assert!(eps >= 0.0, "epsilon must be non-negative");
    let delta = x.sub(origin);
    let norms = row_l2_norms(&delta);
    let n = x.shape()[0];
    let d: usize = x.shape()[1..].iter().product();
    let mut out = delta.into_vec();
    for i in 0..n {
        if norms[i] > eps && norms[i] > 0.0 {
            let scale = eps / norms[i];
            for v in &mut out[i * d..(i + 1) * d] {
                *v *= scale;
            }
        }
    }
    Tensor::from_vec(out, x.shape()).add(origin).clamp(0.0, 1.0)
}

/// Normalizes each example of a gradient batch to unit l2 norm (zero
/// gradients stay zero).
fn row_normalize(g: &Tensor) -> Tensor {
    let norms = row_l2_norms(g);
    let n = g.shape()[0];
    let d: usize = g.shape()[1..].iter().product();
    let mut out = g.as_slice().to_vec();
    for i in 0..n {
        if norms[i] > 0.0 {
            for v in &mut out[i * d..(i + 1) * d] {
                *v /= norms[i];
            }
        }
    }
    Tensor::from_vec(out, g.shape())
}

/// The fast gradient method in l2 geometry: one step of length ε along
/// the normalized input gradient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FgmL2 {
    epsilon: f32,
}

impl FgmL2 {
    /// Creates the attack with l2 budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        FgmL2 { epsilon }
    }
}

impl Attack for FgmL2 {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor {
        let (_, grad) = model.loss_and_input_grad(x, y);
        let stepped = x.add(&row_normalize(&grad).mul_scalar(self.epsilon));
        project_ball_l2(&stepped, x, self.epsilon)
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        "fgm-l2".to_string()
    }
}

/// Projected gradient descent in l2 geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdL2 {
    epsilon: f32,
    iterations: usize,
    step: f32,
}

impl PgdL2 {
    /// Creates the attack with l2 budget `epsilon`, `iterations` steps of
    /// length `2.5 * epsilon / iterations` (the conventional choice).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite or `iterations == 0`.
    pub fn new(epsilon: f32, iterations: usize) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(iterations > 0, "pgd-l2 needs at least one iteration");
        PgdL2 { epsilon, iterations, step: 2.5 * epsilon / iterations as f32 }
    }
}

impl Attack for PgdL2 {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor {
        let mut cur = x.clone();
        for _ in 0..self.iterations {
            let (_, grad) = model.loss_and_input_grad(&cur, y);
            let stepped = cur.add(&row_normalize(&grad).mul_scalar(self.step));
            cur = project_ball_l2(&stepped, x, self.epsilon);
        }
        cur
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        format!("pgd-l2({})", self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};

    #[test]
    fn row_norms_known_values() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        assert_eq!(row_l2_norms(&t), vec![5.0, 0.0]);
    }

    #[test]
    fn projection_shrinks_only_outside() {
        let origin = Tensor::zeros(&[1, 2]).add_scalar(0.5);
        let inside = Tensor::from_vec(vec![0.55, 0.5], &[1, 2]);
        assert_eq!(project_ball_l2(&inside, &origin, 0.1), inside);
        let outside = Tensor::from_vec(vec![0.9, 0.5], &[1, 2]);
        let p = project_ball_l2(&outside, &origin, 0.1);
        assert!((l2_distance(&p, &origin) - 0.1).abs() < 1e-5);
    }

    #[test]
    fn projection_is_idempotent() {
        let origin = Tensor::full(&[2, 3], 0.4);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.2, 0.9, 0.9, 0.9], &[2, 3]);
        let p1 = project_ball_l2(&x, &origin, 0.3);
        let p2 = project_ball_l2(&p1, &origin, 0.3);
        for (a, b) in p1.as_slice().iter().zip(p2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fgm_l2_respects_budget_and_raises_loss() {
        use simpadv_nn::GradientModel;
        let mut m = linear_model();
        let (x, y) = centred_batch(3);
        let adv = FgmL2::new(0.4).perturb(&mut m, &x, &y);
        assert!(l2_distance(&adv, &x) <= 0.4 + 1e-5);
        let (l0, _) = m.loss_and_input_grad(&x, &y);
        let (l1, _) = m.loss_and_input_grad(&adv, &y);
        assert!(l1 > l0);
    }

    #[test]
    fn pgd_l2_at_least_as_strong_as_fgm() {
        use simpadv_nn::GradientModel;
        let mut m = linear_model();
        let (x, y) = centred_batch(4);
        let a1 = FgmL2::new(0.4).perturb(&mut m, &x, &y);
        let a2 = PgdL2::new(0.4, 8).perturb(&mut m, &x, &y);
        let (l1, _) = m.loss_and_input_grad(&a1, &y);
        let (l2, _) = m.loss_and_input_grad(&a2, &y);
        assert!(l2 >= l1 - 1e-4, "pgd-l2 ({l2}) weaker than fgm-l2 ({l1})");
        assert!(l2_distance(&a2, &x) <= 0.4 + 1e-5);
    }

    #[test]
    fn ids() {
        assert_eq!(FgmL2::new(0.1).id(), "fgm-l2");
        assert_eq!(PgdL2::new(0.1, 7).id(), "pgd-l2(7)");
    }
}
