//! Targeted single-step attacks.

use crate::attack::Attack;
use crate::projection::project_ball;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// Least-likely-class FGSM (Kurakin et al., 2016): step **down** the loss
/// gradient of the model's least-likely predicted class,
///
/// `x' = clip(x − ε · sign(∇ₓ L(C(x), y_LL)))`.
///
/// Because it never consults the true label, it is immune to the *label
/// leaking* artifact that inflates FGSM-Adv's apparent robustness — a
/// useful extra evaluation column beyond the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeastLikelyFgsm {
    epsilon: f32,
}

impl LeastLikelyFgsm {
    /// Creates the attack with budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        LeastLikelyFgsm { epsilon }
    }

    /// The model's least-likely class per row.
    fn least_likely(logits: &Tensor) -> Vec<usize> {
        let (n, c) = (logits.shape()[0], logits.shape()[1]);
        let s = logits.as_slice();
        (0..n)
            .map(|i| {
                let row = &s[i * c..(i + 1) * c];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v < row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }
}

impl Attack for LeastLikelyFgsm {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, _y: &[usize]) -> Tensor {
        let logits = model.logits(x);
        let targets = Self::least_likely(&logits);
        let (_, grad) = model.loss_and_input_grad(x, &targets);
        // descend: make the least-likely class more likely
        let stepped = x.sub(&grad.sign().mul_scalar(self.epsilon));
        project_ball(&stepped, x, self.epsilon)
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        "ll-fgsm".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::projection::linf_distance;
    use simpadv_nn::GradientModel;

    #[test]
    fn respects_budget_and_box() {
        let mut m = linear_model();
        let (x, y) = centred_batch(3);
        let adv = LeastLikelyFgsm::new(0.2).perturb(&mut m, &x, &y);
        assert!(linf_distance(&adv, &x) <= 0.2 + 1e-6);
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn pushes_probability_toward_least_likely_class() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let logits0 = m.logits(&x);
        let ll = LeastLikelyFgsm::least_likely(&logits0);
        let adv = LeastLikelyFgsm::new(0.2).perturb(&mut m, &x, &y);
        let logits1 = m.logits(&adv);
        for (i, &target) in ll.iter().enumerate() {
            let before = logits0.at(&[i, target]);
            let after = logits1.at(&[i, target]);
            assert!(after > before, "row {i}: target logit {before} -> {after}");
        }
    }

    #[test]
    fn least_likely_picks_argmin() {
        let logits = Tensor::from_vec(vec![0.1, -2.0, 1.0, 3.0, 0.0, -1.0], &[2, 3]);
        assert_eq!(LeastLikelyFgsm::least_likely(&logits), vec![1, 2]);
    }

    #[test]
    fn id_is_stable() {
        assert_eq!(LeastLikelyFgsm::new(0.1).id(), "ll-fgsm");
    }
}
