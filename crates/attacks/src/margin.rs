//! A Carlini–Wagner-style margin attack (extension).
//!
//! Instead of ascending the cross-entropy, [`MarginPgd`] descends the C&W
//! margin `f(x) = Z(x)_y − max_{j≠y} Z(x)_j` with signed l∞ steps. The
//! margin objective keeps a useful gradient even when softmax saturates
//! (where cross-entropy gradients vanish), so it often breaks models whose
//! apparent robustness is just confident logits — a stronger evaluation
//! than the paper's BIM battery.

use crate::attack::Attack;
use crate::projection::project_ball;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// PGD on the C&W margin loss, with l∞ projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginPgd {
    epsilon: f32,
    iterations: usize,
    step: f32,
}

impl MarginPgd {
    /// Creates the attack with budget `epsilon` and `iterations` steps of
    /// size `epsilon / iterations * 2`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite or `iterations == 0`.
    pub fn new(epsilon: f32, iterations: usize) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(iterations > 0, "margin-pgd needs at least one iteration");
        MarginPgd { epsilon, iterations, step: 2.0 * epsilon / iterations as f32 }
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// ∂(margin)/∂logits for a batch: +1 at the true class, −1 at the
    /// runner-up (the strongest *other* class). We *descend* the margin,
    /// so the attack step uses the negated sign of the input gradient of
    /// this quantity... equivalently, steps along `sign(∇ₓ(−margin))`.
    fn margin_grad(logits: &Tensor, y: &[usize]) -> Tensor {
        let (n, c) = (logits.shape()[0], logits.shape()[1]);
        let s = logits.as_slice();
        let mut g = vec![0.0f32; n * c];
        for (i, &label) in y.iter().enumerate() {
            let row = &s[i * c..(i + 1) * c];
            let mut runner = usize::MAX;
            for j in 0..c {
                if j == label {
                    continue;
                }
                if runner == usize::MAX || row[j] > row[runner] {
                    runner = j;
                }
            }
            // gradient of (runner-up − true): descending the margin
            g[i * c + label] = -1.0 / n as f32;
            g[i * c + runner] = 1.0 / n as f32;
        }
        Tensor::from_vec(g, &[n, c])
    }
}

impl Attack for MarginPgd {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor {
        let mut cur = x.clone();
        for _ in 0..self.iterations {
            let labels = y.to_vec();
            let grad_x =
                model.custom_input_grad(&cur, &mut |logits| Self::margin_grad(logits, &labels));
            let stepped = cur.add(&grad_x.sign().mul_scalar(self.step));
            cur = project_ball(&stepped, x, self.epsilon);
        }
        cur
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        format!("margin-pgd({})", self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::projection::linf_distance;
    use simpadv_nn::GradientModel;

    #[test]
    fn respects_budget_and_box() {
        let mut m = linear_model();
        let (x, y) = centred_batch(3);
        let adv = MarginPgd::new(0.2, 8).perturb(&mut m, &x, &y);
        assert!(linf_distance(&adv, &x) <= 0.2 + 1e-6);
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn reduces_the_true_class_margin() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let margin = |m: &mut dyn GradientModel, x: &Tensor| -> f32 {
            let logits = m.logits(x);
            let mut total = 0.0;
            for (i, &label) in y.iter().enumerate() {
                let row = logits.row(i);
                let other: f32 = row
                    .as_slice()
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != label)
                    .map(|(_, &v)| v)
                    .fold(f32::NEG_INFINITY, f32::max);
                total += row.as_slice()[label] - other;
            }
            total
        };
        let before = margin(&mut m, &x);
        let adv = MarginPgd::new(0.25, 6).perturb(&mut m, &x, &y);
        let after = margin(&mut m, &adv);
        assert!(after < before, "margin should shrink: {before} -> {after}");
    }

    #[test]
    fn margin_grad_structure() {
        let logits = Tensor::from_vec(vec![3.0, 1.0, 2.0], &[1, 3]);
        let g = MarginPgd::margin_grad(&logits, &[0]);
        // true class 0 gets -1, runner-up (class 2) gets +1
        assert_eq!(g.as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn id_reports_iterations() {
        assert_eq!(MarginPgd::new(0.1, 12).id(), "margin-pgd(12)");
    }
}
