//! A gradient-free random-noise baseline.

use crate::attack::Attack;
use crate::projection::project_ball;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// Uniform random perturbation within the ε-ball — not a real attack, but
/// the control every adversarial evaluation needs: a defense whose accuracy
/// drops under [`RandomNoise`] as much as under FGSM isn't being attacked,
/// it's just brittle.
#[derive(Debug)]
pub struct RandomNoise {
    epsilon: f32,
    rng: StdRng,
}

impl RandomNoise {
    /// Creates the baseline with budget `epsilon` and RNG seed `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32, seed: u64) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        RandomNoise { epsilon, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Attack for RandomNoise {
    fn perturb(&mut self, _model: &mut dyn GradientModel, x: &Tensor, _y: &[usize]) -> Tensor {
        let noise = Tensor::rand_uniform(&mut self.rng, x.shape(), -self.epsilon, self.epsilon);
        project_ball(&x.add(&noise), x, self.epsilon)
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        "noise".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::projection::linf_distance;

    #[test]
    fn stays_within_budget_and_box() {
        let mut m = linear_model();
        let (x, y) = centred_batch(3);
        let adv = RandomNoise::new(0.2, 0).perturb(&mut m, &x, &y);
        assert!(linf_distance(&adv, &x) <= 0.2 + 1e-6);
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn seeded_and_nontrivial() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let a = RandomNoise::new(0.1, 5).perturb(&mut m, &x, &y);
        let b = RandomNoise::new(0.1, 5).perturb(&mut m, &x, &y);
        assert_eq!(a, b);
        assert_ne!(a, x);
    }

    #[test]
    fn does_not_touch_the_model() {
        // no gradient queries: works even against a model with zero classes
        // of headroom — here just verify pass counters stay at zero
        let mut m = linear_model();
        let (x, y) = centred_batch(1);
        let _ = RandomNoise::new(0.1, 1).perturb(&mut m, &x, &y);
        assert_eq!(m.forward_passes(), 0);
        assert_eq!(m.backward_passes(), 0);
    }
}
