//! The momentum iterative method.

use crate::attack::Attack;
use crate::projection::project_ball;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// MIM (Dong et al., 2018): iterative signed steps along an
/// l1-normalized, exponentially accumulated gradient direction.
///
/// `g_{t+1} = μ g_t + ∇ₓL / ‖∇ₓL‖₁`, `x_{t+1} = clip(x_t + εₛ sign(g_{t+1}))`
///
/// Momentum stabilizes the update direction across iterations, typically
/// transferring better and escaping poor local structure — included as an
/// extension beyond the paper's BIM evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mim {
    epsilon: f32,
    iterations: usize,
    step: f32,
    decay: f32,
}

impl Mim {
    /// Creates a MIM attack with budget `epsilon`, `iterations` steps,
    /// step `epsilon / iterations` and momentum decay `decay`
    /// (conventionally 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite, `iterations == 0`, or
    /// `decay` is negative.
    pub fn new(epsilon: f32, iterations: usize, decay: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(iterations > 0, "mim needs at least one iteration");
        assert!(decay >= 0.0, "decay must be non-negative");
        Mim { epsilon, iterations, step: epsilon / iterations as f32, decay }
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Attack for Mim {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor {
        let mut cur = x.clone();
        let mut momentum = Tensor::zeros(x.shape());
        for _ in 0..self.iterations {
            let (_, grad) = model.loss_and_input_grad(&cur, y);
            let l1 = grad.abs().sum().max(1e-12);
            momentum = momentum.mul_scalar(self.decay).add(&grad.mul_scalar(1.0 / l1));
            let stepped = cur.add(&momentum.sign().mul_scalar(self.step));
            cur = project_ball(&stepped, x, self.epsilon);
        }
        cur
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        format!("mim({})", self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::bim::Bim;
    use crate::projection::linf_distance;
    use simpadv_nn::GradientModel;

    #[test]
    fn stays_within_budget_and_box() {
        let mut m = linear_model();
        let (x, y) = centred_batch(3);
        let adv = Mim::new(0.25, 10, 1.0).perturb(&mut m, &x, &y);
        assert!(linf_distance(&adv, &x) <= 0.25 + 1e-6);
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn increases_loss() {
        let mut m = linear_model();
        let (x, y) = centred_batch(4);
        let adv = Mim::new(0.2, 5, 1.0).perturb(&mut m, &x, &y);
        let (l0, _) = m.loss_and_input_grad(&x, &y);
        let (l1, _) = m.loss_and_input_grad(&adv, &y);
        assert!(l1 > l0);
    }

    #[test]
    fn zero_decay_matches_bim_on_linear_model() {
        // with μ=0 the momentum is just the normalized gradient, whose sign
        // equals the gradient sign — identical trajectory to BIM
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let a = Mim::new(0.2, 4, 0.0).perturb(&mut m, &x, &y);
        let b = Bim::new(0.2, 4).perturb(&mut m, &x, &y);
        assert_eq!(a, b);
    }

    #[test]
    fn id_reports_iterations() {
        assert_eq!(Mim::new(0.1, 7, 1.0).id(), "mim(7)");
    }
}
