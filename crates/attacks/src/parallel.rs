//! Deterministic data-parallel batch crafting.
//!
//! Crafting an adversarial batch is embarrassingly parallel across
//! examples — each row's perturbation depends only on that row — but a
//! naive split would tie the numerics to the worker count. The functions
//! here instead define **chunked crafting semantics**: the batch is cut
//! into fixed chunks of [`CRAFT_CHUNK`] examples (independent of the
//! thread count), each chunk is perturbed on its own model replica, and
//! the chunks are reassembled in order. The crafted batch is therefore
//! bitwise identical for 1..N threads.
//!
//! Chunked crafting differs from whole-batch crafting only through the
//! mean-loss normalization (gradients are averaged over the chunk rather
//! than the batch); the signed-gradient attacks of this crate take
//! `sign(∇ₓ)`, which is invariant to that positive scaling, so chunked
//! and whole-batch crafting agree in practice as well. The chunked form
//! is the canonical one wherever a `Runtime` is in play.
//!
//! Stochastic attacks get their reproducibility from seed splitting: key
//! each chunk's RNG stream off the chunk's *first example index* via
//! [`simpadv_runtime::split_seed`], which is stable no matter how many
//! threads claim the chunks:
//!
//! ```
//! use simpadv_attacks::{parallel::craft_parallel, Pgd};
//! use simpadv_runtime::{split_seed, Runtime};
//! # use rand::{rngs::StdRng, SeedableRng};
//! # use simpadv_nn::{Classifier, Dense, Sequential};
//! # use simpadv_tensor::Tensor;
//! # let mut rng = StdRng::seed_from_u64(0);
//! # let net = Sequential::new(vec![Box::new(Dense::new(4, 2, &mut rng))]);
//! # let model = Classifier::new(net, 2);
//! # let x = Tensor::full(&[5, 4], 0.5);
//! # let y = vec![0, 1, 0, 1, 0];
//! let rt = Runtime::new(2);
//! let base_seed = 2019;
//! let adv = craft_parallel(
//!     &rt,
//!     &model,
//!     &|first| Box::new(Pgd::new(0.1, 4, split_seed(base_seed, first as u64))),
//!     &x,
//!     &y,
//! );
//! # assert_eq!(adv.shape(), x.shape());
//! ```

use crate::attack::Attack;
use crate::projection::signed_step;
use simpadv_nn::GradientModel;
use simpadv_runtime::Runtime;
use simpadv_tensor::Tensor;

/// Examples per crafting chunk.
///
/// Fixed — never derived from the thread count — so chunk boundaries,
/// per-chunk gradient normalization, and per-chunk RNG streams are
/// identical for any parallelism.
pub const CRAFT_CHUNK: usize = 16;

/// Crafts an adversarial batch in parallel over fixed example chunks.
///
/// `make_attack(first)` builds the attack instance for the chunk whose
/// first example has batch index `first`; deterministic attacks (FGSM,
/// BIM) ignore the index, stochastic ones should derive their seed from
/// it with [`simpadv_runtime::split_seed`] (see the module docs). Each
/// chunk perturbs a fresh clone of `model`, so the caller's model — and
/// its pass counters — are untouched; credit the work explicitly via
/// `Classifier::credit_external_passes` where cost accounting matters.
///
/// # Panics
///
/// Panics if the batch size of `x` differs from `y.len()`.
pub fn craft_parallel<M>(
    rt: &Runtime,
    model: &M,
    make_attack: &(dyn Fn(usize) -> Box<dyn Attack> + Sync),
    x: &Tensor,
    y: &[usize],
) -> Tensor
where
    M: GradientModel + Clone + Send + Sync,
{
    assert_eq!(x.shape()[0], y.len(), "craft_parallel batch-size mismatch");
    if y.is_empty() {
        return x.clone();
    }
    let _span =
        simpadv_trace::span!("craft", batch = y.len(), chunks = y.len().div_ceil(CRAFT_CHUNK));
    let parts = rt.par_chunks(y.len(), CRAFT_CHUNK, |r| {
        let mut replica = model.clone();
        let mut attack = make_attack(r.start);
        attack.perturb(&mut replica, &x.rows(r.clone()), &y[r])
    });
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat_rows(&refs)
}

/// Chunk-parallel form of [`signed_step`]: advances every example of a
/// persistent adversarial batch by one signed-gradient step.
///
/// This is the hot operation of the paper's Proposed trainer (one step
/// per batch per epoch from a carried starting point). Chunks of
/// [`CRAFT_CHUNK`] examples advance on independent model replicas and
/// reassemble in order; for `y.len() <= CRAFT_CHUNK` this is exactly one
/// chunk and hence identical to the serial [`signed_step`].
///
/// # Panics
///
/// Panics if batch sizes disagree, or on the shape/budget violations
/// [`signed_step`] rejects.
pub fn signed_step_parallel<M>(
    rt: &Runtime,
    model: &M,
    x: &Tensor,
    origin: &Tensor,
    y: &[usize],
    step: f32,
    eps: f32,
) -> Tensor
where
    M: GradientModel + Clone + Send + Sync,
{
    assert_eq!(x.shape()[0], y.len(), "signed_step_parallel batch-size mismatch");
    assert_eq!(x.shape(), origin.shape(), "signed_step_parallel origin-shape mismatch");
    if y.is_empty() {
        return x.clone();
    }
    let _span = simpadv_trace::span!(
        "signed_step",
        batch = y.len(),
        chunks = y.len().div_ceil(CRAFT_CHUNK)
    );
    let parts = rt.par_chunks(y.len(), CRAFT_CHUNK, |r| {
        let mut replica = model.clone();
        signed_step(&mut replica, &x.rows(r.clone()), &origin.rows(r.clone()), &y[r], step, eps)
    });
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat_rows(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::projection::linf_distance;
    use crate::{Bim, Fgsm, Pgd};
    use simpadv_runtime::split_seed;

    #[test]
    fn crafted_batches_are_thread_count_invariant() {
        let model = linear_model();
        let (x, y) = centred_batch(37); // crosses chunk boundaries unevenly
        let craft = |threads: usize| {
            let rt = Runtime::new(threads);
            craft_parallel(&rt, &model, &|_| Box::new(Bim::new(0.1, 5)), &x, &y)
        };
        let serial = craft(1);
        for threads in [2, 4, 7] {
            assert_eq!(craft(threads), serial, "threads={threads}");
        }
        assert!(linf_distance(&serial, &x) <= 0.1 + 1e-6);
    }

    #[test]
    fn seeded_stochastic_crafting_is_thread_count_invariant() {
        let model = linear_model();
        let (x, y) = centred_batch(23);
        let craft = |threads: usize| {
            let rt = Runtime::new(threads);
            craft_parallel(
                &rt,
                &model,
                &|first| Box::new(Pgd::new(0.1, 3, split_seed(7, first as u64))),
                &x,
                &y,
            )
        };
        let serial = craft(1);
        for threads in [2, 4] {
            assert_eq!(craft(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn single_chunk_matches_whole_batch_attack() {
        let model = linear_model();
        let (x, y) = centred_batch(CRAFT_CHUNK); // exactly one chunk
        let rt = Runtime::new(4);
        let par = craft_parallel(&rt, &model, &|_| Box::new(Fgsm::new(0.08)), &x, &y);
        let mut replica = model.clone();
        let whole = Fgsm::new(0.08).perturb(&mut replica, &x, &y);
        assert_eq!(par, whole);
    }

    #[test]
    fn signed_step_parallel_matches_serial_signed_step() {
        let model = linear_model();
        let (x, y) = centred_batch(CRAFT_CHUNK); // one chunk: bitwise-equal case
        let rt = Runtime::new(4);
        let par = signed_step_parallel(&rt, &model, &x, &x, &y, 0.05, 0.1);
        let mut replica = model.clone();
        let serial = signed_step(&mut replica, &x, &x, &y, 0.05, 0.1);
        assert_eq!(par, serial);

        // and across thread counts on a multi-chunk batch
        let (x, y) = centred_batch(41);
        let one = signed_step_parallel(&Runtime::new(1), &model, &x, &x, &y, 0.05, 0.1);
        let four = signed_step_parallel(&Runtime::new(4), &model, &x, &x, &y, 0.05, 0.1);
        assert_eq!(one, four);
        assert!(linf_distance(&one, &x) <= 0.1 + 1e-6);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let model = linear_model();
        let (x, _) = centred_batch(1);
        let empty = x.rows(0..0);
        let rt = Runtime::new(4);
        let out = craft_parallel(&rt, &model, &|_| Box::new(Fgsm::new(0.1)), &empty, &[]);
        assert_eq!(out.shape(), empty.shape());
        let out = signed_step_parallel(&rt, &model, &empty, &empty, &[], 0.05, 0.1);
        assert_eq!(out.shape(), empty.shape());
    }
}
