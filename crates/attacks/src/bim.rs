//! The basic iterative method, with access to intermediate iterates.

use crate::attack::Attack;
use crate::projection::signed_step;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// BIM (Kurakin et al., 2016): `N` signed-gradient steps of size `εₛ`,
/// each projected onto the ε-ball and the pixel box.
///
/// The paper's experiments parameterize BIM by `(ε, N)` with per-step size
/// `εₛ = ε / N`; [`Bim::new`] follows that convention and
/// [`Bim::with_step`] overrides it (the proposed method trains with a
/// deliberately *large* step).
///
/// # Example
///
/// ```
/// use simpadv_attacks::Bim;
///
/// let bim = Bim::new(0.3, 10); // ε = 0.3, 10 iterations, step 0.03
/// assert!((bim.step() - 0.03).abs() < 1e-6);
/// assert_eq!(bim.id(), "bim(10)");
/// # use simpadv_attacks::Attack;
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bim {
    epsilon: f32,
    iterations: usize,
    step: f32,
}

impl Bim {
    /// Creates a BIM attack with budget `epsilon`, `iterations` steps and
    /// the paper's default step size `epsilon / iterations`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite or `iterations == 0`.
    pub fn new(epsilon: f32, iterations: usize) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(iterations > 0, "bim needs at least one iteration");
        Bim { epsilon, iterations, step: epsilon / iterations as f32 }
    }

    /// Overrides the per-step size.
    ///
    /// # Panics
    ///
    /// Panics if `step` is negative or not finite.
    pub fn with_step(mut self, step: f32) -> Self {
        assert!(step >= 0.0 && step.is_finite(), "invalid step {step}");
        self.step = step;
        self
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Per-step perturbation size εₛ.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Runs the attack and returns **every intermediate iterate**
    /// `x₁, …, x_N` (Section III of the paper evaluates classifiers
    /// against exactly these).
    pub fn iterates(&self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Vec<Tensor> {
        let mut out = Vec::with_capacity(self.iterations);
        let mut cur = x.clone();
        for _ in 0..self.iterations {
            cur = signed_step(model, &cur, x, y, self.step, self.epsilon);
            out.push(cur.clone());
        }
        out
    }
}

impl Attack for Bim {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor {
        let span =
            simpadv_trace::span!("bim", iterations = self.iterations, epsilon = self.epsilon);
        let traced = simpadv_trace::enabled() && !simpadv_trace::events_suppressed();
        let mut cur = x.clone();
        for i in 0..self.iterations {
            cur = signed_step(model, &cur, x, y, self.step, self.epsilon);
            if traced {
                simpadv_trace::gauge_with(
                    "iterate_linf",
                    f64::from(crate::projection::linf_distance(&cur, x)),
                    &[("iteration", simpadv_trace::FieldValue::from(i))],
                );
            }
        }
        drop(span);
        cur
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        format!("bim({})", self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::fgsm::Fgsm;
    use crate::projection::linf_distance;
    use simpadv_nn::GradientModel;

    #[test]
    fn bim_one_step_equals_fgsm() {
        let mut m = linear_model();
        let (x, y) = centred_batch(3);
        let a = Bim::new(0.1, 1).perturb(&mut m, &x, &y);
        let b = Fgsm::new(0.1).perturb(&mut m, &x, &y);
        assert_eq!(a, b);
    }

    #[test]
    fn stays_within_budget() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let adv = Bim::new(0.15, 10).perturb(&mut m, &x, &y);
        assert!(linf_distance(&adv, &x) <= 0.15 + 1e-6);
        // and reaches it on this linear model (all steps aligned)
        assert!(linf_distance(&adv, &x) >= 0.15 - 1e-5);
    }

    #[test]
    fn iterates_count_and_final_match_perturb() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let bim = Bim::new(0.2, 5);
        let iters = bim.iterates(&mut m, &x, &y);
        assert_eq!(iters.len(), 5);
        let fin = bim.clone().perturb(&mut m, &x, &y);
        assert_eq!(iters.last().unwrap(), &fin);
    }

    #[test]
    fn iterates_have_monotone_nondecreasing_distance() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let iters = Bim::new(0.3, 6).iterates(&mut m, &x, &y);
        let mut prev = 0.0;
        for it in &iters {
            let d = linf_distance(it, &x);
            assert!(d >= prev - 1e-6, "distance not monotone: {prev} -> {d}");
            prev = d;
        }
    }

    #[test]
    fn loss_increases_with_iterations_on_linear_model() {
        let mut m = linear_model();
        let (x, y) = centred_batch(4);
        let iters = Bim::new(0.3, 5).iterates(&mut m, &x, &y);
        let (mut prev, _) = m.loss_and_input_grad(&x, &y);
        for it in &iters {
            let (l, _) = m.loss_and_input_grad(it, &y);
            assert!(l >= prev - 1e-5, "loss decreased: {prev} -> {l}");
            prev = l;
        }
    }

    #[test]
    fn custom_step_is_respected() {
        let bim = Bim::new(0.3, 10).with_step(0.07);
        assert_eq!(bim.step(), 0.07);
        assert_eq!(bim.iterations(), 10);
    }

    #[test]
    fn large_step_still_respects_ball() {
        let mut m = linear_model();
        let (x, y) = centred_batch(1);
        let adv = Bim::new(0.1, 5).with_step(0.08).perturb(&mut m, &x, &y);
        assert!(linf_distance(&adv, &x) <= 0.1 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        Bim::new(0.1, 0);
    }
}
