//! # simpadv-attacks
//!
//! White-box l∞ adversarial attacks against [`simpadv_nn::GradientModel`]s,
//! for the `simpadv` reproduction of *"Using Intuition from Empirical
//! Properties to Simplify Adversarial Training Defense"* (Liu et al., 2019).
//!
//! Implemented attacks:
//!
//! * [`Fgsm`] — the fast gradient sign method (Goodfellow et al., 2015);
//! * [`Bim`] — the basic iterative method (Kurakin et al., 2016), the
//!   attack the paper evaluates with; exposes **intermediate iterates**
//!   ([`Bim::iterates`]) because Section III of the paper studies exactly
//!   those;
//! * [`Pgd`] — projected gradient descent with a random start (Madry et
//!   al., 2017), a strictly stronger evaluation attack;
//! * [`Mim`] — the momentum iterative method (Dong et al., 2018);
//! * [`RandomNoise`] — a gradient-free baseline that calibrates how much of
//!   an attack's effect is just noise;
//! * [`LeastLikelyFgsm`] — Kurakin's targeted single-step variant, immune
//!   to label leaking (extension);
//! * [`FgmL2`] / [`PgdL2`] — l2-geometry attacks (extension);
//! * [`MarginPgd`] — PGD on the Carlini–Wagner margin loss (extension).
//!
//! Every attack guarantees the returned examples stay within its norm
//! ball — `‖x_adv − x‖∞ ≤ ε` for the l∞ attacks, `‖x_adv − x‖₂ ≤ ε` for
//! [`FgmL2`]/[`PgdL2`] — **and** inside the valid pixel box `[0, 1]`;
//! the property tests in this crate verify both for every attack.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use simpadv_attacks::{Attack, Fgsm};
//! use simpadv_nn::{Classifier, Dense, Sequential};
//! use simpadv_tensor::Tensor;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Sequential::new(vec![Box::new(Dense::new(4, 2, &mut rng))]);
//! let mut clf = Classifier::new(net, 2);
//! let x = Tensor::rand_uniform(&mut rng, &[3, 4], 0.0, 1.0);
//! let mut fgsm = Fgsm::new(0.1);
//! let x_adv = fgsm.perturb(&mut clf, &x, &[0, 1, 0]);
//! assert!(x_adv.sub(&x).norm_linf() <= 0.1 + 1e-6);
//! ```

mod attack;
mod bim;
mod fgsm;
mod l2;
mod margin;
mod mim;
mod noise;
pub mod parallel;
mod pgd;
mod projection;
mod targeted;

pub use attack::Attack;
pub use bim::Bim;
pub use fgsm::Fgsm;
pub use l2::{l2_distance, project_ball_l2, row_l2_norms, FgmL2, PgdL2};
pub use margin::MarginPgd;
pub use mim::Mim;
pub use noise::RandomNoise;
pub use pgd::Pgd;
pub use projection::{
    linf_distance, project_ball, project_ball_bytes, signed_step, signed_step_bytes,
};
pub use targeted::LeastLikelyFgsm;
