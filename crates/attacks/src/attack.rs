//! The [`Attack`] trait.

use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// A white-box adversarial example generator.
///
/// Implementations receive mutable access to the model because computing
/// input gradients requires forward/backward passes through its layers;
/// the model's *parameters* are never modified.
pub trait Attack: std::fmt::Debug {
    /// Produces adversarial examples for the batch `(x, y)`.
    ///
    /// The result has the shape of `x`, lies within the attack's l∞ budget
    /// of `x`, and stays inside the valid pixel range `[0, 1]`.
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor;

    /// The attack's total l∞ budget ε.
    fn epsilon(&self) -> f32;

    /// A short identifier such as `"fgsm"` or `"bim(10)"`, used in report
    /// tables.
    fn id(&self) -> String;
}

#[cfg(test)]
pub(crate) mod testmodel {
    //! A tiny closed-form model for attack unit tests: a fixed linear
    //! classifier whose input gradients are known exactly.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simpadv_nn::{Classifier, Dense, Sequential};
    use simpadv_tensor::Tensor;

    /// A deterministic 2-class linear model on 4 features.
    pub fn linear_model() -> Classifier {
        let mut rng = StdRng::seed_from_u64(0);
        let mut dense = Dense::new(4, 2, &mut rng);
        // logits = [s, -s] with s = x0 + x1 - x2 - x3: gradient of the
        // class-0 loss w.r.t. x is analytically sign-known.
        {
            use simpadv_nn::Layer;
            let state = vec![
                (
                    "weight".to_string(),
                    Tensor::from_vec(vec![1.0, -1.0, 1.0, -1.0, -1.0, 1.0, -1.0, 1.0], &[4, 2]),
                ),
                ("bias".to_string(), Tensor::zeros(&[2])),
            ];
            dense.load_state(&state);
        }
        Classifier::new(Sequential::new(vec![Box::new(dense)]), 2)
    }

    /// A batch centred in the pixel range so ε-balls do not clip at 0/1.
    pub fn centred_batch(n: usize) -> (Tensor, Vec<usize>) {
        let x = Tensor::full(&[n, 4], 0.5);
        let y = (0..n).map(|i| i % 2).collect();
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::testmodel::*;
    use simpadv_nn::GradientModel;

    #[test]
    fn test_model_has_known_gradients() {
        let mut m = linear_model();
        let (x, _) = centred_batch(2);
        let (_, g) = m.loss_and_input_grad(&x, &[0, 0]);
        // loss of class 0 decreases with x0, x1; increases with x2, x3
        assert!(g.as_slice()[0] < 0.0);
        assert!(g.as_slice()[1] < 0.0);
        assert!(g.as_slice()[2] > 0.0);
        assert!(g.as_slice()[3] > 0.0);
    }
}
