//! Projected gradient descent with a random start.

use crate::attack::Attack;
use crate::projection::{project_ball, signed_step};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// PGD (Madry et al., 2017): BIM started from a uniformly random point of
/// the ε-ball. The random start makes the attack a better estimate of the
/// worst case and is the standard "strong" evaluation attack.
///
/// The attack owns a seeded RNG, so evaluations are reproducible.
#[derive(Debug)]
pub struct Pgd {
    epsilon: f32,
    iterations: usize,
    step: f32,
    rng: StdRng,
}

impl Pgd {
    /// Creates a PGD attack with budget `epsilon`, `iterations` steps,
    /// step size `epsilon / iterations * 2` (the conventional choice of a
    /// step somewhat larger than ε/N), and RNG seed `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite or `iterations == 0`.
    pub fn new(epsilon: f32, iterations: usize, seed: u64) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(iterations > 0, "pgd needs at least one iteration");
        Pgd {
            epsilon,
            iterations,
            step: 2.0 * epsilon / iterations as f32,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the per-step size.
    ///
    /// # Panics
    ///
    /// Panics if `step` is negative or not finite.
    pub fn with_step(mut self, step: f32) -> Self {
        assert!(step >= 0.0 && step.is_finite(), "invalid step {step}");
        self.step = step;
        self
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Attack for Pgd {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor {
        let span =
            simpadv_trace::span!("pgd", iterations = self.iterations, epsilon = self.epsilon);
        let traced = simpadv_trace::enabled() && !simpadv_trace::events_suppressed();
        let noise = Tensor::rand_uniform(&mut self.rng, x.shape(), -self.epsilon, self.epsilon);
        let mut cur = project_ball(&x.add(&noise), x, self.epsilon);
        for i in 0..self.iterations {
            cur = signed_step(model, &cur, x, y, self.step, self.epsilon);
            if traced {
                simpadv_trace::gauge_with(
                    "iterate_linf",
                    f64::from(crate::projection::linf_distance(&cur, x)),
                    &[("iteration", simpadv_trace::FieldValue::from(i))],
                );
            }
        }
        drop(span);
        cur
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        format!("pgd({})", self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::projection::linf_distance;

    #[test]
    fn stays_within_budget_and_box() {
        let mut m = linear_model();
        let (x, y) = centred_batch(3);
        let adv = Pgd::new(0.2, 8, 1).perturb(&mut m, &x, &y);
        assert!(linf_distance(&adv, &x) <= 0.2 + 1e-6);
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn increases_loss_at_least_as_much_as_random() {
        use simpadv_nn::GradientModel;
        let mut m = linear_model();
        let (x, y) = centred_batch(4);
        let adv = Pgd::new(0.2, 8, 2).perturb(&mut m, &x, &y);
        let (l_clean, _) = m.loss_and_input_grad(&x, &y);
        let (l_adv, _) = m.loss_and_input_grad(&adv, &y);
        assert!(l_adv > l_clean);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let a = Pgd::new(0.1, 4, 7).perturb(&mut m, &x, &y);
        let b = Pgd::new(0.1, 4, 7).perturb(&mut m, &x, &y);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_generally_differ() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        // one step with a small step size keeps the random-start influence
        let a = Pgd::new(0.2, 1, 1).with_step(0.01).perturb(&mut m, &x, &y);
        let b = Pgd::new(0.2, 1, 2).with_step(0.01).perturb(&mut m, &x, &y);
        assert_ne!(a, b);
    }

    #[test]
    fn id_reports_iterations() {
        assert_eq!(Pgd::new(0.1, 40, 0).id(), "pgd(40)");
    }
}
