//! The fast gradient sign method.

use crate::attack::Attack;
use crate::projection::signed_step;
use simpadv_nn::GradientModel;
use simpadv_tensor::Tensor;

/// FGSM (Goodfellow et al., 2015): one signed-gradient step of size ε.
///
/// `x_adv = clip(x + ε · sign(∇ₓ L(C(x), y)))`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fgsm {
    epsilon: f32,
}

impl Fgsm {
    /// Creates an FGSM attack with total budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        Fgsm { epsilon }
    }
}

impl Attack for Fgsm {
    fn perturb(&mut self, model: &mut dyn GradientModel, x: &Tensor, y: &[usize]) -> Tensor {
        signed_step(model, x, x, y, self.epsilon, self.epsilon)
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn id(&self) -> String {
        "fgsm".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::testmodel::{centred_batch, linear_model};
    use crate::projection::linf_distance;

    #[test]
    fn perturbation_is_exactly_epsilon_when_unclipped() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let mut atk = Fgsm::new(0.1);
        let adv = atk.perturb(&mut m, &x, &y);
        // every gradient coordinate of the linear model is nonzero, and the
        // batch is centred, so each pixel moves by the full ε
        let d = adv.sub(&x).abs();
        assert!(d.as_slice().iter().all(|&v| (v - 0.1).abs() < 1e-6));
    }

    #[test]
    fn increases_model_loss() {
        let mut m = linear_model();
        let (x, y) = centred_batch(4);
        let mut atk = Fgsm::new(0.2);
        let adv = atk.perturb(&mut m, &x, &y);
        use simpadv_nn::GradientModel;
        let (l0, _) = m.loss_and_input_grad(&x, &y);
        let (l1, _) = m.loss_and_input_grad(&adv, &y);
        assert!(l1 > l0);
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let mut m = linear_model();
        let (x, y) = centred_batch(2);
        let adv = Fgsm::new(0.0).perturb(&mut m, &x, &y);
        assert_eq!(adv, x);
    }

    #[test]
    fn stays_in_pixel_box() {
        let mut m = linear_model();
        let x = Tensor::from_vec(vec![0.0, 1.0, 0.02, 0.98], &[1, 4]);
        let adv = Fgsm::new(0.3).perturb(&mut m, &x, &[0]);
        assert!(adv.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(linf_distance(&adv, &x) <= 0.3 + 1e-6);
    }

    #[test]
    fn id_and_epsilon_accessors() {
        let atk = Fgsm::new(0.25);
        assert_eq!(atk.id(), "fgsm");
        assert_eq!(atk.epsilon(), 0.25);
    }
}
