//! Property-based tests: every attack must respect the l∞ budget and the
//! pixel box for arbitrary inputs, budgets and models.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_attacks::{
    l2_distance, linf_distance, project_ball, signed_step, Attack, Bim, FgmL2, Fgsm,
    LeastLikelyFgsm, MarginPgd, Mim, Pgd, PgdL2, RandomNoise,
};
use simpadv_nn::{Classifier, Dense, Relu, Sequential};
use simpadv_tensor::Tensor;

fn random_classifier(seed: u64, dim: usize, classes: usize) -> Classifier {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Box::new(Dense::new(dim, 12, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(12, classes, &mut rng)),
    ]);
    Classifier::new(net, classes)
}

fn batch(seed: u64, n: usize, dim: usize, classes: usize) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Tensor::rand_uniform(&mut rng, &[n, dim], 0.0, 1.0);
    let y = (0..n).map(|i| i % classes).collect();
    (x, y)
}

fn assert_valid(adv: &Tensor, x: &Tensor, eps: f32) {
    assert!(linf_distance(adv, x) <= eps + 1e-5, "budget violated");
    assert!(
        adv.as_slice().iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)),
        "pixel box violated"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fgsm_respects_constraints(seed in 0u64..500, eps in 0.0f32..0.5) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = Fgsm::new(eps).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn bim_respects_constraints(seed in 0u64..500, eps in 0.0f32..0.5, iters in 1usize..8) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = Bim::new(eps, iters).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn bim_with_oversized_step_respects_constraints(seed in 0u64..500, eps in 0.01f32..0.3) {
        // the proposed method's regime: step larger than ε/N
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = Bim::new(eps, 5).with_step(eps).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn pgd_respects_constraints(seed in 0u64..500, eps in 0.0f32..0.5, iters in 1usize..8) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = Pgd::new(eps, iters, seed).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn mim_respects_constraints(seed in 0u64..500, eps in 0.0f32..0.5, iters in 1usize..8) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = Mim::new(eps, iters, 1.0).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn noise_respects_constraints(seed in 0u64..500, eps in 0.0f32..0.5) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = RandomNoise::new(eps, seed).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn bim_iterates_all_respect_constraints(seed in 0u64..200, eps in 0.01f32..0.4) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 3, 6, 3);
        for it in Bim::new(eps, 6).iterates(&mut m, &x, &y) {
            assert_valid(&it, &x, eps);
        }
    }

    #[test]
    fn least_likely_fgsm_respects_constraints(seed in 0u64..500, eps in 0.0f32..0.5) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = LeastLikelyFgsm::new(eps).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn margin_pgd_respects_constraints(seed in 0u64..500, eps in 0.0f32..0.5, iters in 1usize..6) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        let adv = MarginPgd::new(eps, iters).perturb(&mut m, &x, &y);
        assert_valid(&adv, &x, eps);
    }

    #[test]
    fn l2_attacks_respect_l2_budget_and_box(seed in 0u64..500, eps in 0.0f32..2.0, iters in 1usize..6) {
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 1, 4, 6, 3);
        for adv in [
            FgmL2::new(eps).perturb(&mut m, &x, &y),
            PgdL2::new(eps, iters).perturb(&mut m, &x, &y),
        ] {
            prop_assert!(l2_distance(&adv, &x) <= eps + 1e-4, "l2 budget violated");
            prop_assert!(adv.as_slice().iter().all(|&v| (-1e-6..=1.0 + 1e-6).contains(&v)));
        }
    }

    // ---- projection primitives: the geometry every attack rests on ----

    #[test]
    fn project_ball_lands_in_ball_and_box(seed in 0u64..1000, eps in 0.0f32..0.5) {
        // Start far outside both the ball and the [0, 1] box.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[4, 6], -2.0, 3.0);
        let origin = Tensor::rand_uniform(&mut rng, &[4, 6], 0.0, 1.0);
        let p = project_ball(&x, &origin, eps);
        prop_assert!(linf_distance(&p, &origin) <= eps + 1e-6, "ball violated");
        prop_assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)), "box violated");
    }

    #[test]
    fn project_ball_zero_eps_collapses_to_origin(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[3, 5], -2.0, 3.0);
        let origin = Tensor::rand_uniform(&mut rng, &[3, 5], 0.0, 1.0);
        let p = project_ball(&x, &origin, 0.0);
        for (a, b) in p.as_slice().iter().zip(origin.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-6, "eps = 0 projection must return the origin");
        }
    }

    #[test]
    fn project_ball_is_idempotent(seed in 0u64..1000, eps in 0.0f32..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[3, 5], -2.0, 3.0);
        let origin = Tensor::rand_uniform(&mut rng, &[3, 5], 0.0, 1.0);
        let once = project_ball(&x, &origin, eps);
        let twice = project_ball(&once, &origin, eps);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-6, "projection must be idempotent");
        }
    }

    #[test]
    fn project_ball_fixes_interior_points(seed in 0u64..1000, eps in 0.05f32..0.5) {
        // A point already inside ball ∩ box must come back unchanged.
        let mut rng = StdRng::seed_from_u64(seed);
        let origin = Tensor::rand_uniform(&mut rng, &[3, 5], 0.3, 0.7);
        let noise = Tensor::rand_uniform(&mut rng, &[3, 5], -1.0, 1.0).mul_scalar(eps * 0.5);
        let x = origin.add(&noise).clamp(0.0, 1.0);
        let p = project_ball(&x, &origin, eps);
        for (a, b) in p.as_slice().iter().zip(x.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-6, "interior point moved by projection");
        }
    }

    #[test]
    fn signed_step_respects_ball_and_box(
        seed in 0u64..500,
        step in 0.0f32..0.4,
        eps in 0.0f32..0.4,
    ) {
        let mut m = random_classifier(seed, 6, 3);
        let (origin, y) = batch(seed + 1, 4, 6, 3);
        // The carried state may sit anywhere in the previous ball — or, after
        // a budget change, outside the current one.
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let carried = Tensor::rand_uniform(&mut rng, &[4, 6], -0.5, 1.5);
        let adv = signed_step(&mut m, &carried, &origin, &y, step, eps);
        assert_valid(&adv, &origin, eps);
    }

    #[test]
    fn signed_step_zero_eps_returns_clean(seed in 0u64..500, step in 0.0f32..0.4) {
        let mut m = random_classifier(seed, 6, 3);
        let (origin, y) = batch(seed + 1, 4, 6, 3);
        let adv = signed_step(&mut m, &origin, &origin, &y, step, 0.0);
        for (a, b) in adv.as_slice().iter().zip(origin.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-6, "eps = 0 must leave the clean image");
        }
    }

    #[test]
    fn attacks_never_decrease_loss_below_clean_minus_tolerance(seed in 0u64..100) {
        use simpadv_nn::GradientModel;
        // gradient attacks on a smooth model: adversarial loss >= clean loss
        let mut m = random_classifier(seed, 6, 3);
        let (x, y) = batch(seed + 3, 4, 6, 3);
        let (l0, _) = m.loss_and_input_grad(&x, &y);
        let adv = Bim::new(0.1, 4).perturb(&mut m, &x, &y);
        let (l1, _) = m.loss_and_input_grad(&adv, &y);
        prop_assert!(l1 >= l0 - 1e-4, "BIM reduced the loss: {l0} -> {l1}");
    }
}
