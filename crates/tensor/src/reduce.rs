//! Global and per-axis reductions.

use crate::error::TensorError;
use crate::shape::row_major_strides;
use crate::tensor::Tensor;

impl Tensor {
    // ------------------------------------------------------------------
    // Global reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (0 for an empty tensor).
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean over an empty tensor");
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        self.try_max().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::max`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyReduction`] on an empty tensor.
    pub fn try_max(&self) -> Result<f32, TensorError> {
        self.as_slice()
            .iter()
            .copied()
            .reduce(f32::max)
            .ok_or(TensorError::EmptyReduction { op: "max" })
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        self.try_min().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::min`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyReduction`] on an empty tensor.
    pub fn try_min(&self) -> Result<f32, TensorError> {
        self.as_slice()
            .iter()
            .copied()
            .reduce(f32::min)
            .ok_or(TensorError::EmptyReduction { op: "min" })
    }

    /// Flat index of the maximum element (first occurrence).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax over an empty tensor");
        let mut best = 0;
        let s = self.as_slice();
        for (i, &v) in s.iter().enumerate() {
            if v > s[best] {
                best = i;
            }
        }
        best
    }

    /// Population variance of all elements.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn variance(&self) -> f32 {
        let m = self.mean();
        self.as_slice().iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / self.len() as f32
    }

    /// Population standard deviation of all elements.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }

    // ------------------------------------------------------------------
    // Axis reductions
    // ------------------------------------------------------------------

    /// Sums along `axis`, removing that axis from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        self.reduce_axis(axis, 0.0, |acc, v| acc + v)
    }

    /// Means along `axis`, removing that axis from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has size 0.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "axis {axis} out of range for rank {}", self.rank());
        let n = self.shape()[axis];
        assert!(n > 0, "mean over an empty axis");
        self.sum_axis(axis).mul_scalar(1.0 / n as f32)
    }

    /// Maximum along `axis`, removing that axis from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has size 0.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank() && self.shape()[axis] > 0, "max over an empty or missing axis");
        self.reduce_axis(axis, f32::NEG_INFINITY, f32::max)
    }

    /// Per-row argmax of a 2-D tensor: for shape `[n, c]` returns the `n`
    /// column indices of each row's maximum.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows expects rank 2, got {:?}", self.shape());
        let (n, c) = (self.shape()[0], self.shape()[1]);
        assert!(c > 0, "argmax_rows with zero columns");
        let s = self.as_slice();
        (0..n)
            .map(|i| {
                let row = &s[i * c..(i + 1) * c];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    fn reduce_axis<F: Fn(f32, f32) -> f32>(&self, axis: usize, init: f32, f: F) -> Tensor {
        assert!(axis < self.rank(), "axis {axis} out of range for rank {}", self.rank());
        let shape = self.shape();
        let strides = row_major_strides(shape);
        let out_shape: Vec<usize> =
            shape.iter().enumerate().filter(|&(i, _)| i != axis).map(|(_, &d)| d).collect();
        let out_len: usize = out_shape.iter().product::<usize>().max(1);
        let mut out = vec![init; out_len];
        // outer = product of dims before axis, inner = product after
        let outer: usize = shape[..axis].iter().product();
        let inner: usize = shape[axis + 1..].iter().product();
        let n = shape[axis];
        let s = self.as_slice();
        let axis_stride = strides[axis];
        for o in 0..outer {
            for i in 0..inner {
                let base = o * n * inner + i;
                let mut acc = init;
                for k in 0..n {
                    acc = f(acc, s[base + k * axis_stride]);
                }
                out[o * inner + i] = acc;
            }
        }
        Tensor::from_vec(out, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tensor {
        Tensor::arange(6).reshape(&[2, 3]) // [[0,1,2],[3,4,5]]
    }

    #[test]
    fn global_reductions() {
        assert_eq!(t().sum(), 15.0);
        assert_eq!(t().mean(), 2.5);
        assert_eq!(t().max(), 5.0);
        assert_eq!(t().min(), 0.0);
        assert_eq!(t().argmax(), 5);
        assert!((t().variance() - 35.0 / 12.0).abs() < 1e-6);
        assert_eq!(Tensor::default().sum(), 0.0);
    }

    #[test]
    fn try_max_on_empty() {
        assert!(Tensor::default().try_max().is_err());
    }

    #[test]
    fn sum_axis_both_axes() {
        assert_eq!(t().sum_axis(0).as_slice(), &[3.0, 5.0, 7.0]);
        assert_eq!(t().sum_axis(1).as_slice(), &[3.0, 12.0]);
    }

    #[test]
    fn mean_axis_values() {
        assert_eq!(t().mean_axis(0).as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!(t().mean_axis(1).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn max_axis_values() {
        assert_eq!(t().max_axis(0).as_slice(), &[3.0, 4.0, 5.0]);
        assert_eq!(t().max_axis(1).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn axis_reduction_rank3() {
        let u = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s0 = u.sum_axis(0);
        assert_eq!(s0.shape(), &[3, 4]);
        assert_eq!(s0.at(&[0, 0]), 0.0 + 12.0);
        let s1 = u.sum_axis(1);
        assert_eq!(s1.shape(), &[2, 4]);
        assert_eq!(s1.at(&[0, 0]), 0.0 + 4.0 + 8.0);
        let s2 = u.sum_axis(2);
        assert_eq!(s2.shape(), &[2, 3]);
        assert_eq!(s2.at(&[1, 2]), 20.0 + 21.0 + 22.0 + 23.0);
    }

    #[test]
    fn argmax_rows_per_row() {
        let logits = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(logits.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn argmax_rows_ties_take_first() {
        let logits = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]);
        assert_eq!(logits.argmax_rows(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn sum_axis_out_of_range() {
        t().sum_axis(2);
    }
}
