//! Dense linear algebra: matrix multiplication variants, dot and outer
//! products.
//!
//! The matmul kernels use the cache-friendly `i-k-j` loop order; that is
//! within a small factor of a tuned BLAS for the matrix sizes that occur
//! (hundreds by hundreds). Products above [`PAR_WORK_THRESHOLD`] are
//! row-blocked across the global [`Runtime`]: every output row is
//! computed by the same per-row loop as the serial kernel and the blocks
//! are concatenated in row order, so parallel results are bitwise equal
//! to serial ones for any thread count.

use crate::error::TensorError;
use crate::tensor::Tensor;
use simpadv_runtime::Runtime;

/// Work size (`m * k * n` multiply-accumulates) below which the matmul
/// kernels stay serial: thread spawn overhead beats the parallel win for
/// small products.
const PAR_WORK_THRESHOLD: usize = 1 << 21;

/// Fixed fan-out of the row-blocked kernels. Chunk boundaries depend only
/// on the row count — never on the thread count — per the simpadv-runtime
/// determinism contract.
const KERNEL_CHUNKS: usize = 16;

/// Logical multiply-accumulate count of an `[m, k] x [k, n]` product —
/// the exact amount every matmul variant ticks into the trace clock.
/// Shape introspection for the kernel microbenchmark lab: the scoreboard
/// derives GFLOP/s from this, never from a measured counter.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    (m as u64) * (k as u64) * (n as u64)
}

/// Logical bytes an `[m, k] x [k, n]` product moves: both operands read
/// once, the output written once, at 4 bytes per `f32`. A lower bound
/// (cache re-reads are not modeled), used for the scoreboard's bytes/s.
pub fn matmul_bytes(m: usize, k: usize, n: usize) -> u64 {
    4 * ((m as u64) * (k as u64) + (k as u64) * (n as u64) + (m as u64) * (n as u64))
}

/// The runtime and row-chunk size to use for an `m`-row product with
/// `work = m * k * n`, or `None` to run serially.
fn parallel_plan(m: usize, k: usize, n: usize) -> Option<(Runtime, usize)> {
    let rt = Runtime::global();
    if rt.threads() > 1 && m > 1 && m.saturating_mul(k).saturating_mul(n) >= PAR_WORK_THRESHOLD {
        Some((rt, m.div_ceil(KERNEL_CHUNKS).max(1)))
    } else {
        None
    }
}

/// Concatenates per-chunk output row blocks (already in row order).
fn concat_blocks(blocks: Vec<Vec<f32>>, m: usize, n: usize) -> Tensor {
    let mut out = Vec::with_capacity(m * n);
    for block in blocks {
        out.extend_from_slice(&block);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Rows `rows` of `a @ b` (`a: [m, k]`, `b: [k, n]`), `i-k-j` order.
fn matmul_rows(a: &[f32], b: &[f32], rows: std::ops::Range<usize>, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows.len() * n];
    for (row_idx, i) in rows.enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[row_idx * n..(row_idx + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Rows `rows` of `aᵀ @ b` (`a: [k, m]`, `b: [k, n]`): for each output
/// row `i`, accumulates over `p` in increasing order with the same
/// zero-skip as the serial `p`-outer kernel, so per-element flop order —
/// and therefore the f32 result — is identical.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    rows: std::ops::Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; rows.len() * n];
    for (row_idx, i) in rows.enumerate() {
        let orow = &mut out[row_idx * n..(row_idx + 1) * n];
        for p in 0..k {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Rows `rows` of `a @ bᵀ` (`a: [m, k]`, `b: [n, k]`), dot per cell.
fn matmul_nt_rows(
    a: &[f32],
    b: &[f32],
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; rows.len() * n];
    for (row_idx, i) in rows.enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[row_idx * n..(row_idx + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    out
}

impl Tensor {
    /// Matrix product `self @ rhs` of two rank-2 tensors.
    ///
    /// Shapes: `[m, k] @ [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul(rhs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-2-D operands and
    /// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        check_rank2(self, "matmul")?;
        check_rank2(rhs, "matmul")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
                op: "matmul",
            });
        }
        simpadv_trace::clock::add_flops(matmul_flops(m, k, n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        if let Some((rt, chunk)) = parallel_plan(m, k, n) {
            let blocks = rt.par_chunks(m, chunk, |rows| matmul_rows(a, b, rows, k, n));
            return Ok(concat_blocks(blocks, m, n));
        }
        Ok(Tensor::from_vec(matmul_rows(a, b, 0..m, k, n), &[m, n]))
    }

    /// `selfᵀ @ rhs` without materializing the transpose.
    ///
    /// Shapes: `[k, m]ᵀ @ [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension
    /// disagrees.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul_tn(rhs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::matmul_tn`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-2-D operands and
    /// [`TensorError::ShapeMismatch`] when the shared dimension disagrees.
    pub fn try_matmul_tn(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        check_rank2(self, "matmul_tn")?;
        check_rank2(rhs, "matmul_tn")?;
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
                op: "matmul_tn",
            });
        }
        simpadv_trace::clock::add_flops(matmul_flops(m, k, n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        // out[i][j] = sum_p a[p][i] * b[p][j]
        if let Some((rt, chunk)) = parallel_plan(m, k, n) {
            let blocks = rt.par_chunks(m, chunk, |rows| matmul_tn_rows(a, b, rows, k, m, n));
            return Ok(concat_blocks(blocks, m, n));
        }
        Ok(Tensor::from_vec(matmul_tn_rows(a, b, 0..m, k, m, n), &[m, n]))
    }

    /// `self @ rhsᵀ` without materializing the transpose.
    ///
    /// Shapes: `[m, k] @ [n, k]ᵀ -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension
    /// disagrees.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul_nt(rhs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::matmul_nt`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-2-D operands and
    /// [`TensorError::ShapeMismatch`] when the shared dimension disagrees.
    pub fn try_matmul_nt(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        check_rank2(self, "matmul_nt")?;
        check_rank2(rhs, "matmul_nt")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (rhs.shape()[0], rhs.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
                op: "matmul_nt",
            });
        }
        simpadv_trace::clock::add_flops(matmul_flops(m, k, n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        if let Some((rt, chunk)) = parallel_plan(m, k, n) {
            let blocks = rt.par_chunks(m, chunk, |rows| matmul_nt_rows(a, b, rows, k, n));
            return Ok(concat_blocks(blocks, m, n));
        }
        Ok(Tensor::from_vec(matmul_nt_rows(a, b, 0..m, k, n), &[m, n]))
    }

    /// Inner (dot) product of two 1-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 1 or lengths differ.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot expects rank-1 tensors");
        assert_eq!(rhs.rank(), 1, "dot expects rank-1 tensors");
        assert_eq!(self.len(), rhs.len(), "dot length mismatch");
        self.as_slice().iter().zip(rhs.as_slice()).map(|(&a, &b)| a * b).sum()
    }

    /// Outer product of two 1-D tensors: `[m] ⊗ [n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 1.
    pub fn outer(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer expects rank-1 tensors");
        assert_eq!(rhs.rank(), 1, "outer expects rank-1 tensors");
        let (m, n) = (self.len(), rhs.len());
        let mut out = Vec::with_capacity(m * n);
        for &a in self.as_slice() {
            for &b in rhs.as_slice() {
                out.push(a * b);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// The Frobenius (l2) norm of the tensor.
    pub fn norm_l2(&self) -> f32 {
        self.as_slice().iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// The l∞ (maximum absolute value) norm of the tensor; 0 when empty.
    pub fn norm_linf(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(), TensorError> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, got: t.rank(), op });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::ones(&[3, 4]);
        let b = Tensor::ones(&[4, 5]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 5]);
        assert!(c.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn try_matmul_errors() {
        let a = Tensor::ones(&[2, 3]);
        assert!(a.try_matmul(&Tensor::ones(&[4, 2])).is_err());
        assert!(a.try_matmul(&Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::arange(6).reshape(&[3, 2]);
        let b = Tensor::arange(12).reshape(&[3, 4]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let b = Tensor::arange(12).reshape(&[4, 3]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn parallel_kernels_match_serial_bitwise() {
        use rand::{rngs::StdRng, SeedableRng};
        // Large enough to cross PAR_WORK_THRESHOLD (96*180*150 ≈ 2.6M).
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&mut rng, &[96, 180], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[180, 150], -1.0, 1.0);
        let products = |aa: &Tensor, bb: &Tensor| {
            (aa.matmul(bb), aa.transpose().matmul_tn(bb), aa.matmul_nt(&bb.transpose()))
        };
        simpadv_runtime::set_global_threads(1);
        let serial = products(&a, &b);
        for threads in [2, 4] {
            simpadv_runtime::set_global_threads(threads);
            let par = products(&a, &b);
            assert_eq!(par.0, serial.0, "matmul, threads={threads}");
            assert_eq!(par.1, serial.1, "matmul_tn, threads={threads}");
            assert_eq!(par.2, serial.2, "matmul_nt, threads={threads}");
        }
        simpadv_runtime::set_global_threads(1);
    }

    #[test]
    fn dot_and_outer() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[3, 3]);
        assert_eq!(o.at(&[2, 0]), 12.0);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_slice(&[3.0, -4.0]);
        assert_eq!(t.norm_l2(), 5.0);
        assert_eq!(t.norm_linf(), 4.0);
        assert_eq!(Tensor::default().norm_linf(), 0.0);
    }

    #[test]
    fn flop_formula_matches_the_clock_tick() {
        use simpadv_trace::clock;
        let a = Tensor::ones(&[3, 5]);
        let b = Tensor::ones(&[5, 7]);
        let before = clock::snapshot();
        let _ = a.matmul(&b);
        let delta = clock::snapshot().delta_since(&before);
        assert_eq!(delta.flops, matmul_flops(3, 5, 7));
        assert_eq!(matmul_flops(3, 5, 7), 105);
    }

    #[test]
    fn byte_formula_counts_operands_and_output_once() {
        // [2, 3] x [3, 4]: 6 + 12 + 8 floats at 4 bytes each
        assert_eq!(matmul_bytes(2, 3, 4), 4 * 26);
        assert_eq!(matmul_bytes(0, 3, 4), 4 * 12);
    }
}
