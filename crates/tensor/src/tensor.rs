//! The [`Tensor`] type: storage, constructors, shape manipulation, slicing.

use crate::error::TensorError;
use crate::rng::NormalSampler;
use crate::shape::row_major_strides;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, contiguous tensor of `f32` values.
///
/// `Tensor` is the single data type flowing through the whole `simpadv`
/// stack: images, activations, gradients, weights and adversarial
/// perturbations are all `Tensor`s.
///
/// # Example
///
/// ```
/// use simpadv_tensor::Tensor;
///
/// let x = Tensor::zeros(&[2, 3]);
/// assert_eq!(x.shape(), &[2, 3]);
/// assert_eq!(x.len(), 6);
/// let y = x.map(|v| v + 1.0);
/// assert_eq!(y.sum(), 6.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor { data: vec![value; len], shape: shape.to_vec() }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor with the same shape as `other`, filled with zeros.
    pub fn zeros_like(other: &Tensor) -> Self {
        Self::zeros(other.shape())
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: vec![] }
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] when the buffer length
    /// disagrees with the shape.
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let want: usize = shape.iter().product();
        if data.len() != want {
            return Err(TensorError::DataLengthMismatch { data_len: data.len(), shape_len: want });
        }
        Ok(Tensor { data, shape: shape.to_vec() })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// Identity matrix of size `n`×`n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// 1-D tensor `[0, 1, ..., n-1]` as `f32`.
    pub fn arange(n: usize) -> Self {
        Tensor { data: (0..n).map(|i| i as f32).collect(), shape: vec![n] }
    }

    /// `n` evenly spaced values from `start` to `end` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n > 0, "linspace needs at least one point");
        if n == 1 {
            return Tensor::from_slice(&[start]);
        }
        let step = (end - start) / (n - 1) as f32;
        Tensor { data: (0..n).map(|i| start + step * i as f32).collect(), shape: vec![n] }
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], lo: f32, hi: f32) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.random_range(lo..hi)).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    /// Tensor of i.i.d. normal samples with the given mean and standard
    /// deviation (Box–Muller).
    pub fn rand_normal<R: Rng + ?Sized>(
        rng: &mut R,
        shape: &[usize],
        mean: f32,
        std_dev: f32,
    ) -> Self {
        let len: usize = shape.iter().product();
        let mut sampler = NormalSampler::new(mean, std_dev);
        let data = (0..len).map(|_| sampler.sample(rng)).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The dimension list.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        let flat = crate::shape::Shape::new(&self.shape).flat_index(index);
        self.data[flat]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = crate::shape::Shape::new(&self.shape).flat_index(index);
        self.data[flat] = value;
    }

    /// The single value of a scalar (rank-0 or one-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a one-element tensor, got {:?}", self.shape);
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        self.try_reshape(shape).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::reshape`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] when counts differ.
    pub fn try_reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let want: usize = shape.iter().product();
        if want != self.len() {
            return Err(TensorError::ElementCountMismatch { have: self.len(), want });
        }
        Ok(Tensor { data: self.data.clone(), shape: shape.to_vec() })
    }

    /// Reshapes in place (no data movement).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let want: usize = shape.iter().product();
        assert_eq!(
            want,
            self.len(),
            "cannot reshape {} elements into {:?} ({} elements)",
            self.len(),
            shape,
            want
        );
        self.shape = shape.to_vec();
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor { data: self.data.clone(), shape: vec![self.len()] }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose expects rank 2, got {:?}", self.shape);
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; self.len()];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { data: out, shape: vec![c, r] }
    }

    /// Generalized axis permutation.
    ///
    /// `perm` must be a permutation of `0..rank`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a valid permutation of the axes.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            assert!(p < self.rank() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let old_strides = row_major_strides(&self.shape);
        let new_strides: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let mut out = vec![0.0f32; self.len()];
        let mut index = vec![0usize; self.rank()];
        for slot in out.iter_mut() {
            let mut src = 0;
            for (axis, &i) in index.iter().enumerate() {
                src += i * new_strides[axis];
            }
            *slot = self.data[src];
            // increment odometer over new_shape
            for axis in (0..self.rank()).rev() {
                index[axis] += 1;
                if index[axis] < new_shape[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        Tensor { data: out, shape: new_shape }
    }

    // ------------------------------------------------------------------
    // Row / batch slicing (axis 0)
    // ------------------------------------------------------------------

    /// Copies the `i`-th slice along axis 0 (keeping the remaining axes).
    ///
    /// For a `[n, d...]` tensor this returns a `[d...]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        assert!(self.rank() >= 1, "row() needs rank >= 1");
        let n = self.shape[0];
        assert!(i < n, "row index {i} out of bounds for axis of size {n}");
        let stride: usize = self.shape[1..].iter().product();
        let data = self.data[i * stride..(i + 1) * stride].to_vec();
        Tensor { data, shape: self.shape[1..].to_vec() }
    }

    /// Copies rows `range.start..range.end` along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn rows(&self, range: std::ops::Range<usize>) -> Tensor {
        assert!(self.rank() >= 1, "rows() needs rank >= 1");
        let n = self.shape[0];
        assert!(
            range.start <= range.end && range.end <= n,
            "row range {range:?} out of bounds for axis of size {n}"
        );
        let stride: usize = self.shape[1..].iter().product();
        let data = self.data[range.start * stride..range.end * stride].to_vec();
        let mut shape = self.shape.clone();
        shape[0] = range.end - range.start;
        Tensor { data, shape }
    }

    /// Gathers rows along axis 0 by index, producing a new tensor with
    /// `indices.len()` rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert!(self.rank() >= 1, "gather_rows() needs rank >= 1");
        let n = self.shape[0];
        let stride: usize = self.shape[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * stride);
        for &i in indices {
            assert!(i < n, "gather index {i} out of bounds for axis of size {n}");
            data.extend_from_slice(&self.data[i * stride..(i + 1) * stride]);
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Tensor { data, shape }
    }

    /// Overwrites the `i`-th slice along axis 0 with `value`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or `i` is out of bounds.
    pub fn set_row(&mut self, i: usize, value: &Tensor) {
        assert!(self.rank() >= 1, "set_row() needs rank >= 1");
        let n = self.shape[0];
        assert!(i < n, "row index {i} out of bounds for axis of size {n}");
        assert_eq!(value.shape(), &self.shape[1..], "set_row shape mismatch");
        let stride: usize = self.shape[1..].iter().product();
        self.data[i * stride..(i + 1) * stride].copy_from_slice(&value.data);
    }

    /// Concatenates tensors along axis 0. All inputs must agree on the
    /// remaining axes.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing shapes disagree.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows needs at least one tensor");
        let tail = &parts[0].shape[1..];
        let mut total = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "concat_rows trailing-shape mismatch");
            total += p.shape[0];
        }
        let mut data = Vec::with_capacity(total * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let mut shape = parts[0].shape.clone();
        shape[0] = total;
        Tensor { data, shape }
    }

    /// Splits along axis 0 into chunks of at most `chunk` rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0` or the tensor is rank 0.
    pub fn split_rows(&self, chunk: usize) -> Vec<Tensor> {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(self.rank() >= 1, "split_rows() needs rank >= 1");
        let n = self.shape[0];
        let mut out = Vec::with_capacity(n.div_ceil(chunk));
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            out.push(self.rows(start..end));
            start = end;
        }
        out
    }

    /// Whether every element is finite (no NaN / infinity) — the cheap
    /// invariant check training loops assert on.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Number of nonzero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Stacks rank-`r` tensors into a rank-`r+1` tensor along a new axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes disagree.
    pub fn stack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack needs at least one tensor");
        let inner = parts[0].shape.clone();
        let mut data = Vec::with_capacity(parts.len() * parts[0].len());
        for p in parts {
            assert_eq!(p.shape, inner, "stack shape mismatch");
            data.extend_from_slice(&p.data);
        }
        let mut shape = vec![parts.len()];
        shape.extend_from_slice(&inner);
        Tensor { data, shape }
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor { data: Vec::new(), shape: vec![0] }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        const MAX: usize = 16;
        if self.len() <= MAX {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}..; {} elems]", &self.data[..MAX.min(self.len())], self.len())
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rank() == 2 {
            let (r, c) = (self.shape[0], self.shape[1]);
            for i in 0..r.min(8) {
                for j in 0..c.min(12) {
                    write!(f, "{:9.4}", self.data[i * c + j])?;
                }
                if c > 12 {
                    write!(f, " ...")?;
                }
                writeln!(f)?;
            }
            if r > 8 {
                writeln!(f, "... ({r} rows)")?;
            }
            Ok(())
        } else {
            write!(f, "{self:?}")
        }
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects an iterator of values into a 1-D tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let n = data.len();
        Tensor { data, shape: vec![n] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_basic() {
        assert_eq!(Tensor::zeros(&[2, 3]).len(), 6);
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2], 2.5).as_slice(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
        assert_eq!(Tensor::eye(3).sum(), 3.0);
        assert_eq!(Tensor::arange(4).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.as_slice(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::linspace(2.0, 9.0, 1).as_slice(), &[2.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        let back = t.reshape(&[12]);
        assert_eq!(back.as_slice(), Tensor::arange(12).as_slice());
        assert!(t.try_reshape(&[5]).is_err());
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.0);
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.as_slice()[5], 7.0);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn permute_matches_transpose() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.permute(&[1, 0]), t.transpose());
        let u = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = u.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), u.at(&[1, 2, 3]));
    }

    #[test]
    fn row_ops() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        assert_eq!(t.row(1).as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(t.rows(1..3).shape(), &[2, 4]);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.row(0).as_slice(), t.row(2).as_slice());
        assert_eq!(g.row(1).as_slice(), t.row(0).as_slice());
    }

    #[test]
    fn set_row_overwrites() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set_row(1, &Tensor::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(t.row(1).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(0).as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_and_stack() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[1, 2]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.sum(), 4.0);

        let s = Tensor::stack(&[&Tensor::ones(&[2]), &Tensor::zeros(&[2])]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.sum(), 2.0);
    }

    #[test]
    fn split_rows_partitions() {
        let t = Tensor::arange(10).reshape(&[5, 2]);
        let parts = t.split_rows(2);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].shape(), &[2, 2]);
        assert_eq!(parts[2].shape(), &[1, 2]);
        assert_eq!(Tensor::concat_rows(&parts.iter().collect::<Vec<_>>()), t);
    }

    #[test]
    fn finite_and_nonzero_checks() {
        assert!(Tensor::ones(&[3]).all_finite());
        let mut t = Tensor::ones(&[3]);
        t.as_mut_slice()[1] = f32::NAN;
        assert!(!t.all_finite());
        t.as_mut_slice()[1] = f32::INFINITY;
        assert!(!t.all_finite());
        assert_eq!(Tensor::from_slice(&[0.0, 1.0, 0.0, -2.0]).count_nonzero(), 2);
    }

    #[test]
    fn rand_constructors_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&mut r1, &[16], 0.0, 1.0);
        let b = Tensor::rand_uniform(&mut r2, &[16], 0.0, 1.0);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn rand_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::rand_normal(&mut rng, &[20_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn debug_display_nonempty() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(!format!("{t:?}").is_empty());
        assert!(!format!("{t}").is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{big:?}").contains("100 elems"));
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tensor = (0..5).map(|i| i as f32).collect();
        assert_eq!(t.shape(), &[5]);
        assert_eq!(t.sum(), 10.0);
    }
}
