//! Random-sampling helpers built on a caller-supplied [`rand::Rng`].
//!
//! The crate deliberately owns its normal sampler (Box–Muller) instead of
//! depending on `rand_distr`; the whole `simpadv` stack only needs uniform
//! and normal draws plus Fisher–Yates shuffles.

use rand::{Rng, RngExt};

/// Draws one sample from `N(mean, std_dev²)` using the Box–Muller transform.
///
/// For bulk sampling prefer [`NormalSampler`], which caches the second
/// variate of each Box–Muller pair.
pub fn normal_f32<R: Rng + ?Sized>(rng: &mut R, mean: f32, std_dev: f32) -> f32 {
    let mut s = NormalSampler::new(mean, std_dev);
    s.sample(rng)
}

/// A Box–Muller normal sampler that caches the spare variate.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use simpadv_tensor::NormalSampler;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sampler = NormalSampler::new(0.0, 1.0);
/// let x = sampler.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct NormalSampler {
    mean: f32,
    std_dev: f32,
    spare: Option<f32>,
}

impl NormalSampler {
    /// Creates a sampler for `N(mean, std_dev²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn new(mean: f32, std_dev: f32) -> Self {
        assert!(std_dev >= 0.0 && std_dev.is_finite(), "invalid std_dev {std_dev}");
        NormalSampler { mean, std_dev, spare: None }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        let unit = if let Some(s) = self.spare.take() {
            s
        } else {
            // Box–Muller on (0, 1] uniforms; 1 - u keeps u1 away from 0.
            let u1: f32 = 1.0 - rng.random::<f32>();
            let u2: f32 = rng.random::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        };
        self.mean + self.std_dev * unit
    }
}

/// Returns `0..n` shuffled by Fisher–Yates under the given RNG.
///
/// Used to shuffle minibatch order deterministically under a seed.
pub fn shuffled_indices<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_finite_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let mut s1 = NormalSampler::new(0.0, 1.0);
        let mut s2 = NormalSampler::new(0.0, 1.0);
        for _ in 0..100 {
            let a = s1.sample(&mut r1);
            let b = s2.sample(&mut r2);
            assert!(a.is_finite());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = NormalSampler::new(5.0, 0.5);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| s.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn normal_sampler_rejects_negative_std() {
        NormalSampler::new(0.0, -1.0);
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = NormalSampler::new(2.0, 0.0);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 2.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = shuffled_indices(&mut rng, 100);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // with overwhelming probability not identity
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_empty_and_single() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(shuffled_indices(&mut rng, 0).is_empty());
        assert_eq!(shuffled_indices(&mut rng, 1), vec![0]);
    }
}
