//! # simpadv-tensor
//!
//! A small, dependency-light dense tensor library for `f32` data, built for
//! the `simpadv` reproduction of *"Using Intuition from Empirical Properties
//! to Simplify Adversarial Training Defense"* (Liu et al., 2019).
//!
//! The library provides exactly what CPU-scale neural-network training and
//! gradient-based adversarial attacks need:
//!
//! * row-major contiguous [`Tensor`]s of arbitrary rank,
//! * NumPy-style broadcasting for element-wise arithmetic,
//! * 2-D matrix multiplication (with transpose variants) for dense layers,
//! * `im2col`/`col2im` lowering for convolution layers,
//! * axis and global reductions (`sum`, `mean`, `max`, `argmax`, ...),
//! * seeded random constructors (uniform and Box–Muller normal).
//!
//! Everything is deterministic under a caller-provided RNG; the crate never
//! touches a global random source.
//!
//! ## Example
//!
//! ```
//! use simpadv_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! let row_sums = c.sum_axis(1);
//! assert_eq!(row_sums.as_slice(), &[3.0, 7.0]);
//! ```
//!
//! ## Error handling
//!
//! Shape-sensitive operations have two flavours: a panicking method (the
//! ergonomic default, used pervasively in hot paths) and a fallible `try_*`
//! variant returning [`TensorError`] for call sites that process untrusted
//! shapes. Panicking methods document their panic conditions.

mod conv;
mod error;
mod linalg;
mod ops;
mod reduce;
mod rng;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry};
pub use error::TensorError;
pub use linalg::{matmul_bytes, matmul_flops};
pub use rng::{normal_f32, shuffled_indices, NormalSampler};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
