//! Element-wise arithmetic, broadcasting binary operations and operator
//! overloads for [`Tensor`].

use crate::error::TensorError;
use crate::shape::{broadcast_shapes, broadcast_strides};
use crate::tensor::Tensor;
use std::ops::{Add, Div, Mul, Neg, Sub};

impl Tensor {
    // ------------------------------------------------------------------
    // Unary maps
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.as_slice().iter().map(|&v| f(v)).collect();
        Tensor::from_vec(data, self.shape())
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Element-wise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Element-wise sign: -1, 0 or +1.
    ///
    /// Unlike [`f32::signum`], the sign of `0.0` is `0.0` — this matches the
    /// `sign(∇)` convention used by FGSM/BIM, where a zero gradient must not
    /// perturb the pixel.
    pub fn sign(&self) -> Tensor {
        self.map(|v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise integer power.
    pub fn powi(&self, n: i32) -> Tensor {
        self.map(|v| v.powi(n))
    }

    /// Element-wise clamp into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
        self.map(|v| v.clamp(lo, hi))
    }

    /// In-place clamp into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
        self.map_in_place(|v| v.clamp(lo, hi));
    }

    // ------------------------------------------------------------------
    // Scalar arithmetic
    // ------------------------------------------------------------------

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place `self += s * other` (the optimizer/attack hot path).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, s: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += s * b;
        }
    }

    /// In-place element-wise scale: `self *= s`.
    pub fn scale_in_place(&mut self, s: f32) {
        self.map_in_place(|v| v * s);
    }

    // ------------------------------------------------------------------
    // Binary element-wise ops with broadcasting
    // ------------------------------------------------------------------

    /// Applies `f` element-wise over the broadcast of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics when the shapes cannot be broadcast together.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        self.try_zip_map(other, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Tensor::zip_map`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes cannot be
    /// broadcast together.
    pub fn try_zip_map<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        f: F,
    ) -> Result<Tensor, TensorError> {
        // Fast path: identical shapes.
        if self.shape() == other.shape() {
            let data =
                self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| f(a, b)).collect();
            return Ok(Tensor::from_vec(data, self.shape()));
        }
        let out_shape = broadcast_shapes(self.shape(), other.shape())?;
        let sa = broadcast_strides(self.shape(), &out_shape);
        let sb = broadcast_strides(other.shape(), &out_shape);
        let len: usize = out_shape.iter().product();
        let mut data = Vec::with_capacity(len);
        let mut index = vec![0usize; out_shape.len()];
        let (da, db) = (self.as_slice(), other.as_slice());
        for _ in 0..len {
            let mut ia = 0;
            let mut ib = 0;
            for (axis, &i) in index.iter().enumerate() {
                ia += i * sa[axis];
                ib += i * sb[axis];
            }
            data.push(f(da[ia], db[ib]));
            for axis in (0..out_shape.len()).rev() {
                index[axis] += 1;
                if index[axis] < out_shape[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        Ok(Tensor::from_vec(data, &out_shape))
    }

    /// Element-wise addition with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics when the shapes cannot be broadcast together.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics when the shapes cannot be broadcast together.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics when the shapes cannot be broadcast together.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics when the shapes cannot be broadcast together.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Element-wise maximum with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics when the shapes cannot be broadcast together.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, f32::max)
    }

    /// Element-wise minimum with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics when the shapes cannot be broadcast together.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, f32::min)
    }

    /// In-place element-wise addition (no broadcasting).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// In-place element-wise multiplication (no broadcasting).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "mul_assign shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a *= b;
        }
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.map_in_place(|_| value);
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $tensor_method:ident) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                Tensor::$tensor_method(self, rhs)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.zip_map(&Tensor::scalar(rhs), |a, b| $trait::$method(a, b))
            }
        }
    };
}

impl_binop!(Add, add, add);
impl_binop!(Sub, sub, sub);
impl_binop!(Mul, mul, mul);
impl_binop!(Div, div, div);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        Tensor::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x3() -> Tensor {
        Tensor::arange(6).reshape(&[2, 3])
    }

    #[test]
    fn map_and_map_in_place() {
        let t = t2x3().map(|v| v * 2.0);
        assert_eq!(t.as_slice(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        let mut u = t2x3();
        u.map_in_place(|v| v + 1.0);
        assert_eq!(u.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn sign_semantics() {
        let t = Tensor::from_slice(&[-3.0, 0.0, 5.0]);
        assert_eq!(t.sign().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_slice(&[-1.0, 0.5, 2.0]).clamp(0.0, 1.0);
        assert_eq!(t.as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn clamp_validates_interval() {
        Tensor::zeros(&[1]).clamp(1.0, 0.0);
    }

    #[test]
    fn same_shape_binary_ops() {
        let a = t2x3();
        let b = Tensor::ones(&[2, 3]);
        assert_eq!(a.add(&b).sum(), a.sum() + 6.0);
        assert_eq!(a.sub(&a).sum(), 0.0);
        assert_eq!(a.mul(&b), a);
        assert_eq!(b.div(&b), b);
    }

    #[test]
    fn broadcasting_row_vector() {
        let a = t2x3();
        let row = Tensor::from_slice(&[10.0, 20.0, 30.0]);
        let c = a.add(&row);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn broadcasting_column_vector() {
        let a = t2x3();
        let col = Tensor::from_vec(vec![100.0, 200.0], &[2, 1]);
        let c = a.add(&col);
        assert_eq!(c.as_slice(), &[100.0, 101.0, 102.0, 203.0, 204.0, 205.0]);
    }

    #[test]
    fn broadcasting_scalar_tensor() {
        let a = t2x3();
        let s = Tensor::scalar(1.0);
        assert_eq!(a.add(&s).sum(), a.sum() + 6.0);
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn incompatible_broadcast_panics() {
        let _ = t2x3().add(&Tensor::zeros(&[4]));
    }

    #[test]
    fn maximum_minimum() {
        let a = Tensor::from_slice(&[1.0, 5.0]);
        let b = Tensor::from_slice(&[3.0, 2.0]);
        assert_eq!(a.maximum(&b).as_slice(), &[3.0, 5.0]);
        assert_eq!(a.minimum(&b).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_hot_path() {
        let mut a = Tensor::ones(&[3]);
        a.add_scaled(&Tensor::from_slice(&[1.0, 2.0, 3.0]), 0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn in_place_assign_ops() {
        let mut a = Tensor::ones(&[2]);
        a.add_assign(&Tensor::from_slice(&[1.0, 2.0]));
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        a.mul_assign(&Tensor::from_slice(&[2.0, 0.5]));
        assert_eq!(a.as_slice(), &[4.0, 1.5]);
        a.fill(9.0);
        assert_eq!(a.as_slice(), &[9.0, 9.0]);
    }

    #[test]
    fn operator_overloads() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        assert_eq!((&a + &b).as_slice(), &[3.0, 4.0]);
        assert_eq!((&b - &a).as_slice(), &[1.0, 2.0]);
        assert_eq!((&b * &b).as_slice(), &[4.0, 9.0]);
        assert_eq!((&b / &b).as_slice(), &[1.0, 1.0]);
        assert_eq!((&b * 2.0).as_slice(), &[4.0, 6.0]);
        assert_eq!((-&b).as_slice(), &[-2.0, -3.0]);
    }

    #[test]
    fn unary_math() {
        let t = Tensor::from_slice(&[1.0, 4.0]);
        assert_eq!(t.sqrt().as_slice(), &[1.0, 2.0]);
        assert_eq!(t.powi(2).as_slice(), &[1.0, 16.0]);
        let e = Tensor::from_slice(&[0.0]).exp();
        assert_eq!(e.as_slice(), &[1.0]);
        assert!((Tensor::from_slice(&[std::f32::consts::E]).ln().item() - 1.0).abs() < 1e-6);
        assert_eq!(Tensor::from_slice(&[-2.0]).abs().as_slice(), &[2.0]);
    }
}
