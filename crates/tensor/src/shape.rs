//! Shape arithmetic: element counts, strides, and NumPy-style broadcasting.

use crate::error::TensorError;

/// A thin helper around a dimension list.
///
/// [`crate::Tensor`] stores its shape as a `Vec<usize>`; `Shape` groups the
/// pure shape arithmetic (strides, broadcasting, flat indexing) so it can be
/// tested in isolation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    ///
    /// `strides()[k]` is the flat-index distance between consecutive
    /// elements along axis `k`.
    pub fn strides(&self) -> Vec<usize> {
        row_major_strides(&self.dims)
    }

    /// Converts a multi-index into a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any component is out of
    /// bounds.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "multi-index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut flat = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} with size {d}");
            flat += i * strides[axis];
        }
        flat
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

/// Row-major strides for a dimension list.
pub(crate) fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Computes the broadcast shape of two dimension lists under NumPy rules.
///
/// Trailing axes are aligned; each pair of sizes must be equal or one of
/// them must be 1.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Vec<usize>, TensorError> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(TensorError::ShapeMismatch {
                lhs: a.to_vec(),
                rhs: b.to_vec(),
                op: "broadcast",
            });
        };
    }
    Ok(out)
}

/// Strides to iterate a tensor of shape `from` as if it had the broadcast
/// shape `to`: axes of size 1 (or missing leading axes) get stride 0.
///
/// `from` must be broadcast-compatible with `to` and `to` must have rank at
/// least `from.len()`.
pub(crate) fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    debug_assert!(to.len() >= from.len());
    let base = row_major_strides(from);
    let offset = to.len() - from.len();
    let mut out = vec![0usize; to.len()];
    for i in 0..from.len() {
        out[offset + i] = if from[i] == 1 { 0 } else { base[i] };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_matches_manual() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.flat_index(&[0, 0, 0]), 0);
        assert_eq!(s.flat_index(&[1, 2, 3]), 23);
        assert_eq!(s.flat_index(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_checks_bounds() {
        Shape::new(&[2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_scalar_like() {
        assert_eq!(broadcast_shapes(&[2, 3], &[1]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[1], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4]).unwrap(), vec![4]);
    }

    #[test]
    fn broadcast_mixed_axes() {
        assert_eq!(broadcast_shapes(&[2, 1, 4], &[3, 1]).unwrap(), vec![2, 3, 4]);
        assert_eq!(broadcast_shapes(&[8, 1], &[1, 5]).unwrap(), vec![8, 5]);
    }

    #[test]
    fn broadcast_incompatible() {
        assert!(broadcast_shapes(&[2, 3], &[4]).is_err());
        assert!(broadcast_shapes(&[2], &[3]).is_err());
    }

    #[test]
    fn broadcast_strides_zeroes_expanded_axes() {
        assert_eq!(broadcast_strides(&[3, 1], &[2, 3, 4]), vec![0, 1, 0]);
        assert_eq!(broadcast_strides(&[4], &[2, 3, 4]), vec![0, 0, 1]);
        assert_eq!(broadcast_strides(&[2, 3, 4], &[2, 3, 4]), vec![12, 4, 1]);
    }

    #[test]
    fn shape_len_and_rank() {
        let s = Shape::new(&[2, 0, 4]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.rank(), 3);
        let t = Shape::from(vec![7]);
        assert_eq!(t.len(), 7);
    }
}
