//! Convolution lowering: `im2col` / `col2im` and output-geometry math.
//!
//! `simpadv-nn`'s `Conv2d` layer computes convolutions as a single matrix
//! multiplication over patch columns, the standard CPU strategy. The adjoint
//! (`col2im`) scatters column gradients back into image gradients, which is
//! exactly what the backward pass of the convolution needs.

use crate::tensor::Tensor;
use simpadv_runtime::Runtime;

/// Output elements below which the lowering loops stay serial.
const PAR_ELEM_THRESHOLD: usize = 1 << 18;

/// Fixed fan-out of the batched lowering loops; chunk boundaries depend
/// only on the batch size, per the simpadv-runtime determinism contract.
const BATCH_CHUNKS: usize = 16;

/// The runtime and image-chunk size for an `n`-image lowering producing
/// `elems` output floats, or `None` to run serially.
fn parallel_plan(n: usize, elems: usize) -> Option<(Runtime, usize)> {
    let rt = Runtime::global();
    if rt.threads() > 1 && n > 1 && elems >= PAR_ELEM_THRESHOLD {
        Some((rt, n.div_ceil(BATCH_CHUNKS).max(1)))
    } else {
        None
    }
}

/// Geometry of a 2-D convolution: input/kernel sizes, stride and padding.
///
/// # Example
///
/// ```
/// use simpadv_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(28, 28, 3, 3, 1, 1);
/// assert_eq!((g.out_h(), g.out_w()), (28, 28)); // "same" padding
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    in_h: usize,
    in_w: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (after padding) does not fit in the input or the
    /// stride is zero.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_h + 2 * padding >= k_h && in_w + 2 * padding >= k_w,
            "kernel {k_h}x{k_w} larger than padded input {}x{}",
            in_h + 2 * padding,
            in_w + 2 * padding
        );
        Conv2dGeometry { in_h, in_w, k_h, k_w, stride, padding }
    }

    /// Input height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Kernel height.
    pub fn k_h(&self) -> usize {
        self.k_h
    }

    /// Kernel width.
    pub fn k_w(&self) -> usize {
        self.k_w
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding applied to each border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.k_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.k_w) / self.stride + 1
    }

    /// Shape `[rows, cols]` of the patch-column matrix [`im2col`]
    /// produces for an `n`-image, `channels`-channel batch. Shape
    /// introspection for the kernel microbenchmark lab.
    pub fn lowered_shape(&self, n: usize, channels: usize) -> (usize, usize) {
        (n * self.out_h() * self.out_w(), channels * self.k_h * self.k_w)
    }

    /// Logical bytes one [`im2col`] lowering moves for an `n`-image,
    /// `channels`-channel batch: the input read once, the patch-column
    /// matrix written once, at 4 bytes per `f32`. The lowering is pure
    /// data movement, so this — not a flop count — is the scoreboard's
    /// throughput basis.
    pub fn im2col_bytes(&self, n: usize, channels: usize) -> u64 {
        let input = (n * channels * self.in_h * self.in_w) as u64;
        let (rows, cols) = self.lowered_shape(n, channels);
        4 * (input + (rows as u64) * (cols as u64))
    }
}

/// Lowers a batched image tensor `[n, c, h, w]` into patch columns.
///
/// The result has shape `[n * out_h * out_w, c * k_h * k_w]`: one row per
/// output pixel, one column per kernel tap. A convolution with weight
/// `[c_out, c*k_h*k_w]` is then `cols.matmul_nt(weight)`.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its spatial dims disagree with `geom`.
pub fn im2col(input: &Tensor, channels: usize, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(input.rank(), 4, "im2col expects [n, c, h, w], got {:?}", input.shape());
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    assert_eq!(c, channels, "im2col channel mismatch");
    assert_eq!((h, w), (geom.in_h, geom.in_w), "im2col spatial-dim mismatch");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let (kh, kw) = (geom.k_h, geom.k_w);
    let cols_per_row = c * kh * kw;
    let data = input.as_slice();

    // Patch columns for images `images`: one contiguous row block per
    // image, so per-image blocks concatenate into the full lowering.
    let image_block = |images: std::ops::Range<usize>| -> Vec<f32> {
        let mut out = vec![0.0f32; images.len() * oh * ow * cols_per_row];
        let pad = geom.padding as isize;
        for (block_b, b) in images.enumerate() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((block_b * oh + oy) * ow + ox) * cols_per_row;
                    for ch in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * geom.stride + ky) as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue; // stays zero (zero padding)
                            }
                            for kx in 0..kw {
                                let ix = (ox * geom.stride + kx) as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let src = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                                let dst = row + (ch * kh + ky) * kw + kx;
                                out[dst] = data[src];
                            }
                        }
                    }
                }
            }
        }
        out
    };

    let total = n * oh * ow * cols_per_row;
    let out = match parallel_plan(n, total) {
        Some((rt, chunk)) => {
            let blocks = rt.par_chunks(n, chunk, image_block);
            let mut out = Vec::with_capacity(total);
            for block in blocks {
                out.extend_from_slice(&block);
            }
            out
        }
        None => image_block(0..n),
    };
    Tensor::from_vec(out, &[n * oh * ow, cols_per_row])
}

/// Adjoint of [`im2col`]: scatters patch-column gradients back into an image
/// gradient of shape `[n, c, h, w]`, summing overlapping contributions.
///
/// # Panics
///
/// Panics if `cols` does not have the shape [`im2col`] would produce for
/// `(n, channels, geom)`.
pub fn col2im(cols: &Tensor, n: usize, channels: usize, geom: &Conv2dGeometry) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let (kh, kw) = (geom.k_h, geom.k_w);
    let (h, w) = (geom.in_h, geom.in_w);
    let cols_per_row = channels * kh * kw;
    assert_eq!(
        cols.shape(),
        &[n * oh * ow, cols_per_row],
        "col2im shape mismatch: expected [{}, {}], got {:?}",
        n * oh * ow,
        cols_per_row,
        cols.shape()
    );
    let data = cols.as_slice();

    // Image gradients for images `images`: overlap sums only ever cross
    // pixels of the *same* image, so per-image blocks are independent and
    // concatenate into the full scatter with the serial summation order.
    let image_block = |images: std::ops::Range<usize>| -> Vec<f32> {
        let mut out = vec![0.0f32; images.len() * channels * h * w];
        let pad = geom.padding as isize;
        for (block_b, b) in images.enumerate() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((b * oh + oy) * ow + ox) * cols_per_row;
                    for ch in 0..channels {
                        for ky in 0..kh {
                            let iy = (oy * geom.stride + ky) as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * geom.stride + kx) as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let dst =
                                    ((block_b * channels + ch) * h + iy as usize) * w + ix as usize;
                                let src = row + (ch * kh + ky) * kw + kx;
                                out[dst] += data[src];
                            }
                        }
                    }
                }
            }
        }
        out
    };

    let total = n * channels * h * w;
    let out = match parallel_plan(n, total.max(n * oh * ow * cols_per_row)) {
        Some((rt, chunk)) => {
            let blocks = rt.par_chunks(n, chunk, image_block);
            let mut out = Vec::with_capacity(total);
            for block in blocks {
                out.extend_from_slice(&block);
            }
            out
        }
        None => image_block(0..n),
    };
    Tensor::from_vec(out, &[n, channels, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(28, 28, 3, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (28, 28));
    }

    #[test]
    fn geometry_valid_padding_and_stride() {
        let g = Conv2dGeometry::new(28, 28, 5, 5, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (24, 24));
        let g2 = Conv2dGeometry::new(28, 28, 2, 2, 2, 0);
        assert_eq!((g2.out_h(), g2.out_w()), (14, 14));
    }

    #[test]
    fn lowered_shape_matches_im2col_output() {
        let g = Conv2dGeometry::new(6, 6, 3, 3, 1, 1);
        let input = Tensor::ones(&[2, 3, 6, 6]);
        let cols = im2col(&input, 3, &g);
        let (rows, width) = g.lowered_shape(2, 3);
        assert_eq!(cols.shape(), &[rows, width]);
        // bytes: the input read once + the lowering written once
        let expected = 4 * (input.len() as u64 + (rows * width) as u64);
        assert_eq!(g.im2col_bytes(2, 3), expected);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn geometry_rejects_zero_stride() {
        Conv2dGeometry::new(8, 8, 3, 3, 0, 0);
    }

    #[test]
    #[should_panic(expected = "larger than")]
    fn geometry_rejects_oversized_kernel() {
        Conv2dGeometry::new(2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: columns are just pixels.
        let x = Tensor::arange(8).reshape(&[1, 2, 2, 2]);
        let g = Conv2dGeometry::new(2, 2, 1, 1, 1, 0);
        let cols = im2col(&x, 2, &g);
        assert_eq!(cols.shape(), &[4, 2]);
        // row p holds (channel0 pixel p, channel1 pixel p)
        assert_eq!(cols.row(0).as_slice(), &[0.0, 4.0]);
        assert_eq!(cols.row(3).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn im2col_extracts_patches() {
        // single channel 3x3 image, 2x2 kernel, stride 1, no padding
        let x = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let g = Conv2dGeometry::new(3, 3, 2, 2, 1, 0);
        let cols = im2col(&x, 1, &g);
        assert_eq!(cols.shape(), &[4, 4]);
        assert_eq!(cols.row(0).as_slice(), &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(cols.row(3).as_slice(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_zero_padding_borders() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = Conv2dGeometry::new(2, 2, 3, 3, 1, 1);
        let cols = im2col(&x, 1, &g);
        assert_eq!(cols.shape(), &[4, 9]);
        // top-left output pixel: only bottom-right 2x2 of kernel hits image
        let r0 = cols.row(0);
        assert_eq!(r0.sum(), 4.0);
        assert_eq!(r0.as_slice()[0], 0.0); // padded corner
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y
        let x = Tensor::arange(18).reshape(&[1, 2, 3, 3]).map(|v| (v * 0.37).sin());
        let g = Conv2dGeometry::new(3, 3, 2, 2, 1, 1);
        let cols = im2col(&x, 2, &g);
        let y = cols.map(|v| (v + 1.0) * 0.5 + 0.1);
        let back = col2im(&y, 1, 2, &g);
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_counts_overlaps() {
        // all-ones columns scattered back count how many patches cover a pixel
        let g = Conv2dGeometry::new(3, 3, 2, 2, 1, 0);
        let cols = Tensor::ones(&[4, 4]);
        let img = col2im(&cols, 1, 1, &g);
        // centre pixel is covered by all 4 patches
        assert_eq!(img.at(&[0, 0, 1, 1]), 4.0);
        // corners by exactly 1
        assert_eq!(img.at(&[0, 0, 0, 0]), 1.0);
    }
}
