//! Error type for fallible tensor operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the fallible (`try_*`) tensor operations.
///
/// The panicking counterparts raise the same conditions as panics with the
/// message produced by this type's [`fmt::Display`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two shapes were expected to match (element-wise op, assignment) but
    /// did not and could not be broadcast together.
    ShapeMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
        /// Operation that failed.
        op: &'static str,
    },
    /// A reshape was requested to a shape with a different element count.
    ElementCountMismatch {
        /// Number of elements in the source tensor.
        have: usize,
        /// Number of elements the requested shape implies.
        want: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// The operation requires a specific rank (e.g. matmul requires 2-D).
    RankMismatch {
        /// Rank the operation expects.
        expected: usize,
        /// Rank it was given.
        got: usize,
        /// Operation that failed.
        op: &'static str,
    },
    /// A constructor was given data whose length disagrees with the shape.
    DataLengthMismatch {
        /// Length of the provided buffer.
        data_len: usize,
        /// Element count implied by the shape.
        shape_len: usize,
    },
    /// An index was out of bounds along some axis.
    IndexOutOfBounds {
        /// The offending flat or axis index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
    /// An empty tensor was passed to a reduction that needs elements.
    EmptyReduction {
        /// Operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::ElementCountMismatch { have, want } => {
                write!(f, "cannot reshape {have} elements into a shape of {want} elements")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::RankMismatch { expected, got, op } => {
                write!(f, "{op} expects rank {expected}, got rank {got}")
            }
            TensorError::DataLengthMismatch { data_len, shape_len } => {
                write!(f, "data length {data_len} does not match shape element count {shape_len}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds ({bound})")
            }
            TensorError::EmptyReduction { op } => {
                write!(f, "{op} over an empty tensor")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch { lhs: vec![2, 3], rhs: vec![4], op: "add" };
        let msg = e.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(TensorError::EmptyReduction { op: "max" });
        assert!(e.to_string().contains("max"));
    }
}
