//! Property-based tests for the tensor algebra.

use proptest::prelude::*;
use simpadv_tensor::{broadcast_shapes, col2im, im2col, Conv2dGeometry, Tensor};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_shape(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    prop::collection::vec(-10.0f32..10.0, len).prop_map(move |data| Tensor::from_vec(data, &shape))
}

fn small_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_with_shape)
}

proptest! {
    #[test]
    fn reshape_preserves_data(t in small_tensor()) {
        let flat = t.reshape(&[t.len()]);
        prop_assert_eq!(flat.as_slice(), t.as_slice());
        let back = flat.reshape(t.shape());
        prop_assert_eq!(back, t);
    }

    #[test]
    fn add_commutes(shape in small_shape(), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &shape, -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &shape, -1.0, 1.0);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn sub_is_add_neg(t in small_tensor()) {
        let z = t.sub(&t);
        prop_assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let d = t.add(&t.neg());
        prop_assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clamp_is_idempotent_and_bounded(t in small_tensor(), lo in -5.0f32..0.0, width in 0.0f32..5.0) {
        let hi = lo + width;
        let c = t.clamp(lo, hi);
        prop_assert!(c.as_slice().iter().all(|&v| (lo..=hi).contains(&v)));
        prop_assert_eq!(c.clamp(lo, hi), c);
    }

    #[test]
    fn sign_values_in_set(t in small_tensor()) {
        prop_assert!(t.sign().as_slice().iter().all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
    }

    #[test]
    fn transpose_is_involution(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Tensor::rand_uniform(&mut rng, &[r, c], -1.0, 1.0);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop(r in 1usize..5, c in 1usize..5, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Tensor::rand_uniform(&mut rng, &[r, c], -1.0, 1.0);
        prop_assert_eq!(m.matmul(&Tensor::eye(c)), m.clone());
        prop_assert_eq!(Tensor::eye(r).matmul(&m), m);
    }

    #[test]
    fn matmul_transpose_variants_agree(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let c = a.matmul(&b);
        let c_tn = a.transpose().matmul_tn(&b);
        let c_nt = a.matmul_nt(&b.transpose());
        for (x, y) in c.as_slice().iter().zip(c_tn.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in c.as_slice().iter().zip(c_nt.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn sum_axis_totals_match_global(t in small_tensor(), axis_pick in 0usize..3) {
        let axis = axis_pick % t.rank();
        let reduced = t.sum_axis(axis);
        prop_assert!((reduced.sum() - t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs()));
    }

    #[test]
    fn broadcast_shapes_symmetric(a in small_shape(), b in small_shape()) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast not symmetric"),
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 2usize..6,
        w in 2usize..6,
        k in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Conv2dGeometry::new(h, w, k, k, 1, pad);
        let x = Tensor::rand_uniform(&mut rng, &[2, 1, h, w], -1.0, 1.0);
        let cols = im2col(&x, 1, &g);
        let y = Tensor::rand_uniform(&mut rng, cols.shape(), -1.0, 1.0);
        let back = col2im(&y, 2, 1, &g);
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn gather_rows_roundtrip(n in 1usize..6, d in 1usize..5, seed in 0u64..500) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&mut rng, &[n, d], -1.0, 1.0);
        let idx: Vec<usize> = (0..n).collect();
        prop_assert_eq!(t.gather_rows(&idx), t);
    }
}
