//! `SIMPADV_FAILPOINTS` environment smoke: CI runs this binary with
//! `SIMPADV_FAILPOINTS=pre-write=error` and the write must fail with the
//! injected error; under a plain `cargo test` (no variable) the same
//! write must succeed. The registry snapshots the variable on first use,
//! so this lives in its own test binary where that first use is here.

use simpadv_resilience::{atomic_write, PersistError};

#[test]
fn env_armed_failpoint_governs_the_write_path() {
    let dir = std::env::temp_dir().join("simpadv-env-failpoint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.bin");
    // The temp dir outlives the process; a prior unarmed run's output
    // must not satisfy (or trip) this run's assertions.
    let _ = std::fs::remove_file(&path);
    let armed = std::env::var("SIMPADV_FAILPOINTS")
        .map(|spec| spec.contains("pre-write=error"))
        .unwrap_or(false);
    let result = atomic_write(&path, b"payload");
    if armed {
        assert!(
            matches!(result, Err(PersistError::Injected { ref site }) if site == "pre-write"),
            "env-armed pre-write must inject: {result:?}"
        );
        assert!(!path.exists(), "nothing may reach the final path");
    } else {
        result.unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
    }
}
