//! Property tests for the retry backoff schedule
//! (`simpadv_resilience::backoff`): the contract every supervisor retry
//! loop leans on is that the delay sequence is (1) monotone
//! non-decreasing, (2) capped, (3) budget-bounded in total, and (4)
//! bitwise reproducible from the campaign seed alone.

use proptest::prelude::*;
use simpadv_resilience::backoff::{derive_seed, BackoffPolicy};

/// Draws a structurally valid policy from three free parameters.
fn policy(base_us: u64, cap_extra_us: u64, jitter_permille: u64) -> BackoffPolicy {
    BackoffPolicy::new(base_us, base_us.saturating_add(cap_extra_us))
        .with_jitter_permille(jitter_permille)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn delays_are_monotone_non_decreasing(
        base in 1u64..1_000_000,
        cap_extra in 0u64..100_000_000,
        jitter in 0u64..=1000,
        seed in 0u64..u64::MAX,
    ) {
        let schedule = policy(base, cap_extra, jitter).schedule_us(seed, 40);
        for (i, w) in schedule.windows(2).enumerate() {
            prop_assert!(
                w[1] >= w[0],
                "retry {} delay {} < retry {} delay {}", i + 1, w[1], i, w[0]
            );
        }
    }

    #[test]
    fn delays_never_exceed_the_cap_and_never_undershoot_the_base(
        base in 1u64..1_000_000,
        cap_extra in 0u64..100_000_000,
        jitter in 0u64..=1000,
        seed in 0u64..u64::MAX,
        retry in 0u32..200,
    ) {
        let p = policy(base, cap_extra, jitter);
        let d = p.delay_us(seed, retry);
        prop_assert!(d <= p.cap_us, "delay {d} above cap {}", p.cap_us);
        prop_assert!(d >= p.base_us.min(p.cap_us), "delay {d} below base {}", p.base_us);
    }

    #[test]
    fn total_delay_respects_a_retry_budget(
        base in 1u64..1_000_000,
        cap_extra in 0u64..10_000_000,
        jitter in 0u64..=1000,
        seed in 0u64..u64::MAX,
        budget in 0u32..64,
    ) {
        let p = policy(base, cap_extra, jitter);
        let total = p.total_delay_us(seed, budget);
        prop_assert!(
            total <= u64::from(budget).saturating_mul(p.cap_us),
            "budget of {budget} retries slept {total}us, above {budget} * cap"
        );
        let by_hand: u64 = p.schedule_us(seed, budget).iter().sum();
        prop_assert_eq!(total, by_hand, "total must telescope over the schedule");
    }

    #[test]
    fn schedule_is_bitwise_reproducible_from_the_seed(
        base in 1u64..1_000_000,
        cap_extra in 0u64..100_000_000,
        jitter in 0u64..=1000,
        campaign_seed in 0u64..u64::MAX,
        cell in 0u64..10_000,
    ) {
        let p = policy(base, cap_extra, jitter);
        let seed = derive_seed(campaign_seed, cell);
        // A resumed orchestrator reconstructs the policy and seed from the
        // manifest; its schedule must be the killed one's, bit for bit.
        prop_assert_eq!(p.schedule_us(seed, 32), p.schedule_us(derive_seed(campaign_seed, cell), 32));
        // Retry n's delay is a pure function of (policy, seed, n): asking
        // for a longer schedule never rewrites the prefix.
        let short = p.schedule_us(seed, 8);
        let long = p.schedule_us(seed, 32);
        prop_assert_eq!(&long[..8], &short[..]);
    }

    #[test]
    fn jittered_delay_stays_inside_the_declared_stretch(
        base in 1u64..1_000_000,
        jitter in 0u64..=1000,
        seed in 0u64..u64::MAX,
        retry in 0u32..20,
    ) {
        // Uncapped policy: the jitter envelope is visible directly.
        let p = BackoffPolicy::new(base, u64::MAX).with_jitter_permille(jitter);
        let raw = base << retry;
        let d = p.delay_us(seed, retry);
        prop_assert!(d >= raw, "jitter may only stretch, never shrink");
        // Permille arithmetic rounds down, so the bound is exact.
        prop_assert!(
            d <= raw + raw / 1000 * jitter + raw % 1000,
            "delay {d} above raw {raw} + {jitter} permille"
        );
    }
}
