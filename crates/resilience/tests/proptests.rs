//! Property tests for the corruption-handling contract: *any* single-byte
//! flip or truncation of a sealed checkpoint is detected, and the store
//! falls back to the previous generation.

use proptest::collection::vec;
use proptest::prelude::*;
use simpadv_resilience::{seal, unseal, CheckpointStore};

fn unique_dir(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("simpadv-prop-{tag}-{}-{case}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sealed_round_trip(payload in vec(0u8..=255, 0..256)) {
        let sealed = seal(&payload);
        prop_assert_eq!(unseal(&sealed).unwrap(), payload.as_slice());
    }

    #[test]
    fn any_single_byte_flip_is_detected(
        payload in vec(0u8..=255, 1..200),
        pos_seed in 0u64..u64::MAX,
        bit in 0u32..8,
    ) {
        let sealed = seal(&payload);
        let pos = (pos_seed % sealed.len() as u64) as usize;
        let mut damaged = sealed.clone();
        damaged[pos] ^= 1u8 << bit;
        prop_assert!(
            unseal(&damaged).is_err(),
            "flip of bit {} at byte {} undetected", bit, pos
        );
    }

    #[test]
    fn any_truncation_is_detected(
        payload in vec(0u8..=255, 1..200),
        cut_seed in 0u64..u64::MAX,
    ) {
        let sealed = seal(&payload);
        let cut = (cut_seed % sealed.len() as u64) as usize; // strictly shorter
        prop_assert!(unseal(&sealed[..cut]).is_err(), "truncation to {} undetected", cut);
    }

    #[test]
    fn store_falls_back_to_previous_generation(
        old_payload in vec(0u8..=255, 1..64),
        new_payload in vec(0u8..=255, 1..64),
        pos_seed in 0u64..u64::MAX,
        case in 0u64..u64::MAX,
    ) {
        let dir = unique_dir("fallback", case);
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        let old_generation = store.save(&old_payload).unwrap();
        let new_generation = store.save(&new_payload).unwrap();

        // Damage the newest generation at an arbitrary byte.
        let path = dir.join(format!("ckpt-{new_generation:08}.ckpt"));
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1;
        std::fs::write(&path, &bytes).unwrap();

        let (generation, payload) = store.load_latest_valid().unwrap().unwrap();
        prop_assert_eq!(generation, old_generation);
        prop_assert_eq!(payload, old_payload);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
