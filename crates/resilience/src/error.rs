//! The [`PersistError`] type shared by every durable-IO path in the
//! workspace.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong while persisting or recovering state.
///
/// The variants are deliberately fine-grained: recovery code needs to
/// distinguish *detected corruption* (fall back to an older generation)
/// from *environmental IO failure* (retry or surface) from *logical
/// mismatch* (refuse to resume).
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system IO error at a named site (`"create-temp"`,
    /// `"write"`, `"fsync"`, `"rename"`, `"list"`, ...).
    Io {
        /// The IO site that failed.
        site: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A failpoint forced an error at the named site (test-only paths).
    Injected {
        /// The failpoint site that fired.
        site: String,
    },
    /// The envelope header line is missing or unparsable.
    BadHeader {
        /// Human-readable description of what was wrong.
        detail: String,
    },
    /// The envelope advertises a format version this build cannot read.
    Version {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// Payload checksum does not match the sealed header.
    Corrupt {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 computed over the payload actually on disk.
        found: u32,
    },
    /// Payload is shorter than the sealed header promised.
    Truncated {
        /// Byte length recorded in the header.
        expected: usize,
        /// Byte length actually present.
        found: usize,
    },
    /// Serialization to JSON failed.
    Encode(String),
    /// Deserialization from JSON failed.
    Decode(String),
    /// A checkpoint directory holds no generation that passes validation.
    NoValidGeneration {
        /// The directory that was scanned.
        dir: PathBuf,
    },
    /// A tensor about to be persisted (or just restored) holds NaN/Inf.
    NonFinite {
        /// Name of the offending entry (layer parameter, aux batch, ...).
        name: String,
    },
    /// A resumed snapshot does not match the live run configuration.
    Mismatch {
        /// Which field disagreed (`"trainer"`, `"config"`, `"data"`...).
        what: String,
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { site, source } => write!(f, "io error at {site}: {source}"),
            PersistError::Injected { site } => write!(f, "injected fault at failpoint {site}"),
            PersistError::BadHeader { detail } => write!(f, "bad envelope header: {detail}"),
            PersistError::Version { found, supported } => {
                write!(f, "unsupported envelope version {found} (supported <= {supported})")
            }
            PersistError::Corrupt { expected, found } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload is {found:#010x}"
            ),
            PersistError::Truncated { expected, found } => {
                write!(f, "truncated payload: header says {expected} bytes, found {found}")
            }
            PersistError::Encode(msg) => write!(f, "encode error: {msg}"),
            PersistError::Decode(msg) => write!(f, "decode error: {msg}"),
            PersistError::NoValidGeneration { dir } => {
                write!(f, "no valid checkpoint generation in {}", dir.display())
            }
            PersistError::NonFinite { name } => {
                write!(f, "non-finite value in tensor {name:?}")
            }
            PersistError::Mismatch { what, detail } => {
                write!(f, "resume mismatch on {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PersistError {
    /// Wraps an OS error with the IO site where it happened.
    pub fn io(site: &str, source: std::io::Error) -> Self {
        PersistError::Io { site: site.to_string(), source }
    }

    /// True when the error means *the bytes on disk are wrong* (checksum,
    /// truncation, header or version damage) rather than an environmental
    /// failure. Detected damage triggers generation fallback; IO errors
    /// propagate.
    pub fn is_detected_damage(&self) -> bool {
        matches!(
            self,
            PersistError::BadHeader { .. }
                | PersistError::Version { .. }
                | PersistError::Corrupt { .. }
                | PersistError::Truncated { .. }
                | PersistError::Decode(_)
        )
    }
}

impl From<PersistError> for std::io::Error {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io { source, .. } => source,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PersistError::Corrupt { expected: 0xdead_beef, found: 0x1234_5678 };
        let s = e.to_string();
        assert!(s.contains("0xdeadbeef"), "{s}");
        assert!(s.contains("0x12345678"), "{s}");
        assert!(e.is_detected_damage());
        assert!(!PersistError::io("write", std::io::Error::other("x")).is_detected_damage());
    }

    #[test]
    fn io_conversion_preserves_message() {
        let e = PersistError::Truncated { expected: 10, found: 3 };
        let io: std::io::Error = e.into();
        assert!(io.to_string().contains("truncated"));
    }
}
