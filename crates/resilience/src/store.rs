//! Generation-numbered checkpoint directory with retention and fallback.
//!
//! A [`CheckpointStore`] owns one directory of files named
//! `ckpt-XXXXXXXX.ckpt` (zero-padded generation number). Saving always
//! creates a *new* generation via the sealed-envelope atomic write, then
//! prunes old generations down to the retention budget. Loading scans
//! generations newest-first and returns the first one whose envelope
//! validates, so a crash during (or damage after) the latest save falls
//! back to the previous good snapshot instead of failing the run.

use crate::atomic::atomic_write;
use crate::envelope::{seal, unseal};
use crate::error::PersistError;
use std::fs;
use std::path::{Path, PathBuf};

/// Default number of newest generations kept on disk.
pub const DEFAULT_KEEP: usize = 3;

/// A directory of checksummed, generation-numbered checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if absent) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| PersistError::io("create-dir", e))?;
        Ok(CheckpointStore { dir, keep: DEFAULT_KEEP })
    }

    /// Overrides the retention budget (minimum 1).
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:08}.ckpt"))
    }

    fn parse_generation(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let digits = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
        digits.parse().ok()
    }

    /// All generation numbers present on disk (valid or not), ascending.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be listed.
    pub fn generations(&self) -> Result<Vec<u64>, PersistError> {
        let mut gens = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| PersistError::io("list", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| PersistError::io("list", e))?;
            if let Some(g) = Self::parse_generation(&entry.path()) {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Seals `payload` and writes it as a new generation, then applies
    /// retention. Returns the new generation number.
    ///
    /// Retention runs only after the save fully succeeded, so an injected
    /// fault can never reduce the set of valid generations.
    ///
    /// # Errors
    ///
    /// Propagates write-path errors; the previous generations remain
    /// untouched in that case.
    pub fn save(&self, payload: &[u8]) -> Result<u64, PersistError> {
        let generation = self.generations()?.last().copied().map_or(1, |g| g + 1);
        let _span = simpadv_trace::span!("checkpoint/save", generation = generation);
        atomic_write(&self.file_for(generation), &seal(payload))?;
        simpadv_trace::counter("resilience/checkpoint_saved", 1);
        self.prune()?;
        Ok(generation)
    }

    /// Deletes the oldest generations beyond the retention budget.
    fn prune(&self) -> Result<(), PersistError> {
        let gens = self.generations()?;
        if gens.len() > self.keep {
            for &g in &gens[..gens.len() - self.keep] {
                fs::remove_file(self.file_for(g)).map_err(|e| PersistError::io("prune", e))?;
                simpadv_trace::counter("resilience/checkpoint_pruned", 1);
            }
        }
        Ok(())
    }

    /// Loads and validates one specific generation.
    ///
    /// # Errors
    ///
    /// IO errors reading the file, or detected-damage errors from the
    /// envelope check.
    pub fn load(&self, generation: u64) -> Result<Vec<u8>, PersistError> {
        let bytes = fs::read(self.file_for(generation)).map_err(|e| PersistError::io("read", e))?;
        Ok(unseal(&bytes)?.to_vec())
    }

    /// Loads the newest generation that passes validation, skipping (but
    /// not deleting) damaged ones. Returns `Ok(None)` for an empty store.
    ///
    /// # Errors
    ///
    /// [`PersistError::NoValidGeneration`] when generations exist but
    /// none validates; [`PersistError::Io`] on directory-listing failure.
    pub fn load_latest_valid(&self) -> Result<Option<(u64, Vec<u8>)>, PersistError> {
        let gens = self.generations()?;
        if gens.is_empty() {
            return Ok(None);
        }
        for &g in gens.iter().rev() {
            match self.load(g) {
                Ok(payload) => {
                    simpadv_trace::counter("resilience/checkpoint_loaded", 1);
                    return Ok(Some((g, payload)));
                }
                Err(e) => {
                    simpadv_trace::counter_with(
                        "resilience/checkpoint_skipped",
                        1,
                        &[("reason", simpadv_trace::FieldValue::from(e.to_string()))],
                    );
                }
            }
        }
        Err(PersistError::NoValidGeneration { dir: self.dir.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpstore(tag: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("simpadv-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap().with_keep(keep)
    }

    #[test]
    fn save_load_round_trip_and_generation_order() {
        let store = tmpstore("roundtrip", 3);
        assert_eq!(store.load_latest_valid().unwrap(), None, "empty store");
        assert_eq!(store.save(b"one").unwrap(), 1);
        assert_eq!(store.save(b"two").unwrap(), 2);
        let (generation, payload) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!((generation, payload.as_slice()), (2, b"two".as_slice()));
        assert_eq!(store.load(1).unwrap(), b"one");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn retention_keeps_newest() {
        let store = tmpstore("retention", 2);
        for i in 0..5u8 {
            store.save(&[i]).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![4, 5]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn damaged_latest_falls_back() {
        let store = tmpstore("fallback", 3);
        store.save(b"good").unwrap();
        store.save(b"newer").unwrap();
        // Corrupt generation 2 in place (flip one payload byte).
        let path = store.dir().join("ckpt-00000002.ckpt");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (generation, payload) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!((generation, payload.as_slice()), (1, b"good".as_slice()));
        // A truncated gen-3 on top of that is skipped too.
        fs::write(store.dir().join("ckpt-00000003.ckpt"), b"{\"magic\"").unwrap();
        let (generation, _) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(generation, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn all_damaged_is_an_explicit_error() {
        let store = tmpstore("alldamaged", 3);
        store.save(b"x").unwrap();
        fs::write(store.dir().join("ckpt-00000001.ckpt"), b"garbage").unwrap();
        let err = store.load_latest_valid().unwrap_err();
        assert!(matches!(err, PersistError::NoValidGeneration { .. }));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn next_generation_counts_past_damaged_files() {
        let store = tmpstore("numbering", 3);
        store.save(b"a").unwrap();
        fs::write(store.dir().join("ckpt-00000009.ckpt"), b"garbage").unwrap();
        assert_eq!(store.save(b"b").unwrap(), 10, "numbering never reuses a name");
        let _ = fs::remove_dir_all(store.dir());
    }
}
