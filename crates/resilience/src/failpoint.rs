//! Failpoints: deterministic fault injection at named IO sites.
//!
//! The atomic-write path consults this registry at five fixed sites; a
//! test (or the `SIMPADV_FAILPOINTS` environment variable) can arm any
//! site with an action:
//!
//! | action    | effect at the site                                    |
//! |-----------|-------------------------------------------------------|
//! | `error`   | the operation fails with [`PersistError::Injected`]   |
//! | `short:N` | only the first `N` payload bytes are written (silent) |
//! | `flip:N`  | bit 0 of payload byte `N % len` is flipped (silent)   |
//!
//! Env syntax: `SIMPADV_FAILPOINTS=site=action[*count],site=action...`
//! where the optional `*count` disarms the site after it has fired that
//! many times (default: fires every time until cleared). Example:
//!
//! ```text
//! SIMPADV_FAILPOINTS=pre-rename=error*1,corrupt=flip:7
//! ```
//!
//! [`PersistError::Injected`]: crate::PersistError::Injected

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The IO sites the atomic-write path exposes, in execution order.
///
/// * `pre-write` — before the temp file is created (nothing on disk yet)
/// * `mid-write` — while the payload streams into the temp file
/// * `pre-rename` — temp file durable, final name not yet updated
/// * `post-rename` — final name updated, retention not yet run
/// * `corrupt` — silent payload damage before the bytes leave memory
pub const SITES: [&str; 5] = ["pre-write", "mid-write", "pre-rename", "post-rename", "corrupt"];

/// What an armed failpoint does when its site is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with [`crate::PersistError::Injected`].
    Error,
    /// Write only the first `N` bytes of the payload, then carry on as if
    /// the write succeeded (simulates a torn write reaching the final
    /// file through a non-atomic path).
    Short(usize),
    /// Flip bit 0 of payload byte `N % len` before writing (simulates
    /// silent media corruption).
    Flip(usize),
}

#[derive(Debug, Clone, Copy)]
struct Arm {
    action: Action,
    /// `None` fires forever; `Some(n)` disarms after `n` firings.
    remaining: Option<u32>,
}

fn registry() -> MutexGuard<'static, BTreeMap<String, Arm>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arm>>> = OnceLock::new();
    let lock = REGISTRY.get_or_init(|| {
        let mut map = BTreeMap::new();
        if let Ok(spec) = std::env::var("SIMPADV_FAILPOINTS") {
            // Environment damage is a test-harness configuration error;
            // report it loudly on the error stream but do not panic (the
            // registry lives in library code).
            if let Err(bad) = parse_spec_into(&spec, &mut map) {
                simpadv_trace::counter_with(
                    "resilience/failpoint_env_rejected",
                    1,
                    &[("spec", simpadv_trace::FieldValue::from(bad.as_str()))],
                );
                map.clear();
            }
        }
        Mutex::new(map)
    });
    lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn parse_action(spec: &str) -> Option<Action> {
    if spec == "error" {
        return Some(Action::Error);
    }
    if let Some(n) = spec.strip_prefix("short:") {
        return n.parse().ok().map(Action::Short);
    }
    if let Some(n) = spec.strip_prefix("flip:") {
        return n.parse().ok().map(Action::Flip);
    }
    None
}

fn parse_spec_into(spec: &str, map: &mut BTreeMap<String, Arm>) -> Result<(), String> {
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (site, action_spec) = part.split_once('=').ok_or_else(|| part.to_string())?;
        if !SITES.contains(&site) {
            return Err(part.to_string());
        }
        let (action_spec, remaining) = match action_spec.split_once('*') {
            Some((a, n)) => (a, Some(n.parse::<u32>().map_err(|_| part.to_string())?)),
            None => (action_spec, None),
        };
        let action = parse_action(action_spec).ok_or_else(|| part.to_string())?;
        map.insert(site.to_string(), Arm { action, remaining });
    }
    Ok(())
}

/// Arms `site` with `action_spec` (e.g. `"error"`, `"short:12"`,
/// `"flip:3"`, `"error*1"`). Replaces any previous arm for the site.
///
/// # Errors
///
/// Returns the rejected fragment when the site is unknown or the action
/// spec does not parse.
pub fn arm(site: &str, action_spec: &str) -> Result<(), String> {
    let mut map = BTreeMap::new();
    parse_spec_into(&format!("{site}={action_spec}"), &mut map)?;
    registry().extend(map);
    Ok(())
}

/// Disarms `site`; a no-op when it was not armed.
pub fn disarm(site: &str) {
    registry().remove(site);
}

/// Disarms every site.
pub fn disarm_all() {
    registry().clear();
}

/// The sites every fault-matrix test should iterate over.
pub fn registered_sites() -> &'static [&'static str] {
    &SITES
}

/// Consulted by the IO path: returns the action to apply at `site`, if
/// armed, decrementing a bounded fire count.
pub(crate) fn hit(site: &str) -> Option<Action> {
    let mut map = registry();
    let arm = map.get_mut(site)?;
    let action = arm.action;
    match &mut arm.remaining {
        None => {}
        Some(0) => return None,
        Some(n) => {
            *n -= 1;
            if *n == 0 {
                map.remove(site);
            }
        }
    }
    simpadv_trace::counter_with(
        "resilience/failpoint_fired",
        1,
        &[("site", simpadv_trace::FieldValue::from(site))],
    );
    Some(action)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_hit_disarm_cycle() {
        disarm_all();
        assert_eq!(hit("pre-write"), None);
        arm("pre-write", "error").unwrap();
        assert_eq!(hit("pre-write"), Some(Action::Error));
        assert_eq!(hit("pre-write"), Some(Action::Error), "unbounded arms persist");
        disarm("pre-write");
        assert_eq!(hit("pre-write"), None);
    }

    #[test]
    fn bounded_arm_expires() {
        disarm_all();
        arm("mid-write", "short:4*2").unwrap();
        assert_eq!(hit("mid-write"), Some(Action::Short(4)));
        assert_eq!(hit("mid-write"), Some(Action::Short(4)));
        assert_eq!(hit("mid-write"), None, "fire count exhausted");
    }

    #[test]
    fn rejects_unknown_sites_and_actions() {
        assert!(arm("no-such-site", "error").is_err());
        assert!(arm("pre-write", "explode").is_err());
        assert!(arm("pre-write", "short:x").is_err());
        assert!(arm("pre-write", "error*x").is_err());
    }

    #[test]
    fn spec_parser_handles_lists() {
        let mut map = BTreeMap::new();
        parse_spec_into("pre-rename=error*1, corrupt=flip:7", &mut map).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map["corrupt"].action, Action::Flip(7));
        assert_eq!(map["pre-rename"].remaining, Some(1));
    }
}
