//! # simpadv-resilience
//!
//! Crash-safe persistence for the `simpadv` workspace.
//!
//! Training state in this reproduction is more than weights: the paper's
//! Proposed defense carries one persistent adversarial example per
//! training image across epochs, so losing a run mid-epoch loses the
//! state that *defines* the defense. This crate provides the durable-IO
//! substrate that makes such state a first-class artifact:
//!
//! * [`atomic_write`] / [`atomic_write_with_retry`] — temp file + fsync
//!   + rename, so a crash never tears an existing file;
//! * [`seal`] / [`unseal`] — a versioned envelope with a CRC32 over the
//!   payload, so damage is *detected* instead of silently resumed from;
//! * [`CheckpointStore`] — generation-numbered directory with retention
//!   and automatic fallback to the newest generation that validates;
//! * [`failpoint`] — `SIMPADV_FAILPOINTS`-driven fault injection at the
//!   named IO sites, so every crash window is testable;
//! * [`backoff`] — the shared capped-exponential retry schedule with
//!   seeded-deterministic jitter used by every retry loop (the sweep
//!   orchestrator's cell supervision, the serve client's 503 handling).
//!
//! Every other crate funnels its file creation through here (lint rule
//! R9 enforces this), which is what makes the crash-safety guarantee a
//! workspace-wide invariant rather than a local convention.
//!
//! ## Quick start
//!
//! ```
//! use simpadv_resilience::CheckpointStore;
//!
//! let dir = std::env::temp_dir().join(format!("rezdoc-{}", std::process::id()));
//! let store = CheckpointStore::open(&dir).unwrap().with_keep(2);
//! store.save(b"epoch 1 state").unwrap();
//! store.save(b"epoch 2 state").unwrap();
//! let (generation, payload) = store.load_latest_valid().unwrap().unwrap();
//! assert_eq!((generation, payload.as_slice()), (2, &b"epoch 2 state"[..]));
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

mod atomic;
pub mod backoff;
mod checksum;
mod envelope;
mod error;
pub mod failpoint;
mod store;

pub use atomic::{atomic_write, atomic_write_with_retry};
pub use backoff::BackoffPolicy;
pub use checksum::crc32;
pub use envelope::{seal, unseal, MAGIC, VERSION};
pub use error::PersistError;
pub use store::{CheckpointStore, DEFAULT_KEEP};

use std::path::Path;

/// Serializes `value` to JSON and writes it sealed + atomically.
///
/// # Errors
///
/// [`PersistError::Encode`] on serialization failure, else any
/// [`atomic_write`] error.
pub fn write_sealed_json<T: serde::Serialize>(path: &Path, value: &T) -> Result<(), PersistError> {
    let json = serde_json::to_string(value).map_err(|e| PersistError::Encode(e.to_string()))?;
    atomic_write(path, &seal(json.as_bytes()))
}

/// Reads a sealed JSON file written by [`write_sealed_json`].
///
/// # Errors
///
/// IO/envelope errors, or [`PersistError::Decode`] when the validated
/// payload does not parse as `T`.
pub fn read_sealed_json<T: serde::Deserialize>(path: &Path) -> Result<T, PersistError> {
    let bytes = std::fs::read(path).map_err(|e| PersistError::io("read", e))?;
    let payload = unseal(&bytes)?;
    let text = std::str::from_utf8(payload)
        .map_err(|_| PersistError::Decode("payload is not UTF-8".to_string()))?;
    serde_json::from_str(text).map_err(|e| PersistError::Decode(e.to_string()))
}

/// Serializes `value` to *plain* (unsealed) pretty JSON and writes it
/// atomically with bounded retry — the helper for human-facing artifacts
/// such as bench `results/*.json`, where external tools expect raw JSON
/// but torn files are still unacceptable.
///
/// # Errors
///
/// [`PersistError::Encode`] on serialization failure, else any
/// [`atomic_write_with_retry`] error.
pub fn write_json_atomic<T: serde::Serialize>(path: &Path, value: &T) -> Result<(), PersistError> {
    let json =
        serde_json::to_string_pretty(value).map_err(|e| PersistError::Encode(e.to_string()))?;
    atomic_write_with_retry(path, json.as_bytes(), 3, std::time::Duration::from_millis(20))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Probe {
        name: String,
        epoch: u64,
    }

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("simpadv-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("probe.ckpt")
    }

    #[test]
    fn sealed_json_round_trip() {
        let path = tmpfile("sealed");
        let probe = Probe { name: "proposed".to_string(), epoch: 7 };
        write_sealed_json(&path, &probe).unwrap();
        let back: Probe = read_sealed_json(&path).unwrap();
        assert_eq!(back, probe);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn plain_json_artifact_is_raw_json() {
        let path = tmpfile("plain");
        let probe = Probe { name: "table1".to_string(), epoch: 1 };
        write_json_atomic(&path, &probe).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('{'), "no envelope on artifacts");
        assert!(text.contains("\"table1\""));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn sealed_json_detects_damage() {
        let path = tmpfile("damage");
        write_sealed_json(&path, &Probe { name: "x".to_string(), epoch: 0 }).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_sealed_json::<Probe>(&path).unwrap_err();
        assert!(err.is_detected_damage(), "{err}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
