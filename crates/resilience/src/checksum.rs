//! CRC32 (IEEE 802.3 polynomial) over byte slices.
//!
//! A 32-bit CRC detects *every* single-bit and single-byte error and all
//! burst errors up to 32 bits, which is exactly the damage model of the
//! checkpoint envelope: torn writes and silent media corruption.

/// Computes the CRC32 (IEEE, reflected, init/xorout `0xFFFF_FFFF`) of
/// `bytes` — the same value `cksum`-style tools call "crc32".
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`.
fn table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"simpadv"), crc32(b"simpadv"));
    }

    #[test]
    fn any_single_byte_change_is_detected() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for delta in [1u8, 0x80] {
                let mut flipped = base.clone();
                flipped[i] ^= delta;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} undetected");
            }
        }
    }
}
