//! Atomic durable file writes: temp file + fsync + rename.
//!
//! The write sequence is the classic crash-safe protocol:
//!
//! 1. create `<name>.tmp` in the *same directory* as the target
//! 2. stream the payload into it
//! 3. `fsync` the temp file (data durable before the name changes)
//! 4. `rename` over the target (atomic on POSIX filesystems)
//! 5. best-effort `fsync` of the parent directory (the rename durable)
//!
//! A crash before step 4 leaves the old target untouched; a crash after
//! leaves the new one complete. The [`crate::failpoint`] registry is
//! consulted at each boundary so tests can force every crash window.

use crate::error::PersistError;
use crate::failpoint::{self, Action};
use std::fs;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Applies an armed `corrupt`/`mid-write` failpoint to the in-memory
/// payload, returning the (possibly damaged or shortened) bytes to write.
fn sabotage(payload: &[u8]) -> Result<Vec<u8>, PersistError> {
    let mut bytes = payload.to_vec();
    if let Some(Action::Flip(n)) = failpoint::hit("corrupt") {
        if !bytes.is_empty() {
            let idx = n % bytes.len();
            bytes[idx] ^= 1;
        }
    }
    match failpoint::hit("mid-write") {
        Some(Action::Error) => {
            return Err(PersistError::Injected { site: "mid-write".to_string() })
        }
        Some(Action::Short(n)) => bytes.truncate(n),
        Some(Action::Flip(_)) | None => {}
    }
    Ok(bytes)
}

/// Writes `payload` to `path` atomically and durably.
///
/// On success the file at `path` contains exactly `payload` (modulo armed
/// failpoints). On error the previous contents of `path`, if any, are
/// still intact — except after an injected `post-rename` fault, which by
/// design fires *after* the new contents became durable.
///
/// # Errors
///
/// [`PersistError::Io`] with the failing site, or
/// [`PersistError::Injected`] when a failpoint fired.
pub fn atomic_write(path: &Path, payload: &[u8]) -> Result<(), PersistError> {
    if let Some(Action::Error) = failpoint::hit("pre-write") {
        return Err(PersistError::Injected { site: "pre-write".to_string() });
    }
    let bytes = sabotage(payload)?;

    let file_name = path.file_name().ok_or_else(|| PersistError::BadHeader {
        detail: format!("{} has no file name", path.display()),
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let mut file = fs::File::create(&tmp).map_err(|e| PersistError::io("create-temp", e))?;
    file.write_all(&bytes).map_err(|e| PersistError::io("write", e))?;
    file.sync_all().map_err(|e| PersistError::io("fsync", e))?;
    drop(file);

    if let Some(Action::Error) = failpoint::hit("pre-rename") {
        return Err(PersistError::Injected { site: "pre-rename".to_string() });
    }
    fs::rename(&tmp, path).map_err(|e| PersistError::io("rename", e))?;
    if let Some(Action::Error) = failpoint::hit("post-rename") {
        return Err(PersistError::Injected { site: "post-rename".to_string() });
    }

    // Directory fsync makes the rename itself durable. Some filesystems
    // refuse to open directories for writing; that only weakens
    // durability, not atomicity, so failure here is non-fatal.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    simpadv_trace::counter("resilience/atomic_write", 1);
    Ok(())
}

/// [`atomic_write`] with bounded retry on *environmental* IO errors.
///
/// Detected-damage and injected errors are never retried (retrying
/// cannot fix them); OS-level IO errors are retried up to `attempts`
/// times total with linearly growing backoff starting at `backoff`.
///
/// # Errors
///
/// The last error once the attempt budget is exhausted.
pub fn atomic_write_with_retry(
    path: &Path,
    payload: &[u8],
    attempts: u32,
    backoff: Duration,
) -> Result<(), PersistError> {
    let attempts = attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match atomic_write(path, payload) {
            Ok(()) => return Ok(()),
            Err(e @ PersistError::Io { .. }) => {
                simpadv_trace::counter("resilience/atomic_write_retry", 1);
                last = Some(e);
                if attempt + 1 < attempts {
                    // Transient-error backoff; allow-listed use of
                    // std::thread outside crates/runtime (lint.toml R7).
                    std::thread::sleep(backoff * (attempt + 1));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(PersistError::Injected { site: "retry".to_string() }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Failpoints are process-global; serialize the tests that arm them.
    pub(crate) fn fp_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK.get_or_init(|| Mutex::new(()));
        lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("simpadv-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_payload_and_replaces_previous() {
        let _guard = fp_lock();
        failpoint::disarm_all();
        let dir = tmpdir("basic");
        let path = dir.join("a.json");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!path.with_file_name("a.json.tmp").exists(), "temp cleaned by rename");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_rename_fault_keeps_old_contents() {
        let _guard = fp_lock();
        failpoint::disarm_all();
        let dir = tmpdir("prerename");
        let path = dir.join("a.json");
        atomic_write(&path, b"old").unwrap();
        failpoint::arm("pre-rename", "error*1").unwrap();
        let err = atomic_write(&path, b"new").unwrap_err();
        assert!(matches!(err, PersistError::Injected { ref site } if site == "pre-rename"));
        assert_eq!(fs::read(&path).unwrap(), b"old", "target untouched");
        atomic_write(&path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_truncates_final_file() {
        let _guard = fp_lock();
        failpoint::disarm_all();
        let dir = tmpdir("short");
        let path = dir.join("a.json");
        failpoint::arm("mid-write", "short:2*1").unwrap();
        atomic_write(&path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"pa", "short write reached disk silently");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_fault_flips_one_byte() {
        let _guard = fp_lock();
        failpoint::disarm_all();
        let dir = tmpdir("flip");
        let path = dir.join("a.json");
        failpoint::arm("corrupt", "flip:1*1").unwrap();
        atomic_write(&path, b"abc").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"a\x63c", "bit 0 of byte 1 flipped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_does_not_mask_injected_faults() {
        let _guard = fp_lock();
        failpoint::disarm_all();
        let dir = tmpdir("retry");
        let path = dir.join("a.json");
        failpoint::arm("pre-write", "error").unwrap();
        let err = atomic_write_with_retry(&path, b"x", 3, Duration::from_millis(1)).unwrap_err();
        assert!(matches!(err, PersistError::Injected { .. }), "no retry on injected faults");
        failpoint::disarm_all();
        atomic_write_with_retry(&path, b"x", 3, Duration::from_millis(1)).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"x");
        let _ = fs::remove_dir_all(&dir);
    }
}
