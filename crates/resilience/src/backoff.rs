//! Capped exponential backoff with seeded-deterministic jitter.
//!
//! Both retry loops in the workspace — the sweep orchestrator's cell
//! supervision (`crates/sweep`) and the serve client's 503 handling
//! (`simpadv_serve::client::predict_with_retry`) — share this schedule,
//! so "how long until the next attempt" is a pure function of
//! `(policy, seed, retry index)`. That purity is what makes retry
//! behaviour replayable: a resumed campaign recomputes exactly the
//! delays the killed one would have used, and property tests can pin
//! the schedule down bitwise (see `tests/backoff_props.rs`).
//!
//! The shape is the classic one: the raw delay doubles per retry, a
//! jitter fraction drawn from a [`splitmix64`] stream stretches it by at
//! most `jitter_permille`, and the cap clamps the result. Because the
//! jitter factor is bounded below 2x, the jittered sequence is still
//! monotone non-decreasing before the cap, and `min(cap, ..)` preserves
//! monotonicity after it.

/// A capped exponential backoff schedule with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, microseconds (pre-jitter).
    pub base_us: u64,
    /// Upper clamp on any single delay, microseconds (post-jitter).
    pub cap_us: u64,
    /// Maximum jitter stretch in permille of the raw delay; must stay
    /// `<= 1000` (a factor of 2) or doubling would no longer guarantee
    /// a monotone schedule.
    pub jitter_permille: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base_us: 50_000, cap_us: 5_000_000, jitter_permille: 250 }
    }
}

impl BackoffPolicy {
    /// A policy with the given base and cap and the default 25% jitter.
    ///
    /// # Panics
    ///
    /// Panics when `base_us` is zero (a zero base collapses the whole
    /// schedule to busy-spinning) or `cap_us < base_us`.
    pub fn new(base_us: u64, cap_us: u64) -> Self {
        assert!(base_us > 0, "backoff base must be positive");
        assert!(cap_us >= base_us, "backoff cap below base");
        BackoffPolicy { base_us, cap_us, ..BackoffPolicy::default() }
    }

    /// Overrides the jitter stretch (permille of the raw delay).
    ///
    /// # Panics
    ///
    /// Panics when `permille > 1000`: past a 2x stretch, doubling no
    /// longer dominates the jitter and the schedule could decrease.
    pub fn with_jitter_permille(mut self, permille: u64) -> Self {
        assert!(permille <= 1000, "jitter above 1000 permille breaks monotonicity");
        self.jitter_permille = permille;
        self
    }

    /// The delay before retry number `retry` (0-based), microseconds.
    ///
    /// Deterministic in `(self, seed, retry)`; the jitter for retry `n`
    /// comes from an independent [`splitmix64`] draw so inserting or
    /// removing earlier retries never shifts later delays.
    pub fn delay_us(&self, seed: u64, retry: u32) -> u64 {
        // 2^retry, saturating: past bit 63 the cap wins anyway.
        let factor = 1u64.checked_shl(retry).unwrap_or(u64::MAX);
        let raw = self.base_us.saturating_mul(factor);
        let jitter = if self.jitter_permille == 0 {
            0
        } else {
            let draw = splitmix64(seed ^ u64::from(retry).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let permille = draw % (self.jitter_permille + 1);
            raw / 1000 * permille + (raw % 1000) * permille / 1000
        };
        raw.saturating_add(jitter).min(self.cap_us)
    }

    /// The first `retries` delays as a vector — the exact sleep sequence
    /// a supervisor honouring this policy performs.
    pub fn schedule_us(&self, seed: u64, retries: u32) -> Vec<u64> {
        (0..retries).map(|r| self.delay_us(seed, r)).collect()
    }

    /// Total time spent sleeping across the first `retries` retries,
    /// microseconds (saturating). Bounded by `retries * cap_us`, which
    /// is what makes a campaign-wide retry budget a wall-time bound too.
    pub fn total_delay_us(&self, seed: u64, retries: u32) -> u64 {
        (0..retries).fold(0u64, |acc, r| acc.saturating_add(self.delay_us(seed, r)))
    }
}

/// SplitMix64: the standard 64-bit finalizer-based generator. One draw
/// per (seed, retry) pair keeps the jitter stream stateless.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a per-task seed from a campaign seed and a stable index, so
/// every cell (or client) jitters independently but reproducibly.
pub fn derive_seed(campaign_seed: u64, index: u64) -> u64 {
    splitmix64(campaign_seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_monotone() {
        let policy = BackoffPolicy::new(10_000, 1_000_000);
        let a = policy.schedule_us(42, 12);
        let b = policy.schedule_us(42, 12);
        assert_eq!(a, b, "same seed, same schedule");
        for w in a.windows(2) {
            assert!(w[1] >= w[0], "monotone: {a:?}");
        }
        assert!(a.iter().all(|d| *d <= 1_000_000), "capped: {a:?}");
        assert!(a[0] >= 10_000, "first delay at least the base");
    }

    #[test]
    fn seeds_decorrelate_but_stay_in_envelope() {
        let policy = BackoffPolicy::new(8_000, 500_000);
        let a = policy.schedule_us(1, 8);
        let b = policy.schedule_us(2, 8);
        assert_ne!(a, b, "different seeds should jitter differently");
        for (i, d) in a.iter().enumerate() {
            let raw = 8_000u64 << i;
            assert!(*d >= raw.min(500_000), "never below the raw floor");
            assert!(*d <= (raw + raw / 4).min(500_000), "never above raw * 1.25");
        }
    }

    #[test]
    fn zero_jitter_is_pure_doubling() {
        let policy = BackoffPolicy::new(1_000, 1 << 40).with_jitter_permille(0);
        assert_eq!(policy.schedule_us(7, 5), vec![1_000, 2_000, 4_000, 8_000, 16_000]);
    }

    #[test]
    fn total_delay_is_budget_bounded() {
        let policy = BackoffPolicy::new(10_000, 200_000);
        let budget = 9u32;
        let total = policy.total_delay_us(5, budget);
        assert!(total <= u64::from(budget) * policy.cap_us);
        assert_eq!(total, policy.schedule_us(5, budget).iter().sum::<u64>());
    }

    #[test]
    fn huge_retry_indices_saturate_at_the_cap() {
        let policy = BackoffPolicy::new(1_000, 3_000_000);
        assert_eq!(policy.delay_us(0, 63), 3_000_000);
        assert_eq!(policy.delay_us(0, 64), 3_000_000);
        assert_eq!(policy.delay_us(0, u32::MAX), 3_000_000);
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(2019, 3), derive_seed(2019, 3));
        assert_ne!(derive_seed(2019, 3), derive_seed(2019, 4));
        assert_ne!(derive_seed(2019, 3), derive_seed(2020, 3));
    }
}
