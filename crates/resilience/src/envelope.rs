//! The checkpoint envelope: a self-describing, checksummed container.
//!
//! Layout on disk:
//!
//! ```text
//! {"magic":"simpadv-ckpt","version":1,"len":<payload bytes>,"crc32":<u32>}\n
//! <payload bytes>
//! ```
//!
//! The header is a single JSON line so torn or corrupted files are
//! diagnosable with `head -1`; the CRC32 covers the payload only. Any
//! single-byte flip anywhere (header or payload) and any truncation is
//! detected by [`unseal`].

use crate::checksum::crc32;
use crate::error::PersistError;
use serde::{Deserialize, Serialize};

/// Magic string identifying a sealed file.
pub const MAGIC: &str = "simpadv-ckpt";
/// Highest envelope format version this build reads and writes.
pub const VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    len: u64,
    crc32: u32,
}

/// Wraps `payload` in a sealed envelope ready for [`crate::atomic_write`].
///
/// # Panics
///
/// Panics if the header fails to serialize, which the fixed
/// string/integer header layout rules out.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let header = Header {
        magic: MAGIC.to_string(),
        version: VERSION,
        len: payload.len() as u64,
        crc32: crc32(payload),
    };
    // The header struct contains only strings and integers; the shim
    // serializer cannot fail on it.
    let line = serde_json::to_string(&header)
        .unwrap_or_else(|e| panic!("envelope header serialization failed: {e}"));
    let mut out = Vec::with_capacity(line.len() + 1 + payload.len());
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload);
    out
}

/// Validates a sealed envelope and returns its payload slice.
///
/// # Errors
///
/// * [`PersistError::BadHeader`] — no newline, non-UTF-8 or unparsable
///   header line, or wrong magic
/// * [`PersistError::Version`] — header version newer than [`VERSION`]
/// * [`PersistError::Truncated`] — payload shorter than `len`
/// * [`PersistError::Corrupt`] — CRC32 mismatch (also raised when the
///   payload is *longer* than `len`, which a checksum over the declared
///   prefix cannot otherwise distinguish from damage)
pub fn unseal(bytes: &[u8]) -> Result<&[u8], PersistError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| PersistError::BadHeader { detail: "missing header line".to_string() })?;
    let line = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| PersistError::BadHeader { detail: "header is not UTF-8".to_string() })?;
    let header: Header = serde_json::from_str(line)
        .map_err(|e| PersistError::BadHeader { detail: format!("unparsable header: {e}") })?;
    if header.magic != MAGIC {
        return Err(PersistError::BadHeader {
            detail: format!("magic {:?} is not {MAGIC:?}", header.magic),
        });
    }
    if header.version == 0 || header.version > VERSION {
        return Err(PersistError::Version { found: header.version, supported: VERSION });
    }
    let payload = &bytes[newline + 1..];
    let expected = header.len as usize;
    if payload.len() < expected {
        return Err(PersistError::Truncated { expected, found: payload.len() });
    }
    let payload = &payload[..expected];
    let found = crc32(payload);
    if found != header.crc32 || bytes.len() != newline + 1 + expected {
        return Err(PersistError::Corrupt { expected: header.crc32, found });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload = b"{\"epoch\":3}";
        let sealed = seal(payload);
        assert!(sealed.starts_with(b"{\"magic\":\"simpadv-ckpt\""), "header leads");
        assert_eq!(unseal(&sealed).unwrap(), payload);
        assert_eq!(unseal(&seal(b"")).unwrap(), b"");
    }

    #[test]
    fn truncation_is_detected() {
        let sealed = seal(b"0123456789");
        for cut in 0..sealed.len() {
            let err = unseal(&sealed[..cut]).unwrap_err();
            assert!(err.is_detected_damage(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let sealed = seal(b"persistent adversarial state");
        for i in 0..sealed.len() {
            let mut damaged = sealed.clone();
            damaged[i] ^= 1;
            assert!(unseal(&damaged).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn newer_version_is_rejected() {
        let sealed = seal(b"x");
        let text = String::from_utf8(sealed).unwrap();
        let bumped = text.replacen("\"version\":1", "\"version\":99", 1);
        let err = unseal(bumped.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Version { found: 99, supported: VERSION }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut sealed = seal(b"x");
        sealed.extend_from_slice(b"junk");
        assert!(unseal(&sealed).is_err());
    }
}
