//! Property-based tests for the defense crate's pure logic (configs,
//! reports, charts) — the heavy training paths are covered by unit and
//! integration tests.

use proptest::prelude::*;
use simpadv::chart::render_accuracy_chart;
use simpadv::train::{TrainState, TrainerAux, TRAIN_STATE_VERSION};
use simpadv::{TrainConfig, TrainReport};
use simpadv_nn::{OptimState, StateDict};
use simpadv_tensor::Tensor;
use simpadv_trace::SpanTiming;

proptest! {
    #[test]
    fn train_config_builders_accept_valid_ranges(
        epochs in 1usize..500,
        batch in 1usize..512,
        lr in 0.0001f32..1.0,
        momentum in 0.0f32..0.99,
        decay in 0.01f32..1.0,
    ) {
        let c = TrainConfig::new(epochs, 0)
            .with_batch_size(batch)
            .with_learning_rate(lr)
            .with_momentum(momentum)
            .with_lr_decay(decay);
        prop_assert_eq!(c.epochs, epochs);
        prop_assert_eq!(c.batch_size, batch);
        prop_assert!((c.learning_rate - lr).abs() < 1e-9);
        // serde roundtrip is lossless
        let json = serde_json::to_string(&c).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(c, back);
    }

    #[test]
    fn report_means_are_within_observed_range(
        losses in prop::collection::vec(0.0f32..10.0, 1..20),
        seconds in prop::collection::vec(0.001f64..5.0, 1..20),
    ) {
        let n = losses.len().min(seconds.len());
        let mut r = TrainReport::new("prop");
        for i in 0..n {
            r.push_epoch(losses[i], &SpanTiming::new(seconds[i], 10, 10), 10, 10);
        }
        let mean = r.mean_epoch_seconds();
        let lo = seconds[..n].iter().copied().fold(f64::INFINITY, f64::min);
        let hi = seconds[..n].iter().copied().fold(0.0, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert_eq!(r.mean_gradient_passes(), 20.0);
        prop_assert_eq!(r.epochs(), n);
    }

    #[test]
    fn chart_renders_any_valid_series(
        values in prop::collection::vec(0.0f32..1.0, 1..12),
        names in prop::collection::vec("[a-z]{1,8}", 1..4),
    ) {
        let labels: Vec<String> = (0..values.len()).map(|i| i.to_string()).collect();
        let series: Vec<(String, Vec<f32>)> =
            names.iter().map(|n| (n.clone(), values.clone())).collect();
        let art = render_accuracy_chart(&labels, &series);
        // fixed frame: 11 data rows + axis + labels + legend
        prop_assert_eq!(art.lines().count(), 14);
        prop_assert!(art.contains("legend:"));
    }

    #[test]
    fn train_state_round_trips_bitwise_through_json(
        weights in prop::collection::vec(-10.0f32..10.0, 1..40),
        adv in prop::collection::vec(0.0f32..1.0, 1..40),
        epoch in 0usize..100,
        rng_word in 1u64..u64::MAX,
        last_reset in 0usize..100,
    ) {
        let state = TrainState {
            version: TRAIN_STATE_VERSION,
            trainer_id: "proposed".to_string(),
            config: TrainConfig::new(epoch + 1, rng_word),
            next_epoch: epoch,
            rng: vec![rng_word, rng_word ^ 1, rng_word.rotate_left(7), 42],
            data_crc: (rng_word & 0xFFFF_FFFF) as u32,
            model: StateDict {
                entries: vec![("w".to_string(), Tensor::from_slice(&weights))],
            },
            optim: OptimState {
                groups: vec![vec![Tensor::from_slice(&weights)]],
                step: epoch as u64,
            },
            report: TrainReport::new("proposed"),
            aux: TrainerAux::Proposed {
                adv: Tensor::from_slice(&adv),
                last_reset_epoch: last_reset,
            },
        };
        state.validate_finite().unwrap();
        let json = serde_json::to_string(&state).unwrap();
        let back: TrainState = serde_json::from_str(&json).unwrap();
        // PartialEq on f32 tensors is not enough for the bitwise-resume
        // contract: compare the weight bits explicitly, then the rest.
        let w_bits: Vec<u32> = weights.iter().map(|v| v.to_bits()).collect();
        let back_bits: Vec<u32> =
            back.model.entries[0].1.as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(w_bits, back_bits);
        prop_assert_eq!(back, state);
    }

    #[test]
    fn train_state_rejects_any_non_finite_weight(
        weights in prop::collection::vec(-10.0f32..10.0, 2..40),
        poison_seed in 0u64..u64::MAX,
        kind in 0u8..3,
    ) {
        let mut poisoned = weights.clone();
        let pos = (poison_seed % poisoned.len() as u64) as usize;
        poisoned[pos] = match kind {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
        let state = TrainState {
            version: TRAIN_STATE_VERSION,
            trainer_id: "vanilla".to_string(),
            config: TrainConfig::new(1, 0),
            next_epoch: 0,
            rng: vec![1, 2, 3, 4],
            data_crc: 0,
            model: StateDict {
                entries: vec![("w".to_string(), Tensor::from_slice(&poisoned))],
            },
            optim: OptimState::default(),
            report: TrainReport::new("vanilla"),
            aux: TrainerAux::None,
        };
        prop_assert!(state.validate_finite().is_err());
        // ... and the same poison in aux is caught independently
        let state = TrainState {
            model: StateDict {
                entries: vec![("w".to_string(), Tensor::from_slice(&weights))],
            },
            aux: TrainerAux::Free { delta: Tensor::from_slice(&poisoned) },
            ..state
        };
        prop_assert!(state.validate_finite().is_err());
    }
}
