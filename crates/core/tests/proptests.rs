//! Property-based tests for the defense crate's pure logic (configs,
//! reports, charts) — the heavy training paths are covered by unit and
//! integration tests.

use proptest::prelude::*;
use simpadv::chart::render_accuracy_chart;
use simpadv::{TrainConfig, TrainReport};
use simpadv_trace::SpanTiming;

proptest! {
    #[test]
    fn train_config_builders_accept_valid_ranges(
        epochs in 1usize..500,
        batch in 1usize..512,
        lr in 0.0001f32..1.0,
        momentum in 0.0f32..0.99,
        decay in 0.01f32..1.0,
    ) {
        let c = TrainConfig::new(epochs, 0)
            .with_batch_size(batch)
            .with_learning_rate(lr)
            .with_momentum(momentum)
            .with_lr_decay(decay);
        prop_assert_eq!(c.epochs, epochs);
        prop_assert_eq!(c.batch_size, batch);
        prop_assert!((c.learning_rate - lr).abs() < 1e-9);
        // serde roundtrip is lossless
        let json = serde_json::to_string(&c).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(c, back);
    }

    #[test]
    fn report_means_are_within_observed_range(
        losses in prop::collection::vec(0.0f32..10.0, 1..20),
        seconds in prop::collection::vec(0.001f64..5.0, 1..20),
    ) {
        let n = losses.len().min(seconds.len());
        let mut r = TrainReport::new("prop");
        for i in 0..n {
            r.push_epoch(losses[i], &SpanTiming::new(seconds[i], 10, 10), 10, 10);
        }
        let mean = r.mean_epoch_seconds();
        let lo = seconds[..n].iter().copied().fold(f64::INFINITY, f64::min);
        let hi = seconds[..n].iter().copied().fold(0.0, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert_eq!(r.mean_gradient_passes(), 20.0);
        prop_assert_eq!(r.epochs(), n);
    }

    #[test]
    fn chart_renders_any_valid_series(
        values in prop::collection::vec(0.0f32..1.0, 1..12),
        names in prop::collection::vec("[a-z]{1,8}", 1..4),
    ) {
        let labels: Vec<String> = (0..values.len()).map(|i| i.to_string()).collect();
        let series: Vec<(String, Vec<f32>)> =
            names.iter().map(|n| (n.clone(), values.clone())).collect();
        let art = render_accuracy_chart(&labels, &series);
        // fixed frame: 11 data rows + axis + labels + legend
        prop_assert_eq!(art.lines().count(), 14);
        prop_assert!(art.contains("legend:"));
    }
}
