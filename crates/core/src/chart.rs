//! Terminal line charts — enough plotting to eyeball Figure 1/2 series
//! without leaving the terminal.

/// Renders accuracy series (values in `[0, 1]`) as an ASCII chart.
///
/// * `x_labels` — one label per x position (e.g. iteration counts);
/// * `series` — `(name, values)` pairs, each `values.len() == x_labels.len()`;
/// * each series is drawn with its own marker character, assigned in
///   order: `* + o x # @`.
///
/// # Panics
///
/// Panics if series lengths disagree with the label count or no series is
/// given.
///
/// # Example
///
/// ```
/// use simpadv::chart::render_accuracy_chart;
///
/// let art = render_accuracy_chart(
///     &["1".into(), "2".into(), "3".into()],
///     &[("up".into(), vec![0.1, 0.5, 0.9])],
/// );
/// assert!(art.contains('*'));
/// ```
pub fn render_accuracy_chart(x_labels: &[String], series: &[(String, Vec<f32>)]) -> String {
    assert!(!series.is_empty(), "chart needs at least one series");
    for (name, values) in series {
        assert_eq!(
            values.len(),
            x_labels.len(),
            "series '{name}' has {} points for {} labels",
            values.len(),
            x_labels.len()
        );
    }
    const HEIGHT: usize = 11; // 0%..100% in 10% rows
    const MARKERS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let col_width = 6usize;
    let width = x_labels.len() * col_width;
    let mut grid = vec![vec![' '; width]; HEIGHT];
    for (si, (_, values)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for (xi, &v) in values.iter().enumerate() {
            let v = v.clamp(0.0, 1.0);
            let row = HEIGHT - 1 - ((v * (HEIGHT - 1) as f32).round() as usize);
            let col = xi * col_width + col_width / 2;
            grid[row][col] = if grid[row][col] == ' ' { marker } else { '&' };
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let pct = 100 - i * 10;
        out.push_str(&format!("{pct:>4}% |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str("       ");
    for label in x_labels {
        out.push_str(&format!("{label:>width$}", width = col_width));
    }
    out.push('\n');
    out.push_str("legend:");
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(" {}={name}", MARKERS[si % MARKERS.len()]));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (1..=n).map(|i| i.to_string()).collect()
    }

    #[test]
    fn chart_contains_markers_and_legend() {
        let art = render_accuracy_chart(
            &labels(3),
            &[("a".into(), vec![1.0, 0.5, 0.0]), ("b".into(), vec![0.0, 0.5, 1.0])],
        );
        assert!(art.contains('*'));
        assert!(art.contains('+') || art.contains('&')); // overlap at 50%
        assert!(art.contains("legend: *=a +=b"));
        assert!(art.contains("100% |"));
        assert!(art.contains("  0% |"));
    }

    #[test]
    fn high_values_render_above_low_values() {
        let art = render_accuracy_chart(&labels(1), &[("hi".into(), vec![1.0])]);
        let first_mark_line = art.lines().position(|l| l.contains('*')).unwrap();
        let art_low = render_accuracy_chart(&labels(1), &[("lo".into(), vec![0.0])]);
        let low_mark_line = art_low.lines().position(|l| l.contains('*')).unwrap();
        assert!(first_mark_line < low_mark_line);
    }

    #[test]
    fn overlapping_points_use_ampersand() {
        let art =
            render_accuracy_chart(&labels(1), &[("a".into(), vec![0.5]), ("b".into(), vec![0.5])]);
        assert!(art.contains('&'));
    }

    #[test]
    #[should_panic(expected = "points for")]
    fn mismatched_lengths_rejected() {
        render_accuracy_chart(&labels(2), &[("a".into(), vec![0.1])]);
    }

    #[test]
    fn values_out_of_range_are_clamped() {
        let art = render_accuracy_chart(&labels(1), &[("a".into(), vec![7.0])]);
        assert!(art.lines().next().unwrap().contains('*'));
    }
}
