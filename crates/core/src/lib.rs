//! # simpadv
//!
//! The core of the reproduction of *"Using Intuition from Empirical
//! Properties to Simplify Adversarial Training Defense"* (Liu, Khalil,
//! Khreishah — 2019, arXiv:1906.11729): adversarial-training methods, the
//! robustness evaluation harness, and runners for every figure and table in
//! the paper.
//!
//! ## The methods
//!
//! | Trainer | Paper role | Cost per batch (extra fwd/bwd) |
//! |---|---|---|
//! | [`train::VanillaTrainer`] | undefended baseline | 0 |
//! | [`train::FgsmAdvTrainer`] | original Single-Adv (Goodfellow et al.) | 1 |
//! | [`train::AtdaTrainer`] | SOTA Single-Adv comparator (Song et al.) | 1 (+ DA loss) |
//! | [`train::ProposedTrainer`] | **the paper's contribution** | 1 |
//! | [`train::BimAdvTrainer`] | Iter-Adv (Kurakin/Madry) | k |
//!
//! The proposed method keeps one **persistent adversarial example per
//! training image**, advances it by a single *large* signed-gradient step
//! each epoch (projected to the ε-ball), and resets it every
//! `reset_period` epochs — so adversarial examples become iterative *across
//! epochs* while each epoch pays only Single-Adv cost (Figure 3b of the
//! paper).
//!
//! ## Quickstart
//!
//! ```no_run
//! use simpadv::{train::{ProposedTrainer, Trainer}, EvalSuite, ModelSpec, TrainConfig};
//! use simpadv_data::{SynthConfig, SynthDataset};
//!
//! let train = SynthDataset::Mnist.generate(&SynthConfig::new(1000, 1));
//! let test = SynthDataset::Mnist.generate(&SynthConfig::new(500, 2));
//! let config = TrainConfig::new(10, 0);
//! let mut clf = ModelSpec::default_mlp().build(7);
//! let mut trainer = ProposedTrainer::new(0.3, 0.1, 20);
//! let report = trainer.train(&mut clf, &train, &config);
//! println!("mean epoch time: {:.3}s", report.mean_epoch_seconds());
//! let eval = EvalSuite::paper(0.3).run(&mut clf, &test);
//! println!("{eval}");
//! ```

pub mod chart;
mod config;
pub mod contracts;
pub mod diagnostics;
mod eval;
mod eval_detail;
pub mod experiments;
mod model;
mod report;
pub mod smoothing;
pub mod train;

pub use config::TrainConfig;
pub use diagnostics::{audit_masking, DiagnosticCheck, MaskingReport};
pub use eval::{evaluate_accuracy, evaluate_clean, EvalResult, EvalSuite};
pub use eval_detail::{class_breakdown, ClassBreakdown};
pub use model::ModelSpec;
pub use report::TrainReport;
pub use smoothing::{SmoothedClassifier, SmoothedPrediction};
