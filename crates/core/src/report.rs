//! Training reports: per-epoch losses, span-clock timings and
//! gradient-pass counts.

use serde::{Deserialize, Serialize};
use simpadv_trace::SpanTiming;

/// What a [`crate::train::Trainer`] hands back.
///
/// Three cost measures are recorded:
///
/// * **wall-clock seconds per epoch** — the quantity Table I of the paper
///   reports, measured by the epoch's trace span;
/// * **span-clock work per epoch** — the logical forward+backward pass
///   count the same span measured on the global trace clock. Unlike wall
///   time this is bitwise identical across `--threads`, so Table I's
///   time-per-epoch *ratios* can be cross-checked against a quantity the
///   thread count cannot skew;
/// * **gradient passes per epoch** (forward + backward, batch-row
///   equivalents) — an architecture- and machine-independent measure that
///   makes the cost ratios between methods exactly verifiable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Identifier of the trainer that produced this report.
    pub trainer_id: String,
    /// Mean training loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock duration of each epoch in seconds (from the epoch
    /// span's monotonic clock).
    pub epoch_seconds: Vec<f64>,
    /// Logical span-clock work (forward + backward passes, replicas
    /// included) of each epoch — thread-count invariant.
    pub epoch_work: Vec<u64>,
    /// Forward passes per epoch.
    pub forward_passes: Vec<u64>,
    /// Backward passes per epoch.
    pub backward_passes: Vec<u64>,
}

impl TrainReport {
    /// Creates an empty report for the given trainer.
    pub fn new(trainer_id: impl Into<String>) -> Self {
        TrainReport {
            trainer_id: trainer_id.into(),
            epoch_losses: Vec::new(),
            epoch_seconds: Vec::new(),
            epoch_work: Vec::new(),
            forward_passes: Vec::new(),
            backward_passes: Vec::new(),
        }
    }

    /// Records one epoch from the timing its trace span measured.
    pub fn push_epoch(&mut self, loss: f32, timing: &SpanTiming, forward: u64, backward: u64) {
        self.epoch_losses.push(loss);
        self.epoch_seconds.push(timing.seconds);
        self.epoch_work.push(timing.work());
        self.forward_passes.push(forward);
        self.backward_passes.push(backward);
    }

    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.epoch_losses.len()
    }

    /// Mean wall-clock seconds per epoch (0 when empty).
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epoch_seconds.is_empty() {
            0.0
        } else {
            self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
        }
    }

    /// Mean logical span-clock work per epoch (0 when empty). Thread-count
    /// invariant, unlike [`TrainReport::mean_epoch_seconds`].
    pub fn mean_epoch_work(&self) -> f64 {
        if self.epoch_work.is_empty() {
            0.0
        } else {
            self.epoch_work.iter().sum::<u64>() as f64 / self.epoch_work.len() as f64
        }
    }

    /// Mean gradient passes (forward + backward) per epoch.
    pub fn mean_gradient_passes(&self) -> f64 {
        if self.forward_passes.is_empty() {
            return 0.0;
        }
        let total: u64 =
            self.forward_passes.iter().zip(&self.backward_passes).map(|(f, b)| f + b).sum();
        total as f64 / self.forward_passes.len() as f64
    }

    /// The final epoch's training loss.
    ///
    /// # Panics
    ///
    /// Panics on an empty report.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or_else(|| panic!("final_loss on an empty report"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_epochs() {
        let mut r = TrainReport::new("test");
        r.push_epoch(1.0, &SpanTiming::new(0.5, 12, 10), 10, 10);
        r.push_epoch(0.5, &SpanTiming::new(0.7, 14, 12), 10, 10);
        assert_eq!(r.epochs(), 2);
        assert_eq!(r.final_loss(), 0.5);
        assert!((r.mean_epoch_seconds() - 0.6).abs() < 1e-9);
        assert_eq!(r.epoch_work, vec![22, 26]);
        assert_eq!(r.mean_epoch_work(), 24.0);
        assert_eq!(r.mean_gradient_passes(), 20.0);
    }

    #[test]
    fn empty_report_means_are_zero() {
        let r = TrainReport::new("x");
        assert_eq!(r.mean_epoch_seconds(), 0.0);
        assert_eq!(r.mean_epoch_work(), 0.0);
        assert_eq!(r.mean_gradient_passes(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = TrainReport::new("t");
        r.push_epoch(0.3, &SpanTiming::new(1.25, 3, 3), 5, 4);
        let json = serde_json::to_string(&r).unwrap();
        let back: TrainReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
