//! Adversarial training with single-step FGSM examples.

use super::{run_epochs, train_on_mixture, CheckpointSession, Trainer, TrainerAux};
use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_attacks::{Attack, Fgsm};
use simpadv_data::Dataset;
use simpadv_nn::Classifier;
use simpadv_resilience::PersistError;

/// The original Single-Adv method (Goodfellow et al., 2015): each batch
/// trains on a mixture of clean examples and FGSM examples generated
/// against the current model.
///
/// Per the paper's Figures 1–2 and Table I, this defends against FGSM but
/// **collapses against iterative attacks** — the failure the proposed
/// method fixes at the same per-epoch cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FgsmAdvTrainer {
    epsilon: f32,
}

impl FgsmAdvTrainer {
    /// Creates the trainer with adversarial budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        FgsmAdvTrainer { epsilon }
    }

    /// The training perturbation budget.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }
}

impl Trainer for FgsmAdvTrainer {
    fn train_resumable(
        &mut self,
        clf: &mut Classifier,
        data: &Dataset,
        config: &TrainConfig,
        session: &mut CheckpointSession,
    ) -> Result<TrainReport, PersistError> {
        let mut attack = Fgsm::new(self.epsilon);
        run_epochs(
            &self.id(),
            clf,
            data,
            config,
            session,
            TrainerAux::None,
            |clf, opt, _aux, _epoch, _idx, x, y| {
                let adv = attack.perturb(clf, x, y);
                train_on_mixture(clf, opt, x, &adv, y)
            },
        )
    }

    fn id(&self) -> String {
        "fgsm-adv".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_accuracy;
    use crate::model::ModelSpec;
    use simpadv_data::{SynthConfig, SynthDataset};
    use simpadv_nn::{accuracy, GradientModel};

    #[test]
    fn resists_fgsm_better_than_vanilla() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(200, 2));
        let config = TrainConfig::new(40, 0).with_lr_decay(0.95);
        let eps = 0.3;

        let mut vanilla = ModelSpec::default_mlp().build(0);
        super::super::VanillaTrainer::new().train(&mut vanilla, &train, &config);
        let mut defended = ModelSpec::default_mlp().build(0);
        FgsmAdvTrainer::new(eps).train(&mut defended, &train, &config);

        let mut atk_v = Fgsm::new(eps);
        let mut atk_d = Fgsm::new(eps);
        let acc_vanilla = evaluate_accuracy(&mut vanilla, &test, &mut atk_v);
        let acc_defended = evaluate_accuracy(&mut defended, &test, &mut atk_d);
        assert!(
            acc_defended > acc_vanilla + 0.3,
            "fgsm-adv ({acc_defended}) should beat vanilla ({acc_vanilla}) under FGSM"
        );
    }

    #[test]
    fn keeps_clean_accuracy() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let mut clf = ModelSpec::default_mlp().build(0);
        FgsmAdvTrainer::new(0.3).train(
            &mut clf,
            &train,
            &TrainConfig::new(15, 0).with_lr_decay(0.95),
        );
        let acc = accuracy(&clf.logits(train.images()), train.labels());
        assert!(acc > 0.9, "clean train accuracy {acc}");
    }

    #[test]
    fn costs_one_extra_pass_pair_per_batch() {
        let data = SynthDataset::Mnist.generate(&SynthConfig::new(64, 1));
        let mut clf = ModelSpec::small_mlp().build(0);
        let config = TrainConfig::new(1, 0).with_batch_size(32);
        let report = FgsmAdvTrainer::new(0.3).train(&mut clf, &data, &config);
        // per batch: attack (1 fwd + 1 bwd) + train (1 fwd + 1 bwd)
        assert_eq!(report.forward_passes[0], 4);
        assert_eq!(report.backward_passes[0], 4);
    }
}
