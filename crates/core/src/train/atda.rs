//! ATDA — Adversarial Training with Domain Adaptation (Song et al., 2018),
//! the SOTA Single-Adv comparator of the paper's Table I.

use super::{run_epochs, CheckpointSession, Trainer, TrainerAux};
use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_attacks::{Attack, Fgsm};
use simpadv_data::Dataset;
use simpadv_nn::{Classifier, Loss, SoftmaxCrossEntropy};
use simpadv_resilience::PersistError;
use simpadv_tensor::Tensor;

/// ATDA treats clean and (single-step) adversarial examples as two domains
/// and regularizes the logit space so the domains align:
///
/// * **UDA-MMD**: L1 alignment of the domain means of the logits;
/// * **UDA-CORAL**: Frobenius alignment of the domain covariances;
/// * **SDA**: both domains are pulled toward shared per-class logit
///   centers (maintained as exponential moving averages).
///
/// The total objective is `CE(clean ∪ adv) + λ·(MMD + CORAL) + λ·SDA`, all
/// gradients derived analytically and verified against finite differences
/// in this module's tests.
///
/// Faithfulness note (documented in `DESIGN.md`): as in the original, the
/// adaptation terms act on the logit representation; our centers update
/// with a fixed momentum rather than the paper's margin formulation — the
/// same alignment pressure with one fewer hyper-parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct AtdaTrainer {
    epsilon: f32,
    lambda: f32,
    center_momentum: f32,
}

impl AtdaTrainer {
    /// Creates ATDA with budget `epsilon` and the conventional
    /// regularization weight λ = 1/3.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        AtdaTrainer { epsilon, lambda: 1.0 / 3.0, center_momentum: 0.1 }
    }

    /// Overrides the domain-adaptation weight λ.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative.
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        self.lambda = lambda;
        self
    }

    /// The regularization weight λ.
    pub fn lambda(&self) -> f32 {
        self.lambda
    }
}

impl Trainer for AtdaTrainer {
    fn train_resumable(
        &mut self,
        clf: &mut Classifier,
        data: &Dataset,
        config: &TrainConfig,
        session: &mut CheckpointSession,
    ) -> Result<TrainReport, PersistError> {
        let mut attack = Fgsm::new(self.epsilon);
        let ce = SoftmaxCrossEntropy::new();
        let classes = data.num_classes();
        // centers live in logit space: [classes, logit_dim == classes];
        // they are EMAs carried across epochs, hence checkpointable aux.
        let aux = TrainerAux::Atda { centers: Tensor::zeros(&[classes, classes.max(1)]) };
        let (lambda, center_momentum) = (self.lambda, self.center_momentum);
        run_epochs(
            &self.id(),
            clf,
            data,
            config,
            session,
            aux,
            move |clf, opt, aux, _epoch, _idx, x, y| {
                let TrainerAux::Atda { centers } = aux else {
                    unreachable!("atda trainer always runs with Atda aux state")
                };
                let n = x.shape()[0];
                // 1. single-step adversarial domain
                let adv = attack.perturb(clf, x, y);
                // 2. one forward over both domains
                let combined = Tensor::concat_rows(&[x, &adv]);
                let mut labels = y.to_vec();
                labels.extend_from_slice(y);
                let logits = clf.forward_train(&combined);
                let z_clean = logits.rows(0..n);
                let z_adv = logits.rows(n..2 * n);
                // 3. composite loss gradient in logit space
                let (ce_loss, ce_grad) = ce.forward(&logits, &labels);
                let (da_loss, g_clean, g_adv) =
                    domain_adaptation_grad(&z_clean, &z_adv, centers, y);
                let mut grad = ce_grad;
                let da_grad = Tensor::concat_rows(&[&g_clean, &g_adv]).mul_scalar(lambda);
                grad.add_assign(&da_grad);
                // 4. backprop the combined gradient and step
                clf.step_from_logit_grad(&grad, opt);
                // 5. update class centers from the clean domain (no gradient)
                update_centers(centers, &z_clean, y, center_momentum);
                ce_loss + lambda * da_loss
            },
        )
    }

    fn id(&self) -> String {
        "atda".to_string()
    }
}

/// Computes the domain-adaptation loss and its gradients with respect to
/// the clean and adversarial logits (centers are treated as constants).
///
/// Returns `(loss, dL/dz_clean, dL/dz_adv)`.
///
/// # Panics
///
/// Panics when the clean and adversarial logit shapes disagree.
pub(crate) fn domain_adaptation_grad(
    z_clean: &Tensor,
    z_adv: &Tensor,
    centers: &Tensor,
    y: &[usize],
) -> (f32, Tensor, Tensor) {
    let (n, c) = (z_clean.shape()[0], z_clean.shape()[1]);
    assert_eq!(z_adv.shape(), &[n, c], "domain shapes must match");
    let nf = n as f32;
    let cf = c as f32;

    let mut g_clean = Tensor::zeros(&[n, c]);
    let mut g_adv = Tensor::zeros(&[n, c]);
    let mut loss = 0.0f32;

    // --- UDA-MMD: (1/c) Σ_j |mu_c[j] - mu_a[j]| -------------------------
    let mu_c = z_clean.mean_axis(0);
    let mu_a = z_adv.mean_axis(0);
    let diff = mu_c.sub(&mu_a);
    loss += diff.abs().sum() / cf;
    let sign = diff.sign();
    for i in 0..n {
        for j in 0..c {
            let s = sign.as_slice()[j] / (cf * nf);
            g_clean.as_mut_slice()[i * c + j] += s;
            g_adv.as_mut_slice()[i * c + j] -= s;
        }
    }

    // --- UDA-CORAL: (1/c²) ||C_c - C_a||_F² -----------------------------
    let zc_bar = z_clean.sub(&mu_c); // rows centered
    let za_bar = z_adv.sub(&mu_a);
    let cov_c = zc_bar.matmul_tn(&zc_bar).mul_scalar(1.0 / nf);
    let cov_a = za_bar.matmul_tn(&za_bar).mul_scalar(1.0 / nf);
    let d = cov_c.sub(&cov_a);
    loss += d.powi(2).sum() / (cf * cf);
    // dL/dZ̄_c = (4/(c²n)) Z̄_c D;  dL/dZ_c = P dL/dZ̄_c with P = I - 11ᵀ/n
    let scale = 4.0 / (cf * cf * nf);
    let gc_bar = zc_bar.matmul(&d).mul_scalar(scale);
    let ga_bar = za_bar.matmul(&d).mul_scalar(-scale);
    g_clean.add_assign(&center_rows(&gc_bar));
    g_adv.add_assign(&center_rows(&ga_bar));

    // --- SDA: (1/(2nc)) Σ_i ‖z_i - ctr_{y_i}‖² over both domains --------
    let sda_scale = 1.0 / (2.0 * nf * cf);
    for (domain, (z, g)) in [(0, (z_clean, &mut g_clean)), (1, (z_adv, &mut g_adv))] {
        let _ = domain;
        for (i, &label) in y.iter().enumerate() {
            for j in 0..c {
                let delta = z.as_slice()[i * c + j] - centers.as_slice()[label * c + j];
                loss += sda_scale * delta * delta;
                g.as_mut_slice()[i * c + j] += 2.0 * sda_scale * delta;
            }
        }
    }

    (loss, g_clean, g_adv)
}

/// Subtracts the column mean from every row (the adjoint of row-centering).
fn center_rows(g: &Tensor) -> Tensor {
    g.sub(&g.mean_axis(0))
}

/// Exponential-moving-average update of per-class logit centers.
pub(crate) fn update_centers(centers: &mut Tensor, z: &Tensor, y: &[usize], momentum: f32) {
    let c = centers.shape()[1];
    let classes = centers.shape()[0];
    let mut sums = vec![0.0f32; classes * c];
    let mut counts = vec![0usize; classes];
    for (i, &label) in y.iter().enumerate() {
        counts[label] += 1;
        for j in 0..c {
            sums[label * c + j] += z.as_slice()[i * c + j];
        }
    }
    for label in 0..classes {
        if counts[label] == 0 {
            continue;
        }
        for j in 0..c {
            let batch_mean = sums[label * c + j] / counts[label] as f32;
            let idx = label * c + j;
            centers.as_mut_slice()[idx] =
                (1.0 - momentum) * centers.as_slice()[idx] + momentum * batch_mean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_accuracy;
    use crate::model::ModelSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simpadv_attacks::Bim;
    use simpadv_data::{SynthConfig, SynthDataset};
    use simpadv_nn::{accuracy, GradientModel};

    #[test]
    fn da_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 5;
        let c = 4;
        let z_c = Tensor::rand_uniform(&mut rng, &[n, c], -1.0, 1.0);
        let z_a = Tensor::rand_uniform(&mut rng, &[n, c], -1.0, 1.0);
        let centers = Tensor::rand_uniform(&mut rng, &[c, c], -0.5, 0.5);
        let y: Vec<usize> = (0..n).map(|i| i % c).collect();
        let (_, g_c, g_a) = domain_adaptation_grad(&z_c, &z_a, &centers, &y);
        let h = 1e-3f32;
        let loss_of = |zc: &Tensor, za: &Tensor| domain_adaptation_grad(zc, za, &centers, &y).0;
        for i in 0..(n * c) {
            let mut zp = z_c.clone();
            zp.as_mut_slice()[i] += h;
            let mut zm = z_c.clone();
            zm.as_mut_slice()[i] -= h;
            let num = (loss_of(&zp, &z_a) - loss_of(&zm, &z_a)) / (2.0 * h);
            let ana = g_c.as_slice()[i];
            assert!(
                (num - ana).abs() < 5e-3 * 1.0f32.max(num.abs()),
                "clean grad[{i}]: numeric {num} vs analytic {ana}"
            );
            let mut zp = z_a.clone();
            zp.as_mut_slice()[i] += h;
            let mut zm = z_a.clone();
            zm.as_mut_slice()[i] -= h;
            let num = (loss_of(&z_c, &zp) - loss_of(&z_c, &zm)) / (2.0 * h);
            let ana = g_a.as_slice()[i];
            assert!(
                (num - ana).abs() < 5e-3 * 1.0f32.max(num.abs()),
                "adv grad[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn da_loss_zero_for_identical_domains_at_centers() {
        // both domains equal and sitting exactly on their class centers
        let c = 3;
        let mut centers = Tensor::zeros(&[c, c]);
        centers.set(&[0, 0], 1.0);
        let z = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, c]);
        let (loss, g_c, g_a) = domain_adaptation_grad(&z, &z, &centers, &[0]);
        assert!(loss.abs() < 1e-9);
        assert!(g_c.norm_linf() < 1e-6);
        assert!(g_a.norm_linf() < 1e-6);
    }

    #[test]
    fn da_loss_detects_mean_shift() {
        let c = 2;
        let z_c = Tensor::zeros(&[4, c]);
        let z_a = Tensor::full(&[4, c], 1.0);
        let centers = Tensor::zeros(&[c, c]);
        let (loss, _, _) = domain_adaptation_grad(&z_c, &z_a, &centers, &[0, 1, 0, 1]);
        assert!(loss > 0.5, "shifted domains must register: {loss}");
    }

    #[test]
    fn centers_track_class_means() {
        let mut centers = Tensor::zeros(&[2, 2]);
        let z = Tensor::from_vec(vec![1.0, 0.0, 3.0, 0.0, 0.0, 2.0], &[3, 2]);
        update_centers(&mut centers, &z, &[0, 0, 1], 1.0); // momentum 1: jump to batch mean
        assert!((centers.at(&[0, 0]) - 2.0).abs() < 1e-6);
        assert!((centers.at(&[1, 1]) - 2.0).abs() < 1e-6);
        // class with no examples stays put
        update_centers(&mut centers, &z.rows(0..2), &[0, 0], 1.0);
        assert!((centers.at(&[1, 1]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn atda_resists_bim_better_than_vanilla() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(200, 2));
        let config = TrainConfig::new(40, 0).with_lr_decay(0.95);
        let eps = 0.3;

        let mut vanilla_clf = ModelSpec::default_mlp().build(0);
        super::super::VanillaTrainer::new().train(&mut vanilla_clf, &train, &config);
        let mut atda_clf = ModelSpec::default_mlp().build(0);
        AtdaTrainer::new(eps).train(&mut atda_clf, &train, &config);

        let mut atk_a = Bim::new(eps, 10);
        let mut atk_b = Bim::new(eps, 10);
        let acc_vanilla = evaluate_accuracy(&mut vanilla_clf, &test, &mut atk_a);
        let acc_atda = evaluate_accuracy(&mut atda_clf, &test, &mut atk_b);
        assert!(
            acc_atda > acc_vanilla + 0.1,
            "atda ({acc_atda}) should beat vanilla ({acc_vanilla}) under BIM(10)"
        );
    }

    #[test]
    fn keeps_clean_accuracy() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let mut clf = ModelSpec::default_mlp().build(0);
        AtdaTrainer::new(0.3).train(&mut clf, &train, &TrainConfig::new(15, 0).with_lr_decay(0.95));
        let acc = accuracy(&clf.logits(train.images()), train.labels());
        assert!(acc > 0.85, "clean train accuracy {acc}");
    }

    #[test]
    fn lambda_accessor_and_override() {
        let t = AtdaTrainer::new(0.2).with_lambda(0.5);
        assert_eq!(t.lambda(), 0.5);
        assert_eq!(t.id(), "atda");
    }
}
