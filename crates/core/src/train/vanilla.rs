//! Standard (undefended) training.

use super::{run_epochs, CheckpointSession, Trainer, TrainerAux};
use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_data::Dataset;
use simpadv_nn::Classifier;
use simpadv_resilience::PersistError;

/// Plain empirical-risk minimization on clean examples — the paper's
/// "Vanilla classifier". Defenseless against any gradient attack; its
/// Figure 1/2 curves calibrate how fast attacks succeed.
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaTrainer;

impl VanillaTrainer {
    /// Creates the trainer.
    pub fn new() -> Self {
        VanillaTrainer
    }
}

impl Trainer for VanillaTrainer {
    fn train_resumable(
        &mut self,
        clf: &mut Classifier,
        data: &Dataset,
        config: &TrainConfig,
        session: &mut CheckpointSession,
    ) -> Result<TrainReport, PersistError> {
        run_epochs(
            &self.id(),
            clf,
            data,
            config,
            session,
            TrainerAux::None,
            |clf, opt, _aux, _epoch, _idx, x, y| clf.train_batch(x, y, opt),
        )
    }

    fn id(&self) -> String {
        "vanilla".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use simpadv_data::{SynthConfig, SynthDataset};
    use simpadv_nn::{accuracy, GradientModel};

    #[test]
    fn learns_clean_data() {
        let data = SynthDataset::Mnist.generate(&SynthConfig::new(200, 1));
        let mut clf = ModelSpec::small_mlp().build(0);
        let config = TrainConfig::new(8, 0);
        let report = VanillaTrainer::new().train(&mut clf, &data, &config);
        assert_eq!(report.epochs(), 8);
        assert!(report.final_loss() < report.epoch_losses[0], "loss should fall");
        let acc = accuracy(&clf.logits(data.images()), data.labels());
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn report_counts_two_passes_per_batch() {
        let data = SynthDataset::Mnist.generate(&SynthConfig::new(64, 1));
        let mut clf = ModelSpec::small_mlp().build(0);
        let config = TrainConfig::new(1, 0).with_batch_size(32);
        let report = VanillaTrainer::new().train(&mut clf, &data, &config);
        // 2 batches × (1 forward + 1 backward)
        assert_eq!(report.forward_passes[0], 2);
        assert_eq!(report.backward_passes[0], 2);
    }

    #[test]
    fn training_is_deterministic() {
        let data = SynthDataset::Mnist.generate(&SynthConfig::new(100, 1));
        let config = TrainConfig::new(2, 5);
        let mut a = ModelSpec::small_mlp().build(0);
        let mut b = ModelSpec::small_mlp().build(0);
        let ra = VanillaTrainer::new().train(&mut a, &data, &config);
        let rb = VanillaTrainer::new().train(&mut b, &data, &config);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert_eq!(a.logits(data.images()), b.logits(data.images()));
    }
}
