//! The paper's contribution: simplified Single-Adv training with
//! epoch-wise iterated, persistent adversarial examples.

use super::{run_epochs, train_on_mixture, CheckpointSession, Trainer, TrainerAux};
use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_attacks::parallel::signed_step_parallel;
use simpadv_data::Dataset;
use simpadv_nn::Classifier;
use simpadv_resilience::PersistError;
use simpadv_runtime::Runtime;

/// The proposed method (Figure 3b of the paper).
///
/// Instead of running a k-step BIM loop inside every batch, the trainer
/// keeps **one persistent adversarial example per training image** and, on
/// each epoch, advances it by a **single signed-gradient step** against the
/// current model:
///
/// * per-step perturbation is *relatively large* (property 1: tiny steps
///   stop helping below a limit), so examples reach the ε boundary within
///   a few epochs;
/// * the intermediate iterates are trained on immediately (property 2:
///   most blind spots are revealed before the full attack is ready);
/// * every `reset_period` epochs the persistent examples reset to clean,
///   so the epoch-wise iteration tracks the drifting decision surface.
///
/// Per-epoch cost is therefore that of FGSM-Adv — one extra
/// forward/backward pair per batch — while the effective adversarial
/// examples become iterative across epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProposedTrainer {
    epsilon: f32,
    step: f32,
    reset_period: usize,
}

impl ProposedTrainer {
    /// Creates the trainer.
    ///
    /// * `epsilon` — total l∞ budget (0.3 / 0.2 in the paper);
    /// * `step` — per-epoch step size; the paper uses ε/10, large relative
    ///   to BIM(30)'s ε/30;
    /// * `reset_period` — epochs between resets of the persistent
    ///   examples (20 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` or `step` is negative/non-finite, or
    /// `reset_period == 0`.
    pub fn new(epsilon: f32, step: f32, reset_period: usize) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(step >= 0.0 && step.is_finite(), "invalid step {step}");
        assert!(reset_period > 0, "reset period must be positive");
        ProposedTrainer { epsilon, step, reset_period }
    }

    /// The paper's configuration for a dataset budget: step ε/10, reset
    /// every 20 epochs.
    pub fn paper_defaults(epsilon: f32) -> Self {
        Self::new(epsilon, epsilon / 10.0, 20)
    }

    /// Total perturbation budget ε.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Per-epoch step size.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Epochs between persistent-example resets.
    pub fn reset_period(&self) -> usize {
        self.reset_period
    }
}

/// Emits the persistent-example drift gauges the paper's empirical
/// properties are about: mean and max per-example l∞ distance of the
/// carried adversarial state from the clean images, and the fraction of
/// pixels sitting at the ε-ball boundary.
///
/// Pure serial arithmetic in row order, so the gauge values are bitwise
/// identical across thread counts. Call only when tracing is enabled —
/// the scan is O(dataset).
fn emit_drift_telemetry(adv: &simpadv_tensor::Tensor, clean: &simpadv_tensor::Tensor, eps: f32) {
    let a = adv.as_slice();
    let c = clean.as_slice();
    let rows = adv.shape()[0];
    if rows == 0 || a.len() != c.len() {
        return;
    }
    let row_len = a.len() / rows;
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    let mut at_boundary = 0usize;
    for r in 0..rows {
        let mut row_max = 0.0f32;
        for i in r * row_len..(r + 1) * row_len {
            let d = (a[i] - c[i]).abs();
            if d > row_max {
                row_max = d;
            }
            if d >= eps - 1e-6 {
                at_boundary += 1;
            }
        }
        sum += f64::from(row_max);
        max = max.max(f64::from(row_max));
    }
    simpadv_trace::gauge("drift_mean_linf", sum / rows as f64);
    simpadv_trace::gauge("drift_max_linf", max);
    simpadv_trace::gauge("boundary_frac", at_boundary as f64 / a.len() as f64);
}

impl Trainer for ProposedTrainer {
    fn train_resumable(
        &mut self,
        clf: &mut Classifier,
        data: &Dataset,
        config: &TrainConfig,
        session: &mut CheckpointSession,
    ) -> Result<TrainReport, PersistError> {
        // Persistent adversarial images, row-aligned with the dataset —
        // the state that makes this trainer's checkpoints more than
        // weights. Owned by the epoch loop so snapshots capture it; a
        // resume hands back the carried examples and reset schedule.
        let aux = TrainerAux::Proposed { adv: data.images().clone(), last_reset_epoch: 0 };
        let mut last_seen_epoch = usize::MAX;
        let (epsilon, step, reset_period) = (self.epsilon, self.step, self.reset_period);
        run_epochs(
            &self.id(),
            clf,
            data,
            config,
            session,
            aux,
            move |clf, opt, aux, epoch, idx, x, y| {
                let TrainerAux::Proposed { adv: adv_state, last_reset_epoch } = aux else {
                    unreachable!("proposed trainer always runs with Proposed aux state")
                };
                // Epoch-boundary reset (first batch of a reset epoch).
                if epoch > *last_reset_epoch && epoch % reset_period == 0 {
                    *adv_state = data.images().clone();
                    *last_reset_epoch = epoch;
                    simpadv_trace::counter("reset", 1);
                }
                // Epoch-boundary telemetry: how far the persistent examples
                // have drifted from clean (post-reset state on reset epochs).
                if epoch != last_seen_epoch {
                    last_seen_epoch = epoch;
                    if simpadv_trace::enabled() && !simpadv_trace::events_suppressed() {
                        emit_drift_telemetry(adv_state, data.images(), epsilon);
                    }
                }
                // One large signed step from the carried-over examples,
                // projected onto the ε-ball of the *clean* images. The step
                // runs chunk-parallel on model replicas; credit the one
                // batch-equivalent forward/backward pair back to `clf` so the
                // per-epoch cost bookkeeping still matches FGSM-Adv.
                let carried = adv_state.gather_rows(idx);
                let adv =
                    signed_step_parallel(&Runtime::global(), &*clf, &carried, x, y, step, epsilon);
                clf.credit_external_passes(1, 1);
                crate::contracts::check_adv_batch(&adv, x, epsilon);
                for (k, &i) in idx.iter().enumerate() {
                    adv_state.set_row(i, &adv.row(k));
                }
                train_on_mixture(clf, opt, x, &adv, y)
            },
        )
    }

    fn id(&self) -> String {
        "proposed".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_accuracy;
    use crate::model::ModelSpec;
    use simpadv_attacks::Bim;
    use simpadv_data::{SynthConfig, SynthDataset};
    use simpadv_nn::{accuracy, GradientModel};

    #[test]
    fn paper_defaults_match_section_v() {
        let t = ProposedTrainer::paper_defaults(0.3);
        assert!((t.step() - 0.03).abs() < 1e-6);
        assert_eq!(t.reset_period(), 20);
        assert_eq!(t.epsilon(), 0.3);
        assert_eq!(t.id(), "proposed");
    }

    #[test]
    fn same_per_epoch_cost_as_fgsm_adv() {
        let data = SynthDataset::Mnist.generate(&SynthConfig::new(64, 1));
        let config = TrainConfig::new(1, 0).with_batch_size(32);
        let mut a = ModelSpec::small_mlp().build(0);
        let ra = ProposedTrainer::paper_defaults(0.3).train(&mut a, &data, &config);
        let mut b = ModelSpec::small_mlp().build(0);
        let rb = super::super::FgsmAdvTrainer::new(0.3).train(&mut b, &data, &config);
        assert_eq!(ra.forward_passes, rb.forward_passes);
        assert_eq!(ra.backward_passes, rb.backward_passes);
    }

    #[test]
    fn beats_fgsm_adv_against_bim() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(200, 2));
        // long enough that the persistent examples iterate through several
        // epoch-wise cycles (reset at 20, 40)
        let config = TrainConfig::new(60, 0).with_lr_decay(0.96);
        let eps = 0.3;

        let mut fgsm_clf = ModelSpec::default_mlp().build(0);
        super::super::FgsmAdvTrainer::new(eps).train(&mut fgsm_clf, &train, &config);
        let mut prop_clf = ModelSpec::default_mlp().build(0);
        ProposedTrainer::paper_defaults(eps).train(&mut prop_clf, &train, &config);

        let mut atk_a = Bim::new(eps, 10);
        let mut atk_b = Bim::new(eps, 10);
        let acc_fgsm = evaluate_accuracy(&mut fgsm_clf, &test, &mut atk_a);
        let acc_prop = evaluate_accuracy(&mut prop_clf, &test, &mut atk_b);
        assert!(
            acc_prop > acc_fgsm + 0.05,
            "proposed ({acc_prop}) should beat fgsm-adv ({acc_fgsm}) under BIM(10)"
        );
    }

    #[test]
    fn keeps_clean_accuracy() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let mut clf = ModelSpec::default_mlp().build(0);
        ProposedTrainer::paper_defaults(0.3).train(
            &mut clf,
            &train,
            &TrainConfig::new(20, 0).with_lr_decay(0.95),
        );
        let acc = accuracy(&clf.logits(train.images()), train.labels());
        assert!(acc > 0.9, "clean train accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(100, 1));
        let config = TrainConfig::new(3, 4);
        let mut a = ModelSpec::small_mlp().build(0);
        let mut b = ModelSpec::small_mlp().build(0);
        let ra = ProposedTrainer::paper_defaults(0.3).train(&mut a, &train, &config);
        let rb = ProposedTrainer::paper_defaults(0.3).train(&mut b, &train, &config);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    #[should_panic(expected = "reset period")]
    fn zero_reset_period_rejected() {
        ProposedTrainer::new(0.3, 0.03, 0);
    }
}
