//! Adversarial-training methods: the paper's proposed trainer and every
//! baseline it is compared against.

mod atda;
mod bim_adv;
mod fgsm_adv;
mod free_adv;
mod proposed;
mod state;
mod vanilla;

pub use atda::AtdaTrainer;
pub use bim_adv::BimAdvTrainer;
pub use fgsm_adv::FgsmAdvTrainer;
pub use free_adv::FreeAdvTrainer;
pub use proposed::ProposedTrainer;
pub use state::{
    dataset_crc, set_checkpoint_policy, CheckpointPolicy, CheckpointSession, TrainState,
    TrainerAux, TRAIN_STATE_VERSION,
};
pub use vanilla::VanillaTrainer;

use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_data::Dataset;
use simpadv_nn::{Classifier, Optimizer, Sgd, StateDict};
use simpadv_resilience::PersistError;

/// An adversarial-training method.
///
/// Implementations differ only in *which examples each batch trains on*;
/// architecture, optimizer and schedule come from the shared
/// [`TrainConfig`], keeping the paper's "same hyper-parameter setting"
/// comparison honest.
pub trait Trainer {
    /// Trains `clf` on `data`, checkpointing and/or resuming through
    /// `session`, and reports per-epoch losses, wall-clock times and
    /// gradient-pass counts. With a disabled session this is exactly
    /// [`Trainer::train`] minus the panic on persistence errors.
    ///
    /// Resume contract: running `k` epochs, crashing, and resuming to
    /// `n` epochs is bitwise identical to running `n` epochs straight —
    /// weights, aux state, losses and logical work all match.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] from saving, loading or validating snapshots.
    fn train_resumable(
        &mut self,
        clf: &mut Classifier,
        data: &Dataset,
        config: &TrainConfig,
        session: &mut CheckpointSession,
    ) -> Result<TrainReport, PersistError>;

    /// Trains `clf` on `data` and reports per-epoch losses, wall-clock
    /// times and gradient-pass counts.
    ///
    /// Checkpointing is off unless an ambient [`CheckpointPolicy`] is
    /// installed (see [`set_checkpoint_policy`]), in which case this call
    /// gets its own numbered checkpoint subdirectory.
    ///
    /// # Panics
    ///
    /// Panics when the ambient policy is active and persistence fails —
    /// the infallible signature predates checkpointing and is kept for
    /// the experiment harnesses.
    fn train(&mut self, clf: &mut Classifier, data: &Dataset, config: &TrainConfig) -> TrainReport {
        state::session_from_policy(&self.id())
            .and_then(|mut session| self.train_resumable(clf, data, config, &mut session))
            .unwrap_or_else(|e| panic!("checkpointing failed: {e}"))
    }

    /// A short identifier such as `"fgsm-adv"` or `"bim(10)-adv"`.
    fn id(&self) -> String;
}

/// Shared epoch loop: drives `step` once per batch and handles timing,
/// pass counting, loss averaging — and checkpoint/resume — uniformly
/// across trainers.
///
/// `step(clf, opt, aux, epoch, indices, images, labels)` performs
/// whatever the method does with one batch and returns the batch loss it
/// optimized; `aux` is the trainer's persistent state, owned by the loop
/// so snapshots can capture it at epoch boundaries.
///
/// Tracing: the whole run sits in a `train` span and every epoch in a
/// nested `epoch` span whose [`simpadv_trace::SpanTiming`] is what lands
/// in the report — so `TrainReport::epoch_seconds` comes from the span's
/// monotonic clock and `TrainReport::epoch_work` from its logical clock.
/// Checkpoint saves/resumes emit `checkpoint` spans and counters *outside*
/// the `epoch` spans, keeping the epoch event stream identical whether or
/// not checkpointing is on.
pub(crate) fn run_epochs<F>(
    trainer_id: &str,
    clf: &mut Classifier,
    data: &Dataset,
    config: &TrainConfig,
    session: &mut CheckpointSession,
    mut aux: TrainerAux,
    mut step: F,
) -> Result<TrainReport, PersistError>
where
    F: FnMut(
        &mut Classifier,
        &mut dyn Optimizer,
        &mut TrainerAux,
        usize,
        &[usize],
        &simpadv_tensor::Tensor,
        &[usize],
    ) -> f32,
{
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let _train_span = simpadv_trace::span!(
        "train",
        trainer = trainer_id,
        epochs = config.epochs,
        batch_size = config.batch_size,
        seed = config.seed
    );
    let mut report = TrainReport::new(trainer_id);
    let mut opt = Sgd::new(config.learning_rate).with_momentum(config.momentum);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut start_epoch = 0usize;
    // The dataset fingerprint is only needed when snapshots exist; the
    // scan is O(dataset), so skip it for plain runs.
    let data_crc = if session.is_enabled() { dataset_crc(data) } else { 0 };
    if let Some(snapshot) = session.load_for_resume()? {
        snapshot.check_resumable(trainer_id, config, data_crc)?;
        snapshot.validate_finite()?;
        let _resume_span = simpadv_trace::span!("checkpoint", action = "resume");
        rng = StdRng::from_state(snapshot.rng_words());
        snapshot.model.restore(clf.network_mut());
        opt.restore_state(snapshot.optim);
        report = snapshot.report;
        aux = snapshot.aux;
        start_epoch = snapshot.next_epoch;
    }
    for epoch in start_epoch..config.epochs {
        if config.lr_decay < 1.0 {
            opt.set_learning_rate(config.learning_rate * config.lr_decay.powi(epoch as i32));
        }
        clf.reset_pass_counters();
        let span = simpadv_trace::span!("epoch", index = epoch);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for (idx, images, labels) in data.batches(config.batch_size, &mut rng) {
            loss_sum += step(clf, &mut opt, &mut aux, epoch, &idx, &images, &labels);
            batches += 1;
        }
        let loss = if batches > 0 { loss_sum / batches as f32 } else { 0.0 };
        simpadv_trace::gauge("loss", f64::from(loss));
        simpadv_trace::observe("loss_hist", f64::from(loss));
        let timing = span.finish();
        report.push_epoch(loss, &timing, clf.forward_passes(), clf.backward_passes());
        if session.should_save(epoch, config.epochs) {
            let _save_span = simpadv_trace::span!("checkpoint", action = "save", epoch = epoch);
            let snapshot = TrainState {
                version: TRAIN_STATE_VERSION,
                trainer_id: trainer_id.to_string(),
                config: *config,
                next_epoch: epoch + 1,
                rng: rng.state().to_vec(),
                data_crc,
                model: StateDict::capture(clf.network()),
                optim: opt.snapshot_state(),
                report: report.clone(),
                aux: aux.clone(),
            };
            snapshot.validate_finite()?;
            session.save(&snapshot)?;
        }
    }
    Ok(report)
}

/// Trains on the concatenation of the clean batch and pre-built
/// adversarial examples — the "mixture of original and adversarial
/// examples" that FGSM-Adv, BIM-Adv and the proposed method all use.
pub(crate) fn train_on_mixture(
    clf: &mut Classifier,
    opt: &mut dyn Optimizer,
    clean: &simpadv_tensor::Tensor,
    adv: &simpadv_tensor::Tensor,
    labels: &[usize],
) -> f32 {
    let x = simpadv_tensor::Tensor::concat_rows(&[clean, adv]);
    let mut y = labels.to_vec();
    y.extend_from_slice(labels);
    clf.train_batch(&x, &y, opt)
}
