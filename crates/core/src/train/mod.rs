//! Adversarial-training methods: the paper's proposed trainer and every
//! baseline it is compared against.

mod atda;
mod bim_adv;
mod fgsm_adv;
mod free_adv;
mod proposed;
mod vanilla;

pub use atda::AtdaTrainer;
pub use bim_adv::BimAdvTrainer;
pub use fgsm_adv::FgsmAdvTrainer;
pub use free_adv::FreeAdvTrainer;
pub use proposed::ProposedTrainer;
pub use vanilla::VanillaTrainer;

use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_data::Dataset;
use simpadv_nn::{Classifier, Optimizer, Sgd};

/// An adversarial-training method.
///
/// Implementations differ only in *which examples each batch trains on*;
/// architecture, optimizer and schedule come from the shared
/// [`TrainConfig`], keeping the paper's "same hyper-parameter setting"
/// comparison honest.
pub trait Trainer {
    /// Trains `clf` on `data` and reports per-epoch losses, wall-clock
    /// times and gradient-pass counts.
    fn train(&mut self, clf: &mut Classifier, data: &Dataset, config: &TrainConfig) -> TrainReport;

    /// A short identifier such as `"fgsm-adv"` or `"bim(10)-adv"`.
    fn id(&self) -> String;
}

/// Shared epoch loop: drives `step` once per batch and handles timing,
/// pass counting and loss averaging uniformly across trainers.
///
/// `step(clf, opt, epoch, indices, images, labels)` performs whatever the
/// method does with one batch and returns the batch loss it optimized.
///
/// Tracing: the whole run sits in a `train` span and every epoch in a
/// nested `epoch` span whose [`simpadv_trace::SpanTiming`] is what lands
/// in the report — so `TrainReport::epoch_seconds` comes from the span's
/// monotonic clock and `TrainReport::epoch_work` from its logical clock.
pub(crate) fn run_epochs<F>(
    trainer_id: &str,
    clf: &mut Classifier,
    data: &Dataset,
    config: &TrainConfig,
    mut step: F,
) -> TrainReport
where
    F: FnMut(
        &mut Classifier,
        &mut dyn Optimizer,
        usize,
        &[usize],
        &simpadv_tensor::Tensor,
        &[usize],
    ) -> f32,
{
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let _train_span = simpadv_trace::span!(
        "train",
        trainer = trainer_id,
        epochs = config.epochs,
        batch_size = config.batch_size,
        seed = config.seed
    );
    let mut report = TrainReport::new(trainer_id);
    let mut opt = Sgd::new(config.learning_rate).with_momentum(config.momentum);
    let mut rng = StdRng::seed_from_u64(config.seed);
    for epoch in 0..config.epochs {
        if config.lr_decay < 1.0 {
            opt.set_learning_rate(config.learning_rate * config.lr_decay.powi(epoch as i32));
        }
        clf.reset_pass_counters();
        let span = simpadv_trace::span!("epoch", index = epoch);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for (idx, images, labels) in data.batches(config.batch_size, &mut rng) {
            loss_sum += step(clf, &mut opt, epoch, &idx, &images, &labels);
            batches += 1;
        }
        let loss = if batches > 0 { loss_sum / batches as f32 } else { 0.0 };
        simpadv_trace::gauge("loss", f64::from(loss));
        simpadv_trace::observe("loss_hist", f64::from(loss));
        let timing = span.finish();
        report.push_epoch(loss, &timing, clf.forward_passes(), clf.backward_passes());
    }
    report
}

/// Trains on the concatenation of the clean batch and pre-built
/// adversarial examples — the "mixture of original and adversarial
/// examples" that FGSM-Adv, BIM-Adv and the proposed method all use.
pub(crate) fn train_on_mixture(
    clf: &mut Classifier,
    opt: &mut dyn Optimizer,
    clean: &simpadv_tensor::Tensor,
    adv: &simpadv_tensor::Tensor,
    labels: &[usize],
) -> f32 {
    let x = simpadv_tensor::Tensor::concat_rows(&[clean, adv]);
    let mut y = labels.to_vec();
    y.extend_from_slice(labels);
    clf.train_batch(&x, &y, opt)
}
