//! "Free" adversarial training (Shafahi et al., 2019) — an extension
//! beyond the paper, included because it is the closest published sibling
//! of the proposed method: both amortize the cost of iterative
//! adversarial examples instead of paying it inside every batch.

use super::{run_epochs, CheckpointSession, Trainer, TrainerAux};
use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_attacks::project_ball;
use simpadv_data::Dataset;
use simpadv_nn::Classifier;
use simpadv_resilience::PersistError;

/// Free adversarial training: each minibatch is replayed `m` times; every
/// replay trains on `x + δ` and **recycles the input gradient of that
/// same backward pass** to advance δ by one signed step, so the attack
/// costs no extra passes at all.
///
/// Differences from the original, documented for faithfulness:
///
/// * δ is kept **per training example** (aligned with dataset rows) rather
///   than as one buffer shared across minibatches — cleaner semantics,
///   same amortization;
/// * like the other trainers here, replays use the dataset's ε-ball
///   projection with pixel-box clipping.
///
/// Relative cost: `m` pass-pairs per batch (vs 2 for FGSM-Adv/Proposed,
/// `k+1` for BIM(k)-Adv) — but with no separate attack passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreeAdvTrainer {
    epsilon: f32,
    replays: usize,
}

impl FreeAdvTrainer {
    /// Creates the trainer with budget `epsilon` and `replays` (the
    /// original's `m`, conventionally 4–8).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite or `replays == 0`.
    pub fn new(epsilon: f32, replays: usize) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(replays > 0, "need at least one replay");
        FreeAdvTrainer { epsilon, replays }
    }

    /// The replay count `m`.
    pub fn replays(&self) -> usize {
        self.replays
    }
}

impl Trainer for FreeAdvTrainer {
    fn train_resumable(
        &mut self,
        clf: &mut Classifier,
        data: &Dataset,
        config: &TrainConfig,
        session: &mut CheckpointSession,
    ) -> Result<TrainReport, PersistError> {
        // δ is carried across epochs (the whole point of "free" training),
        // so it lives in the checkpointable aux state.
        let aux = TrainerAux::Free { delta: simpadv_tensor::Tensor::zeros(data.images().shape()) };
        let (epsilon, replays) = (self.epsilon, self.replays);
        run_epochs(
            &self.id(),
            clf,
            data,
            config,
            session,
            aux,
            move |clf, opt, aux, _epoch, idx, x, y| {
                let TrainerAux::Free { delta: delta_state } = aux else {
                    unreachable!("free trainer always runs with Free aux state")
                };
                let mut delta = delta_state.gather_rows(idx);
                let mut loss_sum = 0.0;
                for _ in 0..replays {
                    let adv = project_ball(&x.add(&delta), x, epsilon);
                    let (loss, grad_x) = clf.train_batch_with_input_grad(&adv, y, opt);
                    loss_sum += loss;
                    // recycle the gradient: one signed step on delta
                    delta.add_assign(&grad_x.sign().mul_scalar(epsilon / replays as f32));
                    delta.clamp_in_place(-epsilon, epsilon);
                }
                for (k, &i) in idx.iter().enumerate() {
                    delta_state.set_row(i, &delta.row(k));
                }
                loss_sum / replays as f32
            },
        )
    }

    fn id(&self) -> String {
        format!("free({})-adv", self.replays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_accuracy;
    use crate::model::ModelSpec;
    use simpadv_attacks::Bim;
    use simpadv_data::{SynthConfig, SynthDataset};

    #[test]
    fn replay_cost_has_no_attack_overhead() {
        let data = SynthDataset::Mnist.generate(&SynthConfig::new(64, 1));
        let config = TrainConfig::new(1, 0).with_batch_size(32);
        let mut clf = ModelSpec::small_mlp().build(0);
        let report = FreeAdvTrainer::new(0.3, 4).train(&mut clf, &data, &config);
        // 2 batches × 4 replays × 1 pass pair, nothing else
        assert_eq!(report.forward_passes[0], 8);
        assert_eq!(report.backward_passes[0], 8);
    }

    #[test]
    fn defends_better_than_vanilla() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(200, 2));
        let config = TrainConfig::new(30, 0).with_lr_decay(0.95);
        let eps = 0.3;
        let mut free = ModelSpec::default_mlp().build(0);
        FreeAdvTrainer::new(eps, 4).train(&mut free, &train, &config);
        let mut vanilla = ModelSpec::default_mlp().build(0);
        super::super::VanillaTrainer::new().train(&mut vanilla, &train, &config);
        let mut atk_a = Bim::new(eps, 10);
        let mut atk_b = Bim::new(eps, 10);
        let acc_free = evaluate_accuracy(&mut free, &test, &mut atk_a);
        let acc_vanilla = evaluate_accuracy(&mut vanilla, &test, &mut atk_b);
        assert!(
            acc_free > acc_vanilla + 0.05,
            "free-adv ({acc_free}) should beat vanilla ({acc_vanilla}) under BIM(10)"
        );
    }

    #[test]
    fn id_and_accessors() {
        let t = FreeAdvTrainer::new(0.2, 6);
        assert_eq!(t.id(), "free(6)-adv");
        assert_eq!(t.replays(), 6);
    }

    #[test]
    #[should_panic(expected = "replay")]
    fn zero_replays_rejected() {
        FreeAdvTrainer::new(0.3, 0);
    }
}
