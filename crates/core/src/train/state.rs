//! Resumable training state: the full snapshot a trainer needs to
//! continue a run *bitwise identically* after a crash.
//!
//! The paper's proposed defense is defined by state that outlives any
//! single batch — one persistent adversarial example per training image,
//! advanced every epoch and reset on a schedule — so a checkpoint that
//! only stored weights would silently change the method on resume.
//! [`TrainState`] therefore captures everything the epoch loop consumes:
//! model tensors, optimizer buffers, the shuffling RNG's exact stream
//! position, the accumulated report, and the trainer's auxiliary state.
//!
//! Snapshots are serialized to JSON (the workspace's shim renders `f32`
//! round-trippably, so this is lossless) and stored through
//! [`simpadv_resilience::CheckpointStore`], giving atomicity, checksums
//! and fallback to the newest valid generation for free.

use crate::config::TrainConfig;
use crate::report::TrainReport;
use serde::{Deserialize, Serialize};
use simpadv_data::Dataset;
use simpadv_nn::{OptimState, StateDict};
use simpadv_resilience::{crc32, CheckpointStore, PersistError};
use simpadv_tensor::Tensor;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Version of the [`TrainState`] schema inside the envelope payload.
pub const TRAIN_STATE_VERSION: u32 = 1;

/// Trainer-specific state that must survive a crash, keyed by method.
///
/// Stateless trainers (vanilla, FGSM-Adv, BIM-Adv) use [`TrainerAux::None`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainerAux {
    /// No auxiliary state.
    None,
    /// The proposed method: persistent adversarial images (row-aligned
    /// with the dataset) and the epoch of the last schedule reset.
    Proposed {
        /// Carried adversarial examples.
        adv: Tensor,
        /// Epoch at which the examples were last reset to clean.
        last_reset_epoch: usize,
    },
    /// Free adversarial training: the per-example perturbation buffer.
    Free {
        /// Carried perturbations δ, row-aligned with the dataset.
        delta: Tensor,
    },
    /// ATDA: per-class logit centers (exponential moving averages).
    Atda {
        /// `[classes, logit_dim]` center matrix.
        centers: Tensor,
    },
}

impl TrainerAux {
    /// The tensors this aux state carries, with names for diagnostics.
    fn tensors(&self) -> Vec<(&'static str, &Tensor)> {
        match self {
            TrainerAux::None => Vec::new(),
            TrainerAux::Proposed { adv, .. } => vec![("aux.adv", adv)],
            TrainerAux::Free { delta } => vec![("aux.delta", delta)],
            TrainerAux::Atda { centers } => vec![("aux.centers", centers)],
        }
    }
}

/// A complete, serializable snapshot of a training run between epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainState {
    /// Schema version ([`TRAIN_STATE_VERSION`]).
    pub version: u32,
    /// Id of the trainer that produced the snapshot.
    pub trainer_id: String,
    /// The run's hyper-parameters (resume may extend `epochs` only).
    pub config: TrainConfig,
    /// First epoch the resumed run still has to execute.
    pub next_epoch: usize,
    /// The shuffling RNG's internal state (4 words for the workspace's
    /// xoshiro256++ generator), captured at the epoch boundary.
    pub rng: Vec<u64>,
    /// CRC32 of the training set (images + labels) the run was on.
    pub data_crc: u32,
    /// Model tensors.
    pub model: StateDict,
    /// Optimizer buffers (momentum velocity etc.).
    pub optim: OptimState,
    /// Report accumulated so far (losses, timings, pass counts).
    pub report: TrainReport,
    /// Trainer-specific persistent state.
    pub aux: TrainerAux,
}

impl TrainState {
    /// Rejects snapshots holding NaN/Inf in the model or aux tensors —
    /// persisting a diverged run would poison every later resume.
    ///
    /// # Errors
    ///
    /// [`PersistError::NonFinite`] naming the offending tensor.
    pub fn validate_finite(&self) -> Result<(), PersistError> {
        self.model.validate_finite()?;
        for (name, tensor) in self.aux.tensors() {
            if tensor.as_slice().iter().any(|v| !v.is_finite()) {
                return Err(PersistError::NonFinite { name: name.to_string() });
            }
        }
        Ok(())
    }

    /// Checks that this snapshot belongs to the run being resumed: same
    /// trainer, same hyper-parameters (the epoch budget may grow), same
    /// dataset, supported schema, intact RNG state.
    ///
    /// # Errors
    ///
    /// [`PersistError::Version`] or [`PersistError::Mismatch`] describing
    /// the first disagreement.
    pub fn check_resumable(
        &self,
        trainer_id: &str,
        config: &TrainConfig,
        data_crc: u32,
    ) -> Result<(), PersistError> {
        if self.version != TRAIN_STATE_VERSION {
            return Err(PersistError::Version {
                found: self.version,
                supported: TRAIN_STATE_VERSION,
            });
        }
        if self.trainer_id != trainer_id {
            return Err(PersistError::Mismatch {
                what: "trainer".to_string(),
                detail: format!("checkpoint is {:?}, run is {trainer_id:?}", self.trainer_id),
            });
        }
        let mut normalized = self.config;
        normalized.epochs = config.epochs;
        if normalized != *config {
            return Err(PersistError::Mismatch {
                what: "config".to_string(),
                detail: format!("checkpoint {:?} vs run {config:?}", self.config),
            });
        }
        if config.epochs < self.next_epoch {
            return Err(PersistError::Mismatch {
                what: "epochs".to_string(),
                detail: format!(
                    "checkpoint already at epoch {}, run only asks for {}",
                    self.next_epoch, config.epochs
                ),
            });
        }
        if self.data_crc != data_crc {
            return Err(PersistError::Mismatch {
                what: "data".to_string(),
                detail: format!(
                    "checkpoint dataset crc {:#010x}, run dataset crc {data_crc:#010x}",
                    self.data_crc
                ),
            });
        }
        if self.rng.len() != 4 {
            return Err(PersistError::Mismatch {
                what: "rng".to_string(),
                detail: format!("expected 4 state words, found {}", self.rng.len()),
            });
        }
        Ok(())
    }

    /// The RNG state as the fixed-size array the generator wants.
    ///
    /// # Panics
    ///
    /// Panics when the state does not hold exactly 4 words; call
    /// [`TrainState::check_resumable`] first.
    pub fn rng_words(&self) -> [u64; 4] {
        assert_eq!(self.rng.len(), 4, "rng state must hold 4 words");
        [self.rng[0], self.rng[1], self.rng[2], self.rng[3]]
    }
}

/// CRC32 fingerprint of a dataset (images then labels), used to refuse
/// resuming a checkpoint onto different data.
pub fn dataset_crc(data: &Dataset) -> u32 {
    let images = data.images().as_slice();
    let labels = data.labels();
    let mut bytes = Vec::with_capacity(images.len() * 4 + labels.len() * 8);
    for v in images {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    for &label in labels {
        bytes.extend_from_slice(&(label as u64).to_le_bytes());
    }
    crc32(&bytes)
}

/// Checkpointing context for one training run: where snapshots go, how
/// often they are taken, and whether the run should first try to resume.
///
/// A disabled session ([`CheckpointSession::disabled`]) makes the whole
/// mechanism a no-op — the epoch loop never touches the filesystem.
#[derive(Debug)]
pub struct CheckpointSession {
    store: Option<CheckpointStore>,
    every: usize,
    resume: bool,
}

impl CheckpointSession {
    /// A session that neither saves nor resumes.
    pub fn disabled() -> Self {
        CheckpointSession { store: None, every: 0, resume: false }
    }

    /// Opens (creating if needed) `dir` for snapshots every `every`
    /// epochs. `every == 0` disables periodic saves but still writes the
    /// final-epoch snapshot.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Result<Self, PersistError> {
        Ok(CheckpointSession { store: Some(CheckpointStore::open(dir)?), every, resume: false })
    }

    /// Requests that the run first try to resume from the newest valid
    /// generation in the directory (fresh start when the store is empty).
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Whether this session checkpoints at all.
    pub fn is_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// Whether the epoch that just finished (0-based `epoch` out of
    /// `total`) should be snapshotted: every `every`-th epoch and always
    /// the last one.
    pub(crate) fn should_save(&self, epoch: usize, total: usize) -> bool {
        if self.store.is_none() {
            return false;
        }
        epoch + 1 == total || (self.every > 0 && (epoch + 1).is_multiple_of(self.every))
    }

    /// Loads the newest valid snapshot when resume was requested.
    ///
    /// # Errors
    ///
    /// Store/scan errors, [`PersistError::NoValidGeneration`] when the
    /// directory holds only damaged files, or [`PersistError::Decode`]
    /// when a validated payload is not a [`TrainState`].
    pub(crate) fn load_for_resume(&self) -> Result<Option<TrainState>, PersistError> {
        let store = match (&self.store, self.resume) {
            (Some(store), true) => store,
            _ => return Ok(None),
        };
        let (generation, payload) = match store.load_latest_valid()? {
            Some(found) => found,
            None => return Ok(None),
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|_| PersistError::Decode("snapshot is not UTF-8".to_string()))?;
        let state: TrainState =
            serde_json::from_str(text).map_err(|e| PersistError::Decode(e.to_string()))?;
        simpadv_trace::counter_with(
            "checkpoint_resumed",
            1,
            &[
                ("generation", simpadv_trace::FieldValue::U64(generation)),
                ("next_epoch", simpadv_trace::FieldValue::from(state.next_epoch)),
            ],
        );
        Ok(Some(state))
    }

    /// Serializes and saves one snapshot as a new generation.
    ///
    /// # Errors
    ///
    /// [`PersistError::Encode`] or any write-path error.
    pub(crate) fn save(&self, state: &TrainState) -> Result<(), PersistError> {
        let store = match &self.store {
            Some(store) => store,
            None => return Ok(()),
        };
        let json = serde_json::to_string(state).map_err(|e| PersistError::Encode(e.to_string()))?;
        store.save(json.as_bytes())?;
        Ok(())
    }
}

/// Process-wide checkpoint policy for harnesses (the bench regeneration
/// binaries) whose many training calls all go through `Trainer::train`:
/// each call gets its own subdirectory `NNN-<trainer-id>` under
/// the policy root, numbered in call order. Because the binaries are
/// deterministic, the numbering replays identically on restart, which is
/// what lets `--resume` find the right directory per training.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Root directory; each training call creates a subdirectory.
    pub dir: PathBuf,
    /// Snapshot period in epochs (0 = final snapshot only).
    pub every: usize,
    /// Resume each training from its subdirectory when possible.
    pub resume: bool,
}

fn policy_cell() -> &'static Mutex<Option<CheckpointPolicy>> {
    static CELL: OnceLock<Mutex<Option<CheckpointPolicy>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

static POLICY_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Installs (or with `None`, removes) the ambient checkpoint policy and
/// resets the per-call sequence counter.
pub fn set_checkpoint_policy(policy: Option<CheckpointPolicy>) {
    let mut cell = policy_cell().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *cell = policy;
    POLICY_SEQ.store(0, Ordering::SeqCst);
}

/// Sanitizes a trainer id into a directory-name-safe slug.
fn slug(id: &str) -> String {
    id.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' }).collect()
}

/// Builds the session for one `train()` call under the ambient policy —
/// disabled when no policy is installed.
///
/// # Errors
///
/// [`PersistError::Io`] when the per-call subdirectory cannot be created.
pub(crate) fn session_from_policy(trainer_id: &str) -> Result<CheckpointSession, PersistError> {
    let policy = {
        let cell = policy_cell().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        cell.clone()
    };
    let Some(policy) = policy else {
        return Ok(CheckpointSession::disabled());
    };
    let seq = POLICY_SEQ.fetch_add(1, Ordering::SeqCst);
    let dir: &Path = &policy.dir;
    let session =
        CheckpointSession::new(dir.join(format!("{seq:03}-{}", slug(trainer_id))), policy.every)?;
    Ok(session.with_resume(policy.resume))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpadv_data::{SynthConfig, SynthDataset};

    fn probe_state() -> TrainState {
        TrainState {
            version: TRAIN_STATE_VERSION,
            trainer_id: "probe".to_string(),
            config: TrainConfig::new(4, 7),
            next_epoch: 2,
            rng: vec![1, 2, 3, 4],
            data_crc: 0xABCD,
            model: StateDict { entries: vec![("w".to_string(), Tensor::ones(&[2, 2]))] },
            optim: OptimState::default(),
            report: TrainReport::new("probe"),
            aux: TrainerAux::Proposed { adv: Tensor::zeros(&[2, 4]), last_reset_epoch: 0 },
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let state = probe_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: TrainState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn non_finite_aux_is_rejected() {
        let mut state = probe_state();
        assert!(state.validate_finite().is_ok());
        if let TrainerAux::Proposed { adv, .. } = &mut state.aux {
            adv.as_mut_slice()[3] = f32::NAN;
        }
        let err = state.validate_finite().unwrap_err();
        assert!(matches!(err, PersistError::NonFinite { ref name } if name == "aux.adv"));
    }

    #[test]
    fn resume_validation_catches_mismatches() {
        let state = probe_state();
        let config = TrainConfig::new(8, 7); // extending epochs is fine
        assert!(state.check_resumable("probe", &config, 0xABCD).is_ok());
        assert!(state.check_resumable("other", &config, 0xABCD).is_err());
        assert!(state.check_resumable("probe", &config, 0xDEAD).is_err());
        let different = TrainConfig::new(8, 8); // different seed
        assert!(state.check_resumable("probe", &different, 0xABCD).is_err());
        let shrunk = TrainConfig::new(1, 7); // fewer epochs than next_epoch
        assert!(state.check_resumable("probe", &shrunk, 0xABCD).is_err());
    }

    #[test]
    fn dataset_crc_distinguishes_datasets() {
        let a = SynthDataset::Mnist.generate(&SynthConfig::new(16, 1));
        let b = SynthDataset::Mnist.generate(&SynthConfig::new(16, 2));
        assert_eq!(dataset_crc(&a), dataset_crc(&a));
        assert_ne!(dataset_crc(&a), dataset_crc(&b));
    }

    #[test]
    fn save_cadence_includes_final_epoch() {
        let session = CheckpointSession::disabled();
        assert!(!session.should_save(9, 10), "disabled never saves");
        let dir = std::env::temp_dir().join(format!("simpadv-session-{}", std::process::id()));
        let session = CheckpointSession::new(&dir, 4).unwrap();
        assert!(!session.should_save(0, 10));
        assert!(session.should_save(3, 10), "every 4th epoch");
        assert!(session.should_save(9, 10), "final epoch always");
        let final_only = CheckpointSession::new(&dir, 0).unwrap();
        assert!(!final_only.should_save(3, 10));
        assert!(final_only.should_save(9, 10));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ambient_policy_numbers_calls_in_order() {
        let root = std::env::temp_dir().join(format!("simpadv-policy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        set_checkpoint_policy(Some(CheckpointPolicy {
            dir: root.clone(),
            every: 2,
            resume: false,
        }));
        let s0 = session_from_policy("proposed").unwrap();
        let s1 = session_from_policy("bim(10)-adv").unwrap();
        assert!(s0.is_enabled() && s1.is_enabled());
        assert!(root.join("000-proposed").is_dir());
        assert!(root.join("001-bim_10_-adv").is_dir());
        set_checkpoint_policy(None);
        assert!(!session_from_policy("proposed").unwrap().is_enabled());
        let _ = std::fs::remove_dir_all(&root);
    }
}
