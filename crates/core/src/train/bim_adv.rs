//! Adversarial training with iterative (BIM) examples — Iter-Adv.

use super::{run_epochs, train_on_mixture, CheckpointSession, Trainer, TrainerAux};
use crate::config::TrainConfig;
use crate::report::TrainReport;
use simpadv_attacks::{Attack, Bim};
use simpadv_data::Dataset;
use simpadv_nn::Classifier;
use simpadv_resilience::PersistError;

/// Iter-Adv (Kurakin et al. / Madry et al.): each batch trains on a
/// mixture of clean examples and BIM(k) examples regenerated from scratch
/// against the current model.
///
/// This is the strong-but-expensive reference point of the paper: its
/// per-batch cost grows linearly in `k` (the `k` inner
/// forward/backward passes dominate Table I's training-time column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BimAdvTrainer {
    epsilon: f32,
    iterations: usize,
}

impl BimAdvTrainer {
    /// Creates the trainer with budget `epsilon` and `iterations` BIM
    /// steps (step size `epsilon / iterations`, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite or `iterations == 0`.
    pub fn new(epsilon: f32, iterations: usize) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        assert!(iterations > 0, "need at least one iteration");
        BimAdvTrainer { epsilon, iterations }
    }

    /// The number of BIM iterations per batch.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Trainer for BimAdvTrainer {
    fn train_resumable(
        &mut self,
        clf: &mut Classifier,
        data: &Dataset,
        config: &TrainConfig,
        session: &mut CheckpointSession,
    ) -> Result<TrainReport, PersistError> {
        let mut attack = Bim::new(self.epsilon, self.iterations);
        run_epochs(
            &self.id(),
            clf,
            data,
            config,
            session,
            TrainerAux::None,
            |clf, opt, _aux, _epoch, _idx, x, y| {
                let adv = attack.perturb(clf, x, y);
                train_on_mixture(clf, opt, x, &adv, y)
            },
        )
    }

    fn id(&self) -> String {
        format!("bim({})-adv", self.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_accuracy;
    use crate::model::ModelSpec;
    use simpadv_data::{SynthConfig, SynthDataset};

    #[test]
    fn resists_iterative_attacks() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(400, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(200, 2));
        let config = TrainConfig::new(40, 0).with_lr_decay(0.95);
        let eps = 0.3;

        let mut fgsm_adv = ModelSpec::default_mlp().build(0);
        super::super::FgsmAdvTrainer::new(eps).train(&mut fgsm_adv, &train, &config);
        let mut bim_adv = ModelSpec::default_mlp().build(0);
        BimAdvTrainer::new(eps, 10).train(&mut bim_adv, &train, &config);

        let mut atk_a = Bim::new(eps, 10);
        let mut atk_b = Bim::new(eps, 10);
        let acc_fgsm = evaluate_accuracy(&mut fgsm_adv, &test, &mut atk_a);
        let acc_bim = evaluate_accuracy(&mut bim_adv, &test, &mut atk_b);
        assert!(
            acc_bim > acc_fgsm + 0.15,
            "bim-adv ({acc_bim}) should beat fgsm-adv ({acc_fgsm}) under BIM(10)"
        );
        assert!(acc_bim > 0.35, "bim-adv accuracy under BIM(10): {acc_bim}");
    }

    #[test]
    fn cost_scales_with_iterations() {
        let data = SynthDataset::Mnist.generate(&SynthConfig::new(64, 1));
        let config = TrainConfig::new(1, 0).with_batch_size(32);
        let mut clf = ModelSpec::small_mlp().build(0);
        let r10 = BimAdvTrainer::new(0.3, 10).train(&mut clf, &data, &config);
        // per batch: 10 attack pass pairs + 1 training pass pair, 2 batches
        assert_eq!(r10.forward_passes[0], 22);
        assert_eq!(r10.backward_passes[0], 22);
        let mut clf2 = ModelSpec::small_mlp().build(0);
        let r3 = BimAdvTrainer::new(0.3, 3).train(&mut clf2, &data, &config);
        assert_eq!(r3.forward_passes[0], 8);
    }

    #[test]
    fn id_reports_iterations() {
        assert_eq!(BimAdvTrainer::new(0.1, 30).id(), "bim(30)-adv");
    }
}
