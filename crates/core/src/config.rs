//! Training hyper-parameters shared by every method.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of a training run.
///
/// The paper trains every method with "the same structure and
/// hyper-parameter setting"; keeping them in one struct enforces that the
/// comparisons in Table I differ *only* in the adversarial-example
/// strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Seed for batch shuffling (and any trainer-internal randomness).
    pub seed: u64,
    /// Per-epoch multiplicative learning-rate decay (1.0 = constant).
    pub lr_decay: f32,
}

impl TrainConfig {
    /// A config with the defaults used throughout the reproduction:
    /// batch size 64, learning rate 0.1, momentum 0.9.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0`.
    pub fn new(epochs: usize, seed: u64) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        TrainConfig {
            epochs,
            batch_size: 64,
            learning_rate: 0.1,
            momentum: 0.9,
            seed,
            lr_decay: 1.0,
        }
    }

    /// Overrides the batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Overrides the learning rate.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
        self
    }

    /// Overrides the per-epoch learning-rate decay.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay <= 1`.
    pub fn with_lr_decay(mut self, decay: f32) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "lr decay {decay} not in (0, 1]");
        self.lr_decay = decay;
        self
    }

    /// Overrides the momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum {momentum} not in [0, 1)");
        self.momentum = momentum;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = TrainConfig::new(5, 1);
        assert_eq!(c.epochs, 5);
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.learning_rate, 0.1);
        assert_eq!(c.momentum, 0.9);
    }

    #[test]
    fn builders_override() {
        let c =
            TrainConfig::new(1, 0).with_batch_size(32).with_learning_rate(0.01).with_momentum(0.0);
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.learning_rate, 0.01);
        assert_eq!(c.momentum, 0.0);
        let d = TrainConfig::new(1, 0).with_lr_decay(0.95);
        assert_eq!(d.lr_decay, 0.95);
    }

    #[test]
    #[should_panic(expected = "lr decay")]
    fn decay_above_one_rejected() {
        TrainConfig::new(1, 0).with_lr_decay(1.5);
    }

    #[test]
    fn serde_roundtrip() {
        let c = TrainConfig::new(3, 9);
        let json = serde_json::to_string(&c).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epochs_rejected() {
        TrainConfig::new(0, 0);
    }
}
