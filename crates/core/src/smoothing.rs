//! Randomized smoothing (Cohen et al., 2019) as an *evaluation* tool —
//! an extension beyond the paper.
//!
//! A smoothed classifier predicts the majority vote of the base model
//! under Gaussian input noise. Its agreement rate gives a complementary,
//! attack-independent view of local stability: adversarially trained
//! models keep high vote margins under noise, while undefended models'
//! margins collapse — without running a single gradient attack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_nn::{Classifier, GradientModel};
use simpadv_tensor::Tensor;

/// Majority-vote smoothing wrapper around a [`Classifier`].
#[derive(Debug)]
pub struct SmoothedClassifier<'a> {
    base: &'a mut Classifier,
    sigma: f32,
    samples: usize,
    rng: StdRng,
}

/// The smoothed prediction for one example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothedPrediction {
    /// Majority-vote class.
    pub class: usize,
    /// Fraction of noisy votes won by the majority class.
    pub vote_share: f32,
    /// Margin between the top and runner-up vote shares, in `[0, 1]`.
    pub margin: f32,
}

impl<'a> SmoothedClassifier<'a> {
    /// Wraps `base` with noise level `sigma` and `samples` Monte-Carlo
    /// votes per prediction, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma >= 0` and `samples > 0`.
    pub fn new(base: &'a mut Classifier, sigma: f32, samples: usize, seed: u64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
        assert!(samples > 0, "need at least one vote");
        SmoothedClassifier { base, sigma, samples, rng: StdRng::seed_from_u64(seed) }
    }

    /// Smoothed prediction for a single flattened example.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 1.
    pub fn predict_one(&mut self, x: &Tensor) -> SmoothedPrediction {
        assert_eq!(x.rank(), 1, "predict_one expects a single flattened example");
        let classes = self.base.num_classes();
        let mut votes = vec![0usize; classes];
        // vote in one batched forward pass
        let d = x.len();
        let mut batch = Vec::with_capacity(self.samples * d);
        for _ in 0..self.samples {
            let noise = Tensor::rand_normal(&mut self.rng, &[d], 0.0, self.sigma);
            let noisy = x.add(&noise).clamp(0.0, 1.0);
            batch.extend_from_slice(noisy.as_slice());
        }
        let batch = Tensor::from_vec(batch, &[self.samples, d]);
        for p in self.base.predict(&batch) {
            votes[p] += 1;
        }
        let mut order: Vec<usize> = (0..classes).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(votes[c]));
        let top = order[0];
        let share = votes[top] as f32 / self.samples as f32;
        let runner_share = votes[order[1]] as f32 / self.samples as f32;
        SmoothedPrediction { class: top, vote_share: share, margin: share - runner_share }
    }

    /// Mean vote margin over a labelled set, restricted to examples the
    /// smoothed classifier gets right (the standard stability summary).
    /// Returns `(smoothed accuracy, mean margin of correct predictions)`.
    ///
    /// # Panics
    ///
    /// Panics when the number of labels does not match the number of
    /// images.
    pub fn stability(&mut self, images: &Tensor, labels: &[usize]) -> (f32, f32) {
        assert_eq!(images.shape()[0], labels.len(), "label count mismatch");
        let mut correct = 0usize;
        let mut margin_sum = 0.0;
        for (i, &label) in labels.iter().enumerate() {
            let p = self.predict_one(&images.row(i));
            if p.class == label {
                correct += 1;
                margin_sum += p.margin;
            }
        }
        if correct == 0 {
            (0.0, 0.0)
        } else {
            (correct as f32 / labels.len() as f32, margin_sum / correct as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::model::ModelSpec;
    use crate::train::{ProposedTrainer, Trainer, VanillaTrainer};
    use simpadv_data::{SynthConfig, SynthDataset};

    #[test]
    fn zero_sigma_matches_base_prediction() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(150, 1));
        let mut clf = ModelSpec::small_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(4, 0));
        let x = train.images().row(0);
        let base_pred = clf.predict(&train.images().rows(0..1))[0];
        let mut smoothed = SmoothedClassifier::new(&mut clf, 0.0, 8, 7);
        let p = smoothed.predict_one(&x);
        assert_eq!(p.class, base_pred);
        assert_eq!(p.vote_share, 1.0);
        assert_eq!(p.margin, 1.0);
    }

    #[test]
    fn votes_are_deterministic_under_seed() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(150, 1));
        let mut clf = ModelSpec::small_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(4, 0));
        let x = train.images().row(3);
        let p1 = SmoothedClassifier::new(&mut clf, 0.25, 20, 9).predict_one(&x);
        let p2 = SmoothedClassifier::new(&mut clf, 0.25, 20, 9).predict_one(&x);
        assert_eq!(p1, p2);
    }

    #[test]
    fn stability_degrades_with_noise_level() {
        // the wrapper's core property: more input noise can only reduce
        // vote margins (isotropic Gaussian noise is not adversarial, so
        // even undefended models are fairly stable at small sigma)
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(300, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(30, 2));
        let config = TrainConfig::new(20, 0).with_lr_decay(0.95);
        let mut clf = ModelSpec::default_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &config);

        let (acc_low, margin_low) =
            SmoothedClassifier::new(&mut clf, 0.1, 24, 5).stability(test.images(), test.labels());
        let (acc_high, margin_high) =
            SmoothedClassifier::new(&mut clf, 1.2, 24, 5).stability(test.images(), test.labels());
        assert!(acc_low > 0.8, "smoothed accuracy at low noise: {acc_low}");
        assert!(
            acc_high < acc_low + 1e-6,
            "accuracy should not rise with noise: {acc_low} -> {acc_high}"
        );
        assert!(
            margin_high < margin_low,
            "margins should shrink with noise: {margin_low} -> {margin_high}"
        );
    }

    #[test]
    fn robust_model_is_not_less_stable() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(300, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(30, 2));
        let config = TrainConfig::new(20, 0).with_lr_decay(0.95);
        let mut vanilla = ModelSpec::default_mlp().build(0);
        VanillaTrainer::new().train(&mut vanilla, &train, &config);
        let mut robust = ModelSpec::default_mlp().build(0);
        ProposedTrainer::paper_defaults(0.3).train(&mut robust, &train, &config);

        let sigma = 0.5;
        let (acc_v, _) = SmoothedClassifier::new(&mut vanilla, sigma, 24, 5)
            .stability(test.images(), test.labels());
        let (acc_r, _) = SmoothedClassifier::new(&mut robust, sigma, 24, 5)
            .stability(test.images(), test.labels());
        assert!(acc_r >= acc_v - 0.1, "robust smoothed accuracy {acc_r} far below vanilla {acc_v}");
    }

    #[test]
    #[should_panic(expected = "vote")]
    fn zero_samples_rejected() {
        let mut clf = ModelSpec::small_mlp().build(0);
        SmoothedClassifier::new(&mut clf, 0.1, 0, 0);
    }
}
