//! Gradient-masking diagnostics.
//!
//! The paper's motivation for adversarial training is that — unlike
//! shield-style defenses — it "does not rely on the false sense of
//! security brought by obfuscated gradient" (Athalye et al., 2018). This
//! module turns Athalye's behavioural checklist into executable checks,
//! so any trainer added to this crate can be audited for masking:
//!
//! 1. **iterative ≥ single-step**: a BIM attack must be at least as strong
//!    as FGSM; if FGSM beats BIM, gradients are being obfuscated.
//! 2. **white-box ≥ black-box noise**: a gradient attack must beat random
//!    noise of the same budget.
//! 3. **monotone in ε**: more budget can only help the attacker.
//! 4. **unbounded ε wins**: at ε close to 1 any model must fail — 100%
//!    "robustness" there means the attack (not the model) is broken.

use crate::eval::evaluate_accuracy;
use serde::{Deserialize, Serialize};
use simpadv_attacks::{Attack, Bim, Fgsm, RandomNoise};
use simpadv_data::Dataset;
use simpadv_nn::Classifier;
use std::fmt;

/// Tolerance (absolute accuracy) for the ordering checks: small-sample
/// evaluation noise should not flag a healthy model.
const TOL: f32 = 0.03;

/// One diagnostic check's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticCheck {
    /// Check name.
    pub name: String,
    /// Human-readable measured evidence.
    pub evidence: String,
    /// Whether the behaviour is consistent with honest gradients.
    pub passed: bool,
}

/// The full masking audit of one classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskingReport {
    /// Outcomes in checklist order.
    pub checks: Vec<DiagnosticCheck>,
}

impl MaskingReport {
    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

impl fmt::Display for MaskingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gradient-masking audit:")?;
        for c in &self.checks {
            writeln!(f, "  [{}] {} — {}", if c.passed { "ok" } else { "!!" }, c.name, c.evidence)?;
        }
        Ok(())
    }
}

/// Runs the four-check audit against a trained classifier.
///
/// `epsilon` is the budget the model claims robustness at; `seed` feeds
/// the stochastic baselines.
///
/// The audit runs under an `audit` trace span and emits one `check`
/// counter event per outcome (fields: `name`, `passed`, `evidence`), so
/// audit results land in the same trace file as the training run they
/// vet.
pub fn audit_masking(
    clf: &mut Classifier,
    data: &Dataset,
    epsilon: f32,
    seed: u64,
) -> MaskingReport {
    let _span = simpadv_trace::span!("audit", epsilon = epsilon, seed = seed);
    let mut checks = Vec::new();

    let acc = |clf: &mut Classifier, attack: &mut dyn Attack| evaluate_accuracy(clf, data, attack);

    // 1. iterative >= single-step
    let mut fgsm = Fgsm::new(epsilon);
    let mut bim = Bim::new(epsilon, 10);
    let a_fgsm = acc(clf, &mut fgsm);
    let a_bim = acc(clf, &mut bim);
    checks.push(DiagnosticCheck {
        name: "iterative at least as strong as single-step".into(),
        evidence: format!("acc FGSM {:.3} vs BIM(10) {:.3}", a_fgsm, a_bim),
        passed: a_bim <= a_fgsm + TOL,
    });

    // 2. white-box >= black-box noise
    let mut noise = RandomNoise::new(epsilon, seed);
    let a_noise = acc(clf, &mut noise);
    checks.push(DiagnosticCheck {
        name: "gradient attack at least as strong as random noise".into(),
        evidence: format!("acc noise {:.3} vs FGSM {:.3}", a_noise, a_fgsm),
        passed: a_fgsm <= a_noise + TOL,
    });

    // 3. monotone in epsilon
    let grid = [0.25 * epsilon, 0.5 * epsilon, epsilon];
    let mut series = Vec::new();
    for &e in &grid {
        let mut atk = Bim::new(e, 10);
        series.push(acc(clf, &mut atk));
    }
    let monotone = series.windows(2).all(|w| w[1] <= w[0] + TOL);
    checks.push(DiagnosticCheck {
        name: "attack strength monotone in epsilon".into(),
        evidence: format!("acc at eps x {{0.25, 0.5, 1}}: {series:.3?}"),
        passed: monotone,
    });

    // 4. unbounded budget wins
    let mut huge = Bim::new(0.95, 20);
    let a_huge = acc(clf, &mut huge);
    checks.push(DiagnosticCheck {
        name: "near-unbounded attack reaches near-zero accuracy".into(),
        evidence: format!("acc at eps 0.95: {:.3}", a_huge),
        passed: a_huge < 0.2,
    });

    // Audit event stream: one `check` counter per outcome, in checklist
    // order, so audit results land in the same trace as training runs.
    for c in &checks {
        simpadv_trace::counter_with(
            "check",
            1,
            &[
                ("name", simpadv_trace::FieldValue::from(c.name.as_str())),
                ("passed", simpadv_trace::FieldValue::from(c.passed)),
                ("evidence", simpadv_trace::FieldValue::from(c.evidence.as_str())),
            ],
        );
    }

    MaskingReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::model::ModelSpec;
    use crate::train::{ProposedTrainer, Trainer, VanillaTrainer};
    use simpadv_data::{SynthConfig, SynthDataset};

    #[test]
    fn vanilla_model_passes_the_audit() {
        // vanilla models are weak, not masked: all checks should pass
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(200, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(100, 2));
        let mut clf = ModelSpec::small_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(6, 0));
        let report = audit_masking(&mut clf, &test, 0.3, 7);
        assert_eq!(report.checks.len(), 4);
        assert!(report.all_passed(), "{report}");
    }

    #[test]
    fn proposed_defense_is_not_masked() {
        // the paper's central claim rests on adversarial training giving
        // real (not obfuscated-gradient) robustness — audit it
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(300, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(150, 2));
        let mut clf = ModelSpec::default_mlp().build(0);
        ProposedTrainer::paper_defaults(0.3).train(
            &mut clf,
            &train,
            &TrainConfig::new(25, 0).with_lr_decay(0.95),
        );
        let report = audit_masking(&mut clf, &test, 0.3, 7);
        assert!(report.all_passed(), "{report}");
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = MaskingReport {
            checks: vec![DiagnosticCheck { name: "x".into(), evidence: "y".into(), passed: false }],
        };
        assert!(!report.all_passed());
        assert!(report.to_string().contains("!!"));
        let json = serde_json::to_string(&report).unwrap();
        let back: MaskingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
