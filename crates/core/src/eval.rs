//! Robustness evaluation: accuracy under attack.
//!
//! Evaluation is embarrassingly parallel across test batches, so the
//! batch loops here run on the global [`Runtime`]: the test set is cut
//! into fixed [`EVAL_BATCH`]-example batches (boundaries never depend on
//! the thread count), each batch is scored on its own model replica, and
//! the per-batch *integer* correct counts are reduced in batch order.
//! Accuracies are therefore bitwise identical for 1..N threads, and the
//! forward/backward passes spent on replicas are credited back to the
//! caller's classifier so Table I cost accounting stays thread-count
//! independent.
//!
//! Every evaluation entry point runs under an `eval` trace span naming
//! the attack, and emits the resulting accuracy as an `accuracy` gauge.

use serde::{Deserialize, Serialize};
use simpadv_attacks::{Attack, Bim, Fgsm};
use simpadv_data::Dataset;
use simpadv_nn::{accuracy, Classifier, GradientModel};
use simpadv_runtime::Runtime;
use std::fmt;

/// Batch size used when generating evaluation attacks (keeps peak memory
/// flat regardless of test-set size, and fixes the parallel chunk
/// boundaries independent of the thread count).
pub(crate) const EVAL_BATCH: usize = 100;

/// Clean test accuracy of a classifier.
///
/// Batches are scored in parallel on model replicas; the replicas'
/// forward passes are credited back to `clf` (one per batch, exactly
/// what the serial loop would have counted).
pub fn evaluate_clean(clf: &mut Classifier, data: &Dataset) -> f32 {
    let _span = simpadv_trace::span!("eval", attack = "original", examples = data.len());
    let shared: &Classifier = clf;
    let counts = Runtime::global().par_chunks(data.len(), EVAL_BATCH, |r| {
        let mut replica = shared.clone();
        let logits = replica.logits(&data.images().rows(r.clone()));
        let y = &data.labels()[r];
        (accuracy(&logits, y) * y.len() as f32).round() as usize
    });
    let batches = counts.len() as u64;
    clf.credit_external_passes(batches, 0);
    let acc = counts.into_iter().sum::<usize>() as f32 / data.len().max(1) as f32;
    simpadv_trace::gauge("accuracy", f64::from(acc));
    acc
}

/// White-box accuracy of a classifier under an attack: adversarial
/// examples are generated against `clf` itself, batch by batch.
///
/// This form takes a caller-owned, possibly **stateful** attack and
/// therefore runs serially; prefer [`evaluate_accuracy_parallel`] when
/// the attack can be constructed per batch.
pub fn evaluate_accuracy(clf: &mut Classifier, data: &Dataset, attack: &mut dyn Attack) -> f32 {
    let _span = simpadv_trace::span!("eval", attack = attack.id(), examples = data.len());
    let mut correct = 0usize;
    for (_, x, y) in data.batches_sequential(EVAL_BATCH) {
        let adv = attack.perturb(clf, &x, &y);
        let logits = clf.logits(&adv);
        correct += (accuracy(&logits, &y) * y.len() as f32).round() as usize;
    }
    let acc = correct as f32 / data.len().max(1) as f32;
    simpadv_trace::gauge("accuracy", f64::from(acc));
    acc
}

/// White-box accuracy under a per-batch constructed attack, with the
/// batches evaluated in parallel on the global [`Runtime`].
///
/// `make_attack(first)` builds the attack for the batch whose first
/// example has index `first`; deterministic attacks (FGSM, BIM) ignore
/// the index, stochastic ones should derive their seed from it with
/// [`simpadv_runtime::split_seed`] so the random stream is keyed to data
/// position, not thread. Each batch perturbs a fresh replica of `clf`;
/// the replicas' passes are credited back to `clf` afterwards, so the
/// counters match the serial [`evaluate_accuracy`] loop exactly.
pub fn evaluate_accuracy_parallel(
    clf: &mut Classifier,
    data: &Dataset,
    make_attack: &(dyn Fn(usize) -> Box<dyn Attack> + Sync),
) -> f32 {
    let _span = simpadv_trace::span!("eval", attack = make_attack(0).id(), examples = data.len());
    let shared: &Classifier = clf;
    let per_batch = Runtime::global().par_chunks(data.len(), EVAL_BATCH, |r| {
        let mut replica = shared.clone();
        let (f0, b0) = (replica.forward_passes(), replica.backward_passes());
        let mut attack = make_attack(r.start);
        let x = data.images().rows(r.clone());
        let y = &data.labels()[r];
        let adv = attack.perturb(&mut replica, &x, y);
        let logits = replica.logits(&adv);
        let correct = (accuracy(&logits, y) * y.len() as f32).round() as usize;
        (correct, replica.forward_passes() - f0, replica.backward_passes() - b0)
    });
    let (mut correct, mut fwd, mut bwd) = (0usize, 0u64, 0u64);
    for (c, f, b) in per_batch {
        correct += c;
        fwd += f;
        bwd += b;
    }
    clf.credit_external_passes(fwd, bwd);
    let acc = correct as f32 / data.len().max(1) as f32;
    simpadv_trace::gauge("accuracy", f64::from(acc));
    acc
}

/// One row of an evaluation table: the classifier's accuracy on every
/// attack column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Column names (attack ids, `"original"` for clean accuracy).
    pub columns: Vec<String>,
    /// Accuracy per column, in `[0, 1]`.
    pub accuracies: Vec<f32>,
}

impl EvalResult {
    /// Accuracy for a named column.
    pub fn get(&self, column: &str) -> Option<f32> {
        self.columns.iter().position(|c| c == column).map(|i| self.accuracies[i])
    }
}

impl fmt::Display for EvalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, a) in self.columns.iter().zip(&self.accuracies) {
            writeln!(f, "{c:>12}: {:6.2}%", a * 100.0)?;
        }
        Ok(())
    }
}

/// A reusable battery of evaluation attacks — the column set of the
/// paper's Table I: Original, FGSM, BIM(10), BIM(30).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSuite {
    epsilon: f32,
}

impl EvalSuite {
    /// The paper's evaluation battery at budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn paper(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        EvalSuite { epsilon }
    }

    /// Runs the battery against a classifier.
    ///
    /// The three attack columns are all stateless, so each column runs
    /// through [`evaluate_accuracy_parallel`] — per-batch attack
    /// instances are exactly equivalent to the serial loop's reused
    /// instance, and the batch fan-out uses the global [`Runtime`].
    pub fn run(&self, clf: &mut Classifier, data: &Dataset) -> EvalResult {
        let eps = self.epsilon;
        let mut columns = vec!["original".to_string()];
        let mut accuracies = vec![evaluate_clean(clf, data)];
        type MakeAttack = Box<dyn Fn(usize) -> Box<dyn Attack> + Sync>;
        let specs: Vec<(String, MakeAttack)> = vec![
            (Fgsm::new(eps).id(), Box::new(move |_| Box::new(Fgsm::new(eps)))),
            (Bim::new(eps, 10).id(), Box::new(move |_| Box::new(Bim::new(eps, 10)))),
            (Bim::new(eps, 30).id(), Box::new(move |_| Box::new(Bim::new(eps, 30)))),
        ];
        for (id, make) in specs {
            columns.push(id);
            accuracies.push(evaluate_accuracy_parallel(clf, data, make.as_ref()));
        }
        EvalResult { columns, accuracies }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::model::ModelSpec;
    use crate::train::{Trainer, VanillaTrainer};
    use simpadv_data::{SynthConfig, SynthDataset};

    fn trained() -> (Classifier, Dataset) {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(200, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(100, 2));
        let mut clf = ModelSpec::small_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(8, 0));
        (clf, test)
    }

    #[test]
    fn clean_above_attacked_for_vanilla() {
        let (mut clf, test) = trained();
        let clean = evaluate_clean(&mut clf, &test);
        let mut fgsm = Fgsm::new(0.3);
        let attacked = evaluate_accuracy(&mut clf, &test, &mut fgsm);
        assert!(clean > 0.85, "clean accuracy {clean}");
        assert!(attacked < clean, "FGSM must hurt a vanilla model");
    }

    #[test]
    fn bim_hurts_vanilla_more_than_fgsm() {
        let (mut clf, test) = trained();
        let mut fgsm = Fgsm::new(0.3);
        let mut bim = Bim::new(0.3, 10);
        let a_fgsm = evaluate_accuracy(&mut clf, &test, &mut fgsm);
        let a_bim = evaluate_accuracy(&mut clf, &test, &mut bim);
        assert!(a_bim <= a_fgsm + 1e-6, "BIM(10) ({a_bim}) vs FGSM ({a_fgsm})");
    }

    #[test]
    fn suite_produces_paper_columns() {
        let (mut clf, test) = trained();
        let result = EvalSuite::paper(0.3).run(&mut clf, &test);
        assert_eq!(result.columns, vec!["original", "fgsm", "bim(10)", "bim(30)"]);
        assert_eq!(result.accuracies.len(), 4);
        assert!(result.get("original").unwrap() > result.get("bim(30)").unwrap());
        assert!(result.get("nonexistent").is_none());
        assert!(!result.to_string().is_empty());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (mut clf, test) = trained();
        let a = EvalSuite::paper(0.3).run(&mut clf, &test);
        let b = EvalSuite::paper(0.3).run(&mut clf, &test);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_accuracy_matches_serial_bitwise() {
        let (mut clf, test) = trained();
        let mut bim = Bim::new(0.3, 5);
        let serial = evaluate_accuracy(&mut clf, &test, &mut bim);
        // evaluate_accuracy_parallel reads the global runtime, so pin it;
        // other tests running concurrently only see a benign thread-count
        // change (results are identical by the determinism contract).
        for threads in [1, 4] {
            simpadv_runtime::set_global_threads(threads);
            let got = evaluate_accuracy_parallel(&mut clf, &test, &|_| Box::new(Bim::new(0.3, 5)));
            assert_eq!(got.to_bits(), serial.to_bits(), "threads={threads}");
        }
        simpadv_runtime::set_global_threads(1);
    }

    #[test]
    fn parallel_eval_credits_the_serial_pass_count() {
        let (mut clf, test) = trained();
        simpadv_runtime::set_global_threads(4);
        clf.reset_pass_counters();
        let _ = EvalSuite::paper(0.3).run(&mut clf, &test);
        let (par_f, par_b) = (clf.forward_passes(), clf.backward_passes());

        simpadv_runtime::set_global_threads(1);
        clf.reset_pass_counters();
        let _ = evaluate_clean(&mut clf, &test);
        let mut attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(Fgsm::new(0.3)),
            Box::new(Bim::new(0.3, 10)),
            Box::new(Bim::new(0.3, 30)),
        ];
        for attack in attacks.iter_mut() {
            let _ = evaluate_accuracy(&mut clf, &test, attack.as_mut());
        }
        assert_eq!((par_f, par_b), (clf.forward_passes(), clf.backward_passes()));
    }
}
