//! Robustness evaluation: accuracy under attack.

use serde::{Deserialize, Serialize};
use simpadv_attacks::{Attack, Bim, Fgsm};
use simpadv_data::Dataset;
use simpadv_nn::{accuracy, Classifier, GradientModel};
use std::fmt;

/// Batch size used when generating evaluation attacks (keeps peak memory
/// flat regardless of test-set size).
pub(crate) const EVAL_BATCH: usize = 100;

/// Clean test accuracy of a classifier.
pub fn evaluate_clean(clf: &mut Classifier, data: &Dataset) -> f32 {
    let mut correct = 0usize;
    for (_, x, y) in data.batches_sequential(EVAL_BATCH) {
        let logits = clf.logits(&x);
        correct += (accuracy(&logits, &y) * y.len() as f32).round() as usize;
    }
    correct as f32 / data.len().max(1) as f32
}

/// White-box accuracy of a classifier under an attack: adversarial
/// examples are generated against `clf` itself, batch by batch.
pub fn evaluate_accuracy(clf: &mut Classifier, data: &Dataset, attack: &mut dyn Attack) -> f32 {
    let mut correct = 0usize;
    for (_, x, y) in data.batches_sequential(EVAL_BATCH) {
        let adv = attack.perturb(clf, &x, &y);
        let logits = clf.logits(&adv);
        correct += (accuracy(&logits, &y) * y.len() as f32).round() as usize;
    }
    correct as f32 / data.len().max(1) as f32
}

/// One row of an evaluation table: the classifier's accuracy on every
/// attack column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Column names (attack ids, `"original"` for clean accuracy).
    pub columns: Vec<String>,
    /// Accuracy per column, in `[0, 1]`.
    pub accuracies: Vec<f32>,
}

impl EvalResult {
    /// Accuracy for a named column.
    pub fn get(&self, column: &str) -> Option<f32> {
        self.columns.iter().position(|c| c == column).map(|i| self.accuracies[i])
    }
}

impl fmt::Display for EvalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, a) in self.columns.iter().zip(&self.accuracies) {
            writeln!(f, "{c:>12}: {:6.2}%", a * 100.0)?;
        }
        Ok(())
    }
}

/// A reusable battery of evaluation attacks — the column set of the
/// paper's Table I: Original, FGSM, BIM(10), BIM(30).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSuite {
    epsilon: f32,
}

impl EvalSuite {
    /// The paper's evaluation battery at budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn paper(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "invalid epsilon {epsilon}");
        EvalSuite { epsilon }
    }

    /// Runs the battery against a classifier.
    pub fn run(&self, clf: &mut Classifier, data: &Dataset) -> EvalResult {
        let mut columns = vec!["original".to_string()];
        let mut accuracies = vec![evaluate_clean(clf, data)];
        let mut attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(Fgsm::new(self.epsilon)),
            Box::new(Bim::new(self.epsilon, 10)),
            Box::new(Bim::new(self.epsilon, 30)),
        ];
        for attack in attacks.iter_mut() {
            columns.push(attack.id());
            accuracies.push(evaluate_accuracy(clf, data, attack.as_mut()));
        }
        EvalResult { columns, accuracies }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::model::ModelSpec;
    use crate::train::{Trainer, VanillaTrainer};
    use simpadv_data::{SynthConfig, SynthDataset};

    fn trained() -> (Classifier, Dataset) {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(200, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(100, 2));
        let mut clf = ModelSpec::small_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(8, 0));
        (clf, test)
    }

    #[test]
    fn clean_above_attacked_for_vanilla() {
        let (mut clf, test) = trained();
        let clean = evaluate_clean(&mut clf, &test);
        let mut fgsm = Fgsm::new(0.3);
        let attacked = evaluate_accuracy(&mut clf, &test, &mut fgsm);
        assert!(clean > 0.85, "clean accuracy {clean}");
        assert!(attacked < clean, "FGSM must hurt a vanilla model");
    }

    #[test]
    fn bim_hurts_vanilla_more_than_fgsm() {
        let (mut clf, test) = trained();
        let mut fgsm = Fgsm::new(0.3);
        let mut bim = Bim::new(0.3, 10);
        let a_fgsm = evaluate_accuracy(&mut clf, &test, &mut fgsm);
        let a_bim = evaluate_accuracy(&mut clf, &test, &mut bim);
        assert!(a_bim <= a_fgsm + 1e-6, "BIM(10) ({a_bim}) vs FGSM ({a_fgsm})");
    }

    #[test]
    fn suite_produces_paper_columns() {
        let (mut clf, test) = trained();
        let result = EvalSuite::paper(0.3).run(&mut clf, &test);
        assert_eq!(result.columns, vec!["original", "fgsm", "bim(10)", "bim(30)"]);
        assert_eq!(result.accuracies.len(), 4);
        assert!(result.get("original").unwrap() > result.get("bim(30)").unwrap());
        assert!(result.get("nonexistent").is_none());
        assert!(!result.to_string().is_empty());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (mut clf, test) = trained();
        let a = EvalSuite::paper(0.3).run(&mut clf, &test);
        let b = EvalSuite::paper(0.3).run(&mut clf, &test);
        assert_eq!(a, b);
    }
}
