//! Per-class robustness analysis — which classes a defense actually
//! protects (the aggregate accuracies of Table I hide this).

use crate::eval::EVAL_BATCH;
use serde::{Deserialize, Serialize};
use simpadv_attacks::Attack;
use simpadv_data::Dataset;
use simpadv_nn::{Classifier, ConfusionMatrix, GradientModel};
use std::fmt;

/// A per-class breakdown of accuracy under one attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    /// The attack id (`"clean"` for unattacked inputs).
    pub attack: String,
    /// Per-class recall (accuracy restricted to that true class);
    /// `None` when the class had no test examples.
    pub recall: Vec<Option<f32>>,
    /// Overall accuracy.
    pub overall: f32,
}

impl ClassBreakdown {
    /// The class with the worst (lowest) recall, ignoring unseen classes.
    pub fn weakest_class(&self) -> Option<usize> {
        self.recall
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|v| (i, v)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
    }
}

impl fmt::Display for ClassBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}: overall {:5.1}% |", self.attack, self.overall * 100.0)?;
        for r in &self.recall {
            match r {
                Some(v) => write!(f, "{:>6.0}%", v * 100.0)?,
                None => write!(f, "{:>7}", "-")?,
            }
        }
        Ok(())
    }
}

/// Evaluates per-class robustness under an attack by accumulating a
/// confusion matrix over adversarial inputs.
pub fn class_breakdown(
    clf: &mut Classifier,
    data: &Dataset,
    attack: Option<&mut dyn Attack>,
) -> ClassBreakdown {
    let classes = data.num_classes();
    let mut matrix = ConfusionMatrix::new(classes);
    let mut attack = attack;
    let _span = simpadv_trace::span!(
        "eval_detail",
        attack = attack.as_deref().map_or_else(|| "clean".to_string(), |a| a.id()),
        examples = data.len()
    );
    for (_, x, y) in data.batches_sequential(EVAL_BATCH) {
        let inputs = match attack.as_deref_mut() {
            Some(a) => a.perturb(clf, &x, &y),
            None => x,
        };
        let preds = clf.logits(&inputs).argmax_rows();
        for (&truth, pred) in y.iter().zip(preds) {
            matrix.record(truth, pred);
        }
    }
    let recall = (0..classes).map(|c| matrix.recall(c)).collect();
    let overall = matrix.accuracy();
    simpadv_trace::gauge("accuracy", f64::from(overall));
    ClassBreakdown {
        attack: attack.map_or_else(|| "clean".to_string(), |a| a.id()),
        recall,
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::model::ModelSpec;
    use crate::train::{Trainer, VanillaTrainer};
    use simpadv_attacks::Fgsm;
    use simpadv_data::{SynthConfig, SynthDataset};

    #[test]
    fn clean_breakdown_matches_suite() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(200, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(100, 2));
        let mut clf = ModelSpec::small_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(6, 0));
        let b = class_breakdown(&mut clf, &test, None);
        assert_eq!(b.attack, "clean");
        assert_eq!(b.recall.len(), 10);
        let expected = crate::eval::evaluate_clean(&mut clf, &test);
        assert!((b.overall - expected).abs() < 1e-6);
        assert!(!b.to_string().is_empty());
    }

    #[test]
    fn attacked_breakdown_is_weaker() {
        let train = SynthDataset::Mnist.generate(&SynthConfig::new(200, 1));
        let test = SynthDataset::Mnist.generate(&SynthConfig::new(100, 2));
        let mut clf = ModelSpec::small_mlp().build(0);
        VanillaTrainer::new().train(&mut clf, &train, &TrainConfig::new(6, 0));
        let clean = class_breakdown(&mut clf, &test, None);
        let mut fgsm = Fgsm::new(0.3);
        let attacked = class_breakdown(&mut clf, &test, Some(&mut fgsm));
        assert_eq!(attacked.attack, "fgsm");
        assert!(attacked.overall < clean.overall);
        assert!(attacked.weakest_class().is_some());
    }

    #[test]
    fn weakest_class_on_synthetic_matrix() {
        let b = ClassBreakdown {
            attack: "x".into(),
            recall: vec![Some(0.9), None, Some(0.2), Some(0.5)],
            overall: 0.5,
        };
        assert_eq!(b.weakest_class(), Some(2));
    }
}
