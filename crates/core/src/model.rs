//! Classifier architectures used by the experiments.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simpadv_data::{CLASS_COUNT, IMAGE_PIXELS};
use simpadv_nn::{Classifier, Dense, Relu, Sequential};

/// A declarative model architecture, buildable from a seed.
///
/// Experiments construct every classifier through this type so that all
/// five training methods compare *identical* architectures, as the paper
/// requires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// A multilayer perceptron over flattened pixels with the given hidden
    /// widths (ReLU between layers).
    Mlp {
        /// Hidden-layer widths, e.g. `[256, 128]`.
        hidden: Vec<usize>,
    },
    /// A small convolutional network: two 3×3 conv + ReLU + 2×2 max-pool
    /// stages with the given channel counts, then a dense classifier head.
    ///
    /// Substantially slower than the MLP on one CPU core; used by tests
    /// and examples rather than the default experiment sweeps.
    Cnn {
        /// Channels of the first conv stage.
        c1: usize,
        /// Channels of the second conv stage.
        c2: usize,
    },
}

impl ModelSpec {
    /// The default experiment backbone: a 784–128–10 MLP, sized so a full
    /// Table I run (including BIM(30)-Adv's 31 gradient-pass pairs per
    /// batch) fits a single CPU core.
    pub fn default_mlp() -> Self {
        ModelSpec::Mlp { hidden: vec![128] }
    }

    /// A wider two-hidden-layer MLP for higher-fidelity (slower) runs.
    pub fn wide_mlp() -> Self {
        ModelSpec::Mlp { hidden: vec![256, 128] }
    }

    /// A smaller MLP for quick tests.
    pub fn small_mlp() -> Self {
        ModelSpec::Mlp { hidden: vec![64] }
    }

    /// A small two-stage CNN (8 and 16 channels).
    pub fn small_cnn() -> Self {
        ModelSpec::Cnn { c1: 8, c2: 16 }
    }

    /// Builds a fresh classifier with weights drawn from `seed`.
    pub fn build(&self, seed: u64) -> Classifier {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            ModelSpec::Mlp { hidden } => {
                let mut net = Sequential::empty();
                let mut width = IMAGE_PIXELS;
                for &h in hidden {
                    net.push(Box::new(Dense::new(width, h, &mut rng)));
                    net.push(Box::new(Relu::new()));
                    width = h;
                }
                net.push(Box::new(Dense::new(width, CLASS_COUNT, &mut rng)));
                Classifier::new(net, CLASS_COUNT)
            }
            ModelSpec::Cnn { c1, c2 } => {
                use simpadv_nn::{Conv2d, Flatten, MaxPool2d, Reshape};
                let side = simpadv_data::IMAGE_SIDE;
                let mut net = Sequential::empty();
                net.push(Box::new(Reshape::new(&[1, side, side])));
                net.push(Box::new(Conv2d::new(1, *c1, 3, 1, 1, side, side, &mut rng)));
                net.push(Box::new(Relu::new()));
                net.push(Box::new(MaxPool2d::new(2, 2)));
                net.push(Box::new(Conv2d::new(*c1, *c2, 3, 1, 1, side / 2, side / 2, &mut rng)));
                net.push(Box::new(Relu::new()));
                net.push(Box::new(MaxPool2d::new(2, 2)));
                net.push(Box::new(Flatten::new()));
                let head_in = (side / 4) * (side / 4) * c2;
                net.push(Box::new(Dense::new(head_in, CLASS_COUNT, &mut rng)));
                Classifier::new(net, CLASS_COUNT)
            }
        }
    }

    /// A short identifier for reports.
    pub fn id(&self) -> String {
        match self {
            ModelSpec::Mlp { hidden } => {
                let widths: Vec<String> = hidden.iter().map(|h| h.to_string()).collect();
                format!("mlp[{}]", widths.join(","))
            }
            ModelSpec::Cnn { c1, c2 } => format!("cnn[{c1},{c2}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpadv_nn::GradientModel;
    use simpadv_tensor::Tensor;

    #[test]
    fn build_is_deterministic_per_seed() {
        let mut a = ModelSpec::default_mlp().build(3);
        let mut b = ModelSpec::default_mlp().build(3);
        let x = Tensor::full(&[2, IMAGE_PIXELS], 0.5);
        assert_eq!(a.logits(&x), b.logits(&x));
        let mut c = ModelSpec::default_mlp().build(4);
        assert_ne!(a.logits(&x), c.logits(&x));
    }

    #[test]
    fn output_width_matches_classes() {
        let mut m = ModelSpec::small_mlp().build(0);
        let x = Tensor::zeros(&[3, IMAGE_PIXELS]);
        assert_eq!(m.logits(&x).shape(), &[3, CLASS_COUNT]);
        assert_eq!(m.num_classes(), CLASS_COUNT);
    }

    #[test]
    fn id_encodes_architecture() {
        assert_eq!(ModelSpec::default_mlp().id(), "mlp[128]");
        assert_eq!(ModelSpec::wide_mlp().id(), "mlp[256,128]");
        assert_eq!(ModelSpec::small_mlp().id(), "mlp[64]");
    }

    #[test]
    fn serde_roundtrip() {
        for s in [ModelSpec::default_mlp(), ModelSpec::small_cnn()] {
            let json = serde_json::to_string(&s).unwrap();
            let back: ModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }

    #[test]
    fn cnn_builds_and_classifies_shapes() {
        let mut m = ModelSpec::small_cnn().build(1);
        let x = Tensor::full(&[2, IMAGE_PIXELS], 0.5);
        let logits = m.logits(&x);
        assert_eq!(logits.shape(), &[2, CLASS_COUNT]);
        assert_eq!(ModelSpec::small_cnn().id(), "cnn[8,16]");
    }

    #[test]
    fn cnn_trains_on_a_tiny_batch() {
        use simpadv_nn::Sgd;
        let mut m = ModelSpec::Cnn { c1: 4, c2: 4 }.build(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Tensor::rand_uniform(&mut rng, &[8, IMAGE_PIXELS], 0.0, 1.0);
        let y: Vec<usize> = (0..8).map(|i| i % CLASS_COUNT).collect();
        let mut opt = Sgd::new(0.05);
        let l0 = m.train_batch(&x, &y, &mut opt);
        let mut l_last = l0;
        for _ in 0..10 {
            l_last = m.train_batch(&x, &y, &mut opt);
        }
        assert!(l_last < l0, "CNN loss should fall on a fixed batch: {l0} -> {l_last}");
    }
}
