//! Figure 2: test accuracy against each **intermediate iterate** of a
//! BIM(N = 10) attack (per-step size fixed at ε/10, perturbation growing
//! with the iterate index).
//!
//! The paper's reading (Section III): accuracy decreases monotonically,
//! undefended classifiers fall below random guessing before the attack
//! finishes, and most of the degradation happens within the first ~6
//! iterations — intermediate results already reveal most blind spots.

use super::common::{pct, train_probe_classifiers, ExperimentScale};
use serde::{Deserialize, Serialize};
use simpadv_attacks::Bim;
use simpadv_data::SynthDataset;
use simpadv_nn::accuracy;
use std::fmt;

/// Fixed iteration count of the generated attack (as in the paper).
pub const ATTACK_ITERATIONS: usize = 10;

/// Result of the Figure 2 experiment for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Dataset id.
    pub dataset: String,
    /// Total perturbation ε.
    pub epsilon: f32,
    /// `(classifier name, accuracy after iterate i+1)`.
    pub series: Vec<(String, Vec<f32>)>,
}

impl Fig2Result {
    /// The accuracy series for a named classifier.
    pub fn series_for(&self, name: &str) -> Option<&[f32]> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s.as_slice())
    }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 ({}): test accuracy after each BIM iterate (N = {}, eps = {})",
            self.dataset, ATTACK_ITERATIONS, self.epsilon
        )?;
        write!(f, "{:>14}", "iterate")?;
        for i in 1..=ATTACK_ITERATIONS {
            write!(f, "{i:>9}")?;
        }
        writeln!(f)?;
        for (name, accs) in &self.series {
            write!(f, "{name:>14}")?;
            for a in accs {
                write!(f, "{:>9}", pct(*a))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs Figure 2 for one dataset at the given scale.
pub fn run(dataset: SynthDataset, scale: &ExperimentScale) -> Fig2Result {
    let (train, test) = scale.load(dataset);
    let eps = dataset.paper_epsilon();
    let mut probes = train_probe_classifiers(dataset, scale, &train);
    let mut series = Vec::new();
    for (name, clf, _) in probes.entries.iter_mut() {
        let bim = Bim::new(eps, ATTACK_ITERATIONS);
        // accumulate per-iterate accuracy over evaluation batches
        let mut correct = [0usize; ATTACK_ITERATIONS];
        let mut total = 0usize;
        for (_, x, y) in test.batches_sequential(100) {
            let iterates = bim.iterates(clf, &x, &y);
            for (i, xi) in iterates.iter().enumerate() {
                use simpadv_nn::GradientModel;
                let logits = clf.logits(xi);
                correct[i] += (accuracy(&logits, &y) * y.len() as f32).round() as usize;
            }
            total += y.len();
        }
        let accs: Vec<f32> = correct.iter().map(|&c| c as f32 / total.max(1) as f32).collect();
        series.push((name.clone(), accs));
    }
    Fig2Result { dataset: dataset.id().to_string(), epsilon: eps, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_expected_shape() {
        let scale = ExperimentScale { train_samples: 150, test_samples: 60, epochs: 4, seed: 3 };
        let r = run(SynthDataset::Mnist, &scale);
        assert_eq!(r.series.len(), 4);
        for (name, accs) in &r.series {
            assert_eq!(accs.len(), ATTACK_ITERATIONS, "{name}");
            assert!(accs.iter().all(|a| (0.0..=1.0).contains(a)));
        }
        assert!(r.to_string().contains("Figure 2"));
    }
}
