//! Ablation of the proposed method's design choices (beyond the paper's
//! exhibits, motivated by its Section IV reasoning):
//!
//! * **per-epoch step size** — property 1 says tiny steps are wasted and
//!   Section IV argues for a *relatively large* step;
//! * **reset period** — Section IV introduces the periodic reset to track
//!   the drifting classifier.

use super::common::{pct, ExperimentScale};
use crate::eval::{evaluate_accuracy, evaluate_clean};
use crate::model::ModelSpec;
use crate::train::{ProposedTrainer, Trainer};
use serde::{Deserialize, Serialize};
use simpadv_attacks::Bim;
use simpadv_data::SynthDataset;
use std::fmt;

/// One ablation variant's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Human-readable variant label.
    pub variant: String,
    /// Step size used.
    pub step: f32,
    /// Reset period used (`usize::MAX` = never).
    pub reset_period: usize,
    /// Clean test accuracy.
    pub clean: f32,
    /// Test accuracy under BIM(10).
    pub robust: f32,
}

/// Full ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Dataset id.
    pub dataset: String,
    /// ε used throughout.
    pub epsilon: f32,
    /// Step-size sweep (reset fixed at 20).
    pub step_sweep: Vec<AblationRow>,
    /// Reset-period sweep (step fixed at ε/10).
    pub reset_sweep: Vec<AblationRow>,
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation ({}): proposed-method knobs (eps = {})", self.dataset, self.epsilon)?;
        writeln!(f, "{:<30}{:>10}{:>10}", "variant", "clean", "bim(10)")?;
        for row in self.step_sweep.iter().chain(&self.reset_sweep) {
            writeln!(f, "{:<30}{:>10}{:>10}", row.variant, pct(row.clean), pct(row.robust))?;
        }
        Ok(())
    }
}

/// Runs both sweeps for one dataset.
pub fn run(dataset: SynthDataset, scale: &ExperimentScale) -> AblationResult {
    let (train, test) = scale.load(dataset);
    let eps = dataset.paper_epsilon();
    let config = scale.train_config();

    let eval_variant = |label: &str, step: f32, reset: usize| -> AblationRow {
        let mut clf = ModelSpec::default_mlp().build(scale.seed + 77);
        ProposedTrainer::new(eps, step, reset).train(&mut clf, &train, &config);
        let clean = evaluate_clean(&mut clf, &test);
        let mut bim = Bim::new(eps, 10);
        let robust = evaluate_accuracy(&mut clf, &test, &mut bim);
        AblationRow { variant: label.to_string(), step, reset_period: reset, clean, robust }
    };

    let step_sweep = vec![
        eval_variant("step=eps/30 (tiny)", eps / 30.0, 20),
        eval_variant("step=eps/10 (paper)", eps / 10.0, 20),
        eval_variant("step=eps/4 (large)", eps / 4.0, 20),
        eval_variant("step=eps (fgsm-like)", eps, 20),
    ];
    let reset_sweep = vec![
        eval_variant("reset every 5", eps / 10.0, 5),
        eval_variant("reset every 20 (paper)", eps / 10.0, 20),
        eval_variant("never reset", eps / 10.0, usize::MAX),
    ];
    AblationResult { dataset: dataset.id().to_string(), epsilon: eps, step_sweep, reset_sweep }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_structure() {
        let scale = ExperimentScale { train_samples: 120, test_samples: 60, epochs: 3, seed: 6 };
        let r = run(SynthDataset::Mnist, &scale);
        assert_eq!(r.step_sweep.len(), 4);
        assert_eq!(r.reset_sweep.len(), 3);
        for row in r.step_sweep.iter().chain(&r.reset_sweep) {
            assert!((0.0..=1.0).contains(&row.clean));
            assert!((0.0..=1.0).contains(&row.robust));
        }
        assert!(r.to_string().contains("Ablation"));
    }
}
