//! Security curves (extension): accuracy as a function of the attack
//! budget ε — the standard way to see *how much* perturbation each
//! defense tolerates, rather than the paper's fixed-ε snapshots.

use super::common::{pct, ExperimentScale};
use crate::eval::evaluate_accuracy;
use crate::model::ModelSpec;
use crate::train::{BimAdvTrainer, FgsmAdvTrainer, ProposedTrainer, Trainer, VanillaTrainer};
use serde::{Deserialize, Serialize};
use simpadv_attacks::Bim;
use simpadv_data::SynthDataset;
use std::fmt;

/// Result of the security-curve experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityCurveResult {
    /// Dataset id.
    pub dataset: String,
    /// The swept attack budgets.
    pub epsilons: Vec<f32>,
    /// `(method, BIM(10) accuracy at each ε)`.
    pub series: Vec<(String, Vec<f32>)>,
}

impl fmt::Display for SecurityCurveResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Security curves ({}): accuracy vs BIM(10) budget", self.dataset)?;
        write!(f, "{:>12}", "eps")?;
        for e in &self.epsilons {
            write!(f, "{e:>9.2}")?;
        }
        writeln!(f)?;
        for (name, accs) in &self.series {
            write!(f, "{name:>12}")?;
            for a in accs {
                write!(f, "{:>9}", pct(*a))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Trains four classifiers at the dataset's paper ε, then sweeps the
/// evaluation budget from 0 to 1.5× that ε.
pub fn run(dataset: SynthDataset, scale: &ExperimentScale) -> SecurityCurveResult {
    let (train, test) = scale.load(dataset);
    let train_eps = dataset.paper_epsilon();
    let config = scale.train_config();
    let epsilons: Vec<f32> =
        [0.0f32, 0.25, 0.5, 0.75, 1.0, 1.5].iter().map(|f| f * train_eps).collect();

    let mut trainers: Vec<(String, Box<dyn Trainer>)> = vec![
        ("vanilla".into(), Box::new(VanillaTrainer::new())),
        ("fgsm-adv".into(), Box::new(FgsmAdvTrainer::new(train_eps))),
        ("proposed".into(), Box::new(ProposedTrainer::paper_defaults(train_eps))),
        ("bim(10)-adv".into(), Box::new(BimAdvTrainer::new(train_eps, 10))),
    ];
    let mut series = Vec::new();
    for (name, trainer) in trainers.iter_mut() {
        let mut clf = ModelSpec::default_mlp().build(scale.seed + 60);
        trainer.train(&mut clf, &train, &config);
        let mut accs = Vec::with_capacity(epsilons.len());
        for &eps in &epsilons {
            if eps == 0.0 {
                accs.push(crate::eval::evaluate_clean(&mut clf, &test));
            } else {
                let mut attack = Bim::new(eps, 10);
                accs.push(evaluate_accuracy(&mut clf, &test, &mut attack));
            }
        }
        series.push((name.clone(), accs));
    }
    SecurityCurveResult { dataset: dataset.id().to_string(), epsilons, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_structure_and_monotonicity() {
        let scale = ExperimentScale { train_samples: 120, test_samples: 60, epochs: 3, seed: 9 };
        let r = run(SynthDataset::Mnist, &scale);
        assert_eq!(r.series.len(), 4);
        assert_eq!(r.epsilons.len(), 6);
        for (name, accs) in &r.series {
            assert_eq!(accs.len(), 6, "{name}");
            // accuracy can only fall (within tolerance) as eps grows
            for w in accs.windows(2) {
                assert!(w[1] <= w[0] + 0.06, "{name} not monotone: {accs:?}");
            }
        }
        assert!(r.to_string().contains("Security curves"));
    }
}
