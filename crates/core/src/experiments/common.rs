//! Shared experiment infrastructure: workload scales and the four "probe"
//! classifiers that Sections II–III of the paper study.

use crate::config::TrainConfig;
use crate::model::ModelSpec;
use crate::report::TrainReport;
use crate::train::{BimAdvTrainer, FgsmAdvTrainer, Trainer, VanillaTrainer};
use serde::{Deserialize, Serialize};
use simpadv_data::{Dataset, SynthConfig, SynthDataset};
use simpadv_nn::Classifier;

/// Workload size of an experiment run.
///
/// `quick` is the default for the regeneration binaries (minutes on one
/// CPU core); `full` takes proportionally longer and tightens the
/// estimates without changing any qualitative outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Training-set size per dataset.
    pub train_samples: usize,
    /// Test-set size per dataset.
    pub test_samples: usize,
    /// Training epochs for every method.
    pub epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The default scale used by the `fig1`/`fig2`/`table1` binaries.
    pub fn quick() -> Self {
        ExperimentScale { train_samples: 1000, test_samples: 400, epochs: 60, seed: 2019 }
    }

    /// A larger, slower scale.
    pub fn full() -> Self {
        ExperimentScale { train_samples: 2000, test_samples: 800, epochs: 100, seed: 2019 }
    }

    /// A tiny scale for integration tests.
    pub fn smoke() -> Self {
        ExperimentScale { train_samples: 200, test_samples: 100, epochs: 6, seed: 2019 }
    }

    /// Generates the train/test pair for a dataset under this scale.
    pub fn load(&self, dataset: SynthDataset) -> (Dataset, Dataset) {
        let train = dataset.generate(&SynthConfig::new(self.train_samples, self.seed));
        let test = dataset.generate(&SynthConfig::new(self.test_samples, self.seed + 1));
        (train, test)
    }

    /// The training config shared by every method at this scale: SGD with
    /// momentum and a gentle exponential learning-rate decay (robust
    /// losses converge slowly at a constant rate).
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig::new(self.epochs, self.seed + 2).with_lr_decay(0.97)
    }
}

/// The four classifiers Sections II–III probe: Vanilla, FGSM-Adv,
/// BIM(10)-Adv and BIM(30)-Adv, trained on the same data with the same
/// hyper-parameters.
pub struct ProbeClassifiers {
    /// `(display name, classifier, training report)` in the paper's order.
    pub entries: Vec<(String, Classifier, TrainReport)>,
}

/// Trains the probe classifiers for a dataset at the given scale.
pub fn train_probe_classifiers(
    dataset: SynthDataset,
    scale: &ExperimentScale,
    train: &Dataset,
) -> ProbeClassifiers {
    let eps = dataset.paper_epsilon();
    let config = scale.train_config();
    let spec = ModelSpec::default_mlp();
    let mut trainers: Vec<(String, Box<dyn Trainer>)> = vec![
        ("vanilla".into(), Box::new(VanillaTrainer::new())),
        ("fgsm-adv".into(), Box::new(FgsmAdvTrainer::new(eps))),
        ("bim(10)-adv".into(), Box::new(BimAdvTrainer::new(eps, 10))),
        ("bim(30)-adv".into(), Box::new(BimAdvTrainer::new(eps, 30))),
    ];
    let mut entries = Vec::new();
    for (i, (name, trainer)) in trainers.iter_mut().enumerate() {
        let mut clf = spec.build(scale.seed + 10 + i as u64);
        let report = trainer.train(&mut clf, train, &config);
        entries.push((name.clone(), clf, report));
    }
    ProbeClassifiers { entries }
}

/// Formats a fraction as a percentage with two decimals, as in the paper's
/// tables.
pub(crate) fn pct(v: f32) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        let s = ExperimentScale::smoke();
        assert!(s.train_samples < q.train_samples && q.train_samples < f.train_samples);
        assert!(s.epochs < q.epochs && q.epochs < f.epochs);
    }

    #[test]
    fn load_generates_disjoint_seeded_sets() {
        let s = ExperimentScale::smoke();
        let (train, test) = s.load(SynthDataset::Mnist);
        assert_eq!(train.len(), 200);
        assert_eq!(test.len(), 100);
        assert_ne!(train.images().row(0), test.images().row(0));
    }

    #[test]
    fn probe_training_produces_four_classifiers() {
        let s = ExperimentScale { train_samples: 100, test_samples: 50, epochs: 2, seed: 1 };
        let (train, _) = s.load(SynthDataset::Mnist);
        let probes = train_probe_classifiers(SynthDataset::Mnist, &s, &train);
        assert_eq!(probes.entries.len(), 4);
        assert_eq!(probes.entries[0].0, "vanilla");
        assert_eq!(probes.entries[3].0, "bim(30)-adv");
        // cost ordering: vanilla < fgsm-adv < bim(10) < bim(30)
        let passes: Vec<f64> =
            probes.entries.iter().map(|(_, _, r)| r.mean_gradient_passes()).collect();
        assert!(passes[0] < passes[1] && passes[1] < passes[2] && passes[2] < passes[3]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9921), "99.21%");
        assert_eq!(pct(0.0), "0.00%");
    }
}
