//! Convergence dynamics (extension): robust accuracy as a function of
//! training epochs for the proposed method vs its cost-matched and
//! strength-matched baselines.
//!
//! This exhibits the *mechanism* of the paper's method: early on, the
//! persistent adversarial examples are still weak (few accumulated steps)
//! and the proposed curve lags BIM-Adv; as epoch-wise iteration
//! accumulates, it closes most of the gap — at FGSM-Adv cost throughout.

use super::common::{pct, ExperimentScale};
use crate::eval::evaluate_accuracy;
use crate::model::ModelSpec;
use crate::train::{BimAdvTrainer, FgsmAdvTrainer, ProposedTrainer, Trainer};
use serde::{Deserialize, Serialize};
use simpadv_attacks::Bim;
use simpadv_data::SynthDataset;
use std::fmt;

/// Result of the convergence experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceResult {
    /// Dataset id.
    pub dataset: String,
    /// Epoch counts probed.
    pub epochs: Vec<usize>,
    /// `(method, BIM(10) accuracy after the given number of epochs)`.
    pub series: Vec<(String, Vec<f32>)>,
}

impl fmt::Display for ConvergenceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Convergence ({}): BIM(10) accuracy vs training epochs", self.dataset)?;
        write!(f, "{:>12}", "epochs")?;
        for e in &self.epochs {
            write!(f, "{e:>9}")?;
        }
        writeln!(f)?;
        for (name, accs) in &self.series {
            write!(f, "{name:>12}")?;
            for a in accs {
                write!(f, "{:>9}", pct(*a))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs the convergence probe.
///
/// Determinism makes re-training from scratch for every epoch budget
/// exactly equivalent to snapshotting one long run, so this function
/// trades compute for simplicity: each probe point is an independent,
/// fully reproducible training run.
pub fn run(
    dataset: SynthDataset,
    scale: &ExperimentScale,
    epoch_grid: &[usize],
) -> ConvergenceResult {
    let (train, test) = scale.load(dataset);
    let eps = dataset.paper_epsilon();
    let mut series: Vec<(String, Vec<f32>)> = vec![
        ("fgsm-adv".into(), Vec::new()),
        ("proposed".into(), Vec::new()),
        ("bim(10)-adv".into(), Vec::new()),
    ];
    for &epochs in epoch_grid {
        let mut config = scale.train_config();
        config.epochs = epochs;
        let mut trainers: Vec<Box<dyn Trainer>> = vec![
            Box::new(FgsmAdvTrainer::new(eps)),
            Box::new(ProposedTrainer::paper_defaults(eps)),
            Box::new(BimAdvTrainer::new(eps, 10)),
        ];
        for (slot, trainer) in series.iter_mut().zip(trainers.iter_mut()) {
            let mut clf = ModelSpec::default_mlp().build(scale.seed + 50);
            trainer.train(&mut clf, &train, &config);
            let mut attack = Bim::new(eps, 10);
            slot.1.push(evaluate_accuracy(&mut clf, &test, &mut attack));
        }
    }
    ConvergenceResult { dataset: dataset.id().to_string(), epochs: epoch_grid.to_vec(), series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_structure() {
        let scale = ExperimentScale { train_samples: 120, test_samples: 60, epochs: 4, seed: 8 };
        let r = run(SynthDataset::Mnist, &scale, &[1, 3]);
        assert_eq!(r.epochs, vec![1, 3]);
        assert_eq!(r.series.len(), 3);
        for (_, accs) in &r.series {
            assert_eq!(accs.len(), 2);
            assert!(accs.iter().all(|a| (0.0..=1.0).contains(a)));
        }
        assert!(r.to_string().contains("Convergence"));
    }
}
