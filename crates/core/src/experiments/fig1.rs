//! Figure 1: test accuracy on BIM examples as a function of the attack's
//! iteration count `N` (total ε fixed, per-step size ε/N).
//!
//! The paper's reading (Section II): curves converge quickly in `N` —
//! per-step perturbations below a limit stop making the attack stronger —
//! and only the Iter-Adv classifiers stay above random guessing.

use super::common::{pct, train_probe_classifiers, ExperimentScale};
use crate::eval::evaluate_accuracy;
use serde::{Deserialize, Serialize};
use simpadv_attacks::Bim;
use simpadv_data::SynthDataset;
use std::fmt;

/// The attack iteration counts swept on the x-axis.
pub const ITERATION_GRID: [usize; 10] = [1, 2, 3, 4, 5, 7, 10, 15, 20, 30];

/// Result of the Figure 1 experiment for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Dataset id (`"mnist"` / `"fashion"`).
    pub dataset: String,
    /// Total perturbation ε.
    pub epsilon: f32,
    /// The swept iteration counts.
    pub iterations: Vec<usize>,
    /// `(classifier name, accuracy per iteration count)`.
    pub series: Vec<(String, Vec<f32>)>,
}

impl Fig1Result {
    /// The accuracy series for a named classifier.
    pub fn series_for(&self, name: &str) -> Option<&[f32]> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s.as_slice())
    }
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1 ({}): test accuracy vs BIM iterations (eps = {})",
            self.dataset, self.epsilon
        )?;
        write!(f, "{:>14}", "N")?;
        for n in &self.iterations {
            write!(f, "{n:>9}")?;
        }
        writeln!(f)?;
        for (name, accs) in &self.series {
            write!(f, "{name:>14}")?;
            for a in accs {
                write!(f, "{:>9}", pct(*a))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs Figure 1 for one dataset at the given scale.
pub fn run(dataset: SynthDataset, scale: &ExperimentScale) -> Fig1Result {
    let (train, test) = scale.load(dataset);
    let eps = dataset.paper_epsilon();
    let mut probes = train_probe_classifiers(dataset, scale, &train);
    let iterations: Vec<usize> = ITERATION_GRID.to_vec();
    let mut series = Vec::new();
    for (name, clf, _) in probes.entries.iter_mut() {
        let mut accs = Vec::with_capacity(iterations.len());
        for &n in &iterations {
            let mut attack = Bim::new(eps, n); // step = eps / n
            accs.push(evaluate_accuracy(clf, &test, &mut attack));
        }
        series.push((name.clone(), accs));
    }
    Fig1Result { dataset: dataset.id().to_string(), epsilon: eps, iterations, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_expected_shape() {
        let scale = ExperimentScale { train_samples: 150, test_samples: 60, epochs: 4, seed: 3 };
        let r = run(SynthDataset::Mnist, &scale);
        assert_eq!(r.series.len(), 4);
        assert_eq!(r.iterations.len(), ITERATION_GRID.len());
        for (_, accs) in &r.series {
            assert_eq!(accs.len(), ITERATION_GRID.len());
            assert!(accs.iter().all(|a| (0.0..=1.0).contains(a)));
        }
        assert!(r.series_for("vanilla").is_some());
        assert!(r.series_for("nope").is_none());
        assert!(r.to_string().contains("Figure 1"));
    }
}
