//! Table I: the head-to-head evaluation of every defensive method —
//! accuracy on Original / FGSM / BIM(10) / BIM(30) inputs for both
//! datasets, plus training cost per epoch.
//!
//! The paper's reading (Section V): the proposed method matches or beats
//! the Iter-Adv methods' robustness at Single-Adv cost, and beats ATDA on
//! every adversarial column while training faster.

use super::common::{pct, ExperimentScale};
use crate::eval::{EvalResult, EvalSuite};
use crate::model::ModelSpec;
use crate::report::TrainReport;
use crate::train::{AtdaTrainer, BimAdvTrainer, FgsmAdvTrainer, ProposedTrainer, Trainer};
use serde::{Deserialize, Serialize};
use simpadv_data::SynthDataset;
use std::fmt;

/// One method's row: per-dataset evaluation plus cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Method name as in the paper ("FGSM-Adv", "ATDA", "Proposed", ...).
    pub method: String,
    /// Evaluation per dataset id, in dataset order.
    pub evals: Vec<(String, EvalResult)>,
    /// Mean wall-clock seconds per training epoch, averaged over datasets.
    pub seconds_per_epoch: f64,
    /// Mean gradient passes (fwd+bwd) per epoch — machine-independent cost.
    pub gradient_passes_per_epoch: f64,
}

/// The complete Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Dataset ids in column order.
    pub datasets: Vec<String>,
    /// Method rows, in the paper's order.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// The row for a named method.
    pub fn row(&self, method: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.method == method)
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: accuracy per attack column and training cost")?;
        write!(f, "{:>14}", "method")?;
        for ds in &self.datasets {
            for col in ["orig", "fgsm", "bim10", "bim30"] {
                write!(f, "{:>9}", format!("{ds_short}:{col}", ds_short = &ds[..2]))?;
            }
        }
        writeln!(f, "{:>10}{:>12}", "s/epoch", "passes/ep")?;
        for row in &self.rows {
            write!(f, "{:>14}", row.method)?;
            for (_, eval) in &row.evals {
                for a in &eval.accuracies {
                    write!(f, "{:>9}", pct(*a))?;
                }
            }
            writeln!(f, "{:>10.3}{:>12.0}", row.seconds_per_epoch, row.gradient_passes_per_epoch)?;
        }
        Ok(())
    }
}

/// Runs the full Table I experiment at the given scale.
pub fn run(scale: &ExperimentScale) -> Table1Result {
    let datasets = [SynthDataset::Mnist, SynthDataset::Fashion];
    let methods: Vec<(String, MethodKind)> = vec![
        ("FGSM-Adv".into(), MethodKind::FgsmAdv),
        ("ATDA".into(), MethodKind::Atda),
        ("Proposed".into(), MethodKind::Proposed),
        ("BIM(10)-Adv".into(), MethodKind::BimAdv(10)),
        ("BIM(30)-Adv".into(), MethodKind::BimAdv(30)),
    ];
    let mut rows = Vec::new();
    for (mi, (name, kind)) in methods.iter().enumerate() {
        let mut evals = Vec::new();
        let mut reports: Vec<TrainReport> = Vec::new();
        for dataset in datasets {
            let (train, test) = scale.load(dataset);
            let eps = dataset.paper_epsilon();
            let mut trainer = kind.build(eps);
            let mut clf = ModelSpec::default_mlp().build(scale.seed + 100 + mi as u64);
            let report = trainer.train(&mut clf, &train, &scale.train_config());
            let eval = EvalSuite::paper(eps).run(&mut clf, &test);
            evals.push((dataset.id().to_string(), eval));
            reports.push(report);
        }
        let seconds =
            reports.iter().map(TrainReport::mean_epoch_seconds).sum::<f64>() / reports.len() as f64;
        let passes = reports.iter().map(TrainReport::mean_gradient_passes).sum::<f64>()
            / reports.len() as f64;
        rows.push(Table1Row {
            method: name.clone(),
            evals,
            seconds_per_epoch: seconds,
            gradient_passes_per_epoch: passes,
        });
    }
    Table1Result { datasets: datasets.iter().map(|d| d.id().to_string()).collect(), rows }
}

/// Which method a row trains (ε is dataset-dependent, so rows rebuild
/// their trainer per dataset).
#[derive(Debug, Clone, Copy, PartialEq)]
enum MethodKind {
    FgsmAdv,
    Atda,
    Proposed,
    BimAdv(usize),
}

impl MethodKind {
    fn build(self, eps: f32) -> Box<dyn Trainer> {
        match self {
            MethodKind::FgsmAdv => Box::new(FgsmAdvTrainer::new(eps)),
            MethodKind::Atda => Box::new(AtdaTrainer::new(eps)),
            MethodKind::Proposed => Box::new(ProposedTrainer::paper_defaults(eps)),
            MethodKind::BimAdv(k) => Box::new(BimAdvTrainer::new(eps, k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_paper_structure() {
        let scale = ExperimentScale { train_samples: 120, test_samples: 60, epochs: 3, seed: 5 };
        let r = run(&scale);
        assert_eq!(r.datasets, vec!["mnist", "fashion"]);
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.rows[0].method, "FGSM-Adv");
        assert_eq!(r.rows[2].method, "Proposed");
        for row in &r.rows {
            assert_eq!(row.evals.len(), 2);
            for (_, eval) in &row.evals {
                assert_eq!(eval.columns.len(), 4);
            }
            assert!(row.seconds_per_epoch > 0.0);
        }
        // cost accounting: Single-Adv methods cheaper than Iter-Adv
        let prop = r.row("Proposed").unwrap().gradient_passes_per_epoch;
        let bim30 = r.row("BIM(30)-Adv").unwrap().gradient_passes_per_epoch;
        assert!(prop < bim30 / 3.0, "proposed {prop} vs bim30 {bim30}");
        assert!(r.to_string().contains("Table I"));
        assert!(r.row("nope").is_none());
    }
}
