//! Experiment runners: one module per figure/table of the paper.
//!
//! Each runner owns its workload definition, returns a serializable result
//! struct, and renders the same rows/series the paper reports. The
//! `simpadv-bench` binaries (`fig1`, `fig2`, `table1`) are thin wrappers
//! around these.

pub mod ablation;
mod common;
pub mod convergence;
pub mod fig1;
pub mod fig2;
pub mod security_curve;
pub mod table1;

pub use common::{train_probe_classifiers, ExperimentScale, ProbeClassifiers};
