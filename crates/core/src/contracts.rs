//! Debug-build invariant checks for the training loop.
//!
//! The Proposed trainer carries **persistent adversarial examples** across
//! epochs; every quantity downstream (loss mixing, the ε-ball analysis of
//! the paper) silently assumes those examples are well-formed. This module
//! states that assumption as code. All checks are `debug_assert!`-level:
//! they vanish in release builds, so the training hot path pays nothing,
//! while debug and test builds fail loudly at the first corrupted batch
//! instead of drifting into NaN losses.

use simpadv_tensor::Tensor;

/// Slack for the ε-ball and box containment checks: `signed_step` clamps
/// exactly, but the comparison here re-derives the distance in `f32` and
/// must tolerate one rounding step.
const TOLERANCE: f32 = 1e-5;

/// Checks the invariants of an adversarial batch relative to its clean
/// counterpart:
///
/// 1. shapes match;
/// 2. every adversarial value is finite;
/// 3. every adversarial value lies in the valid pixel box `[0, 1]`;
/// 4. every adversarial value is within `epsilon` (l∞) of the clean value.
///
/// Compiled to a no-op in release builds.
///
/// # Panics
///
/// In builds with debug assertions, panics when any invariant is violated.
pub fn check_adv_batch(adv: &Tensor, clean: &Tensor, epsilon: f32) {
    if !cfg!(debug_assertions) {
        return;
    }
    debug_assert_eq!(
        adv.shape(),
        clean.shape(),
        "adversarial batch shape {:?} does not match clean batch shape {:?}",
        adv.shape(),
        clean.shape()
    );
    for (i, (&a, &c)) in adv.as_slice().iter().zip(clean.as_slice()).enumerate() {
        debug_assert!(
            a.is_finite(),
            "adversarial example has non-finite value {a} at flat index {i}"
        );
        debug_assert!(
            (-TOLERANCE..=1.0 + TOLERANCE).contains(&a),
            "adversarial value {a} at flat index {i} escapes the [0, 1] pixel box"
        );
        debug_assert!(
            (a - c).abs() <= epsilon + TOLERANCE,
            "adversarial value {a} at flat index {i} is {} from clean value {c}, \
             outside the epsilon = {epsilon} ball",
            (a - c).abs()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec(), &[1, vals.len()])
    }

    #[test]
    fn accepts_a_valid_batch() {
        let clean = batch(&[0.2, 0.5, 0.9]);
        let adv = batch(&[0.3, 0.4, 1.0]);
        check_adv_batch(&adv, &clean, 0.1);
    }

    #[test]
    fn accepts_the_boundary_of_the_ball() {
        let clean = batch(&[0.5]);
        let adv = batch(&[0.8]);
        check_adv_batch(&adv, &clean, 0.3);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let clean = batch(&[0.5]);
        let adv = batch(&[f32::NAN]);
        check_adv_batch(&adv, &clean, 0.3);
    }

    #[test]
    #[should_panic(expected = "pixel box")]
    fn rejects_box_escape() {
        let clean = batch(&[0.9]);
        let adv = batch(&[1.2]);
        check_adv_batch(&adv, &clean, 0.5);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_ball_escape() {
        let clean = batch(&[0.1]);
        let adv = batch(&[0.6]);
        check_adv_batch(&adv, &clean, 0.3);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn rejects_shape_mismatch() {
        let clean = batch(&[0.1, 0.2]);
        let adv = batch(&[0.1]);
        check_adv_batch(&adv, &clean, 0.3);
    }
}
