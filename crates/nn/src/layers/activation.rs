//! Element-wise activation layers and the softmax layer.

use crate::layer::{Layer, Mode};
use simpadv_tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("relu backward before forward");
        assert_eq!(grad_output.shape(), input.shape(), "relu backward shape mismatch");
        grad_output.zip_map(input, |g, x| if x > 0.0 { g } else { 0.0 })
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Leaky rectified linear unit: `x` for `x > 0`, `alpha * x` otherwise.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    alpha: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-slope `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid leaky-relu alpha {alpha}");
        LeakyRelu { alpha, cached_input: None }
    }

    /// The negative slope.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Default for LeakyRelu {
    /// Slope 0.01, the conventional default.
    fn default() -> Self {
        LeakyRelu::new(0.01)
    }
}

impl Layer for LeakyRelu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(input.clone());
        let a = self.alpha;
        input.map(|v| if v > 0.0 { v } else { a * v })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("leaky-relu backward before forward");
        let a = self.alpha;
        grad_output.zip_map(input, |g, x| if x > 0.0 { g } else { a * g })
    }

    fn name(&self) -> &'static str {
        "leaky_relu"
    }
}

/// Logistic sigmoid: `1 / (1 + e^{-x})`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { cached_output: None }
    }
}

impl Layer for Sigmoid {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("sigmoid backward before forward");
        grad_output.zip_map(out, |g, s| g * s * (1.0 - s))
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Hyperbolic tangent.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { cached_output: None }
    }
}

impl Layer for Tanh {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("tanh backward before forward");
        grad_output.zip_map(out, |g, t| g * (1.0 - t * t))
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

/// Softplus: `ln(1 + eˣ)` — a smooth ReLU.
#[derive(Debug, Clone, Default)]
pub struct Softplus {
    cached_input: Option<Tensor>,
}

impl Softplus {
    /// Creates a softplus layer.
    pub fn new() -> Self {
        Softplus { cached_input: None }
    }
}

impl Layer for Softplus {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(input.clone());
        // numerically stable: max(x, 0) + ln(1 + e^{-|x|})
        input.map(|v| v.max(0.0) + (1.0 + (-v.abs()).exp()).ln())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("softplus backward before forward");
        // d/dx softplus = sigmoid(x)
        grad_output.zip_map(input, |g, x| g / (1.0 + (-x).exp()))
    }

    fn name(&self) -> &'static str {
        "softplus"
    }
}

/// GELU (tanh approximation), the transformer-era smooth activation.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cached_input: Option<Tensor>,
}

impl Gelu {
    /// Creates a GELU layer.
    pub fn new() -> Self {
        Gelu { cached_input: None }
    }

    fn phi(x: f32) -> f32 {
        // tanh approximation of the Gaussian CDF scaling
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        0.5 * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
    }
}

impl Layer for Gelu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|v| v * Self::phi(v))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("gelu backward before forward");
        grad_output.zip_map(input, |g, x| {
            const C: f32 = 0.797_884_6;
            let inner = C * (x + 0.044_715 * x * x * x);
            let t = inner.tanh();
            let dinner = C * (1.0 + 3.0 * 0.044_715 * x * x);
            let dphi = 0.5 * (1.0 - t * t) * dinner;
            g * (0.5 * (1.0 + t) + x * dphi)
        })
    }

    fn name(&self) -> &'static str {
        "gelu"
    }
}

/// Row-wise softmax over a `[n, c]` tensor.
///
/// Normally classifiers train with the fused
/// [`crate::SoftmaxCrossEntropy`] loss and never materialize probabilities;
/// this layer exists for inference pipelines and calibration analysis.
#[derive(Debug, Clone, Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Softmax { cached_output: None }
    }
}

impl Layer for Softmax {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        let out = crate::loss::softmax(input);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let s = self.cached_output.as_ref().expect("softmax backward before forward");
        assert_eq!(grad_output.shape(), s.shape(), "softmax backward shape mismatch");
        // For each row: dx = s ⊙ (g - <g, s>)
        let (n, c) = (s.shape()[0], s.shape()[1]);
        let mut out = vec![0.0f32; n * c];
        let sv = s.as_slice();
        let gv = grad_output.as_slice();
        for i in 0..n {
            let srow = &sv[i * c..(i + 1) * c];
            let grow = &gv[i * c..(i + 1) * c];
            let dot: f32 = srow.iter().zip(grow).map(|(&a, &b)| a * b).sum();
            for j in 0..c {
                out[i * c + j] = srow[j] * (grow[j] - dot);
            }
        }
        Tensor::from_vec(out, &[n, c])
    }

    fn name(&self) -> &'static str {
        "softmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;

    #[test]
    fn relu_forward_values() {
        let mut l = Relu::new();
        let y = l.forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0]), Mode::Eval);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradcheck() {
        check_layer_gradients(&mut Relu::new(), &[3, 5], 1e-2, 1);
    }

    #[test]
    fn leaky_relu_forward_and_gradcheck() {
        let mut l = LeakyRelu::new(0.1);
        let y = l.forward(&Tensor::from_slice(&[-2.0, 3.0]), Mode::Eval);
        assert_eq!(y.as_slice(), &[-0.2, 3.0]);
        check_layer_gradients(&mut LeakyRelu::new(0.1), &[3, 5], 1e-2, 2);
        assert_eq!(LeakyRelu::default().alpha(), 0.01);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn leaky_relu_rejects_negative_alpha() {
        LeakyRelu::new(-0.5);
    }

    #[test]
    fn sigmoid_range_and_gradcheck() {
        let mut l = Sigmoid::new();
        let y = l.forward(&Tensor::from_slice(&[-10.0, 0.0, 10.0]), Mode::Eval);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        check_layer_gradients(&mut Sigmoid::new(), &[2, 4], 1e-2, 3);
    }

    #[test]
    fn tanh_odd_and_gradcheck() {
        let mut l = Tanh::new();
        let y = l.forward(&Tensor::from_slice(&[-1.0, 0.0, 1.0]), Mode::Eval);
        assert_eq!(y.as_slice()[1], 0.0);
        assert!((y.as_slice()[0] + y.as_slice()[2]).abs() < 1e-6);
        check_layer_gradients(&mut Tanh::new(), &[2, 4], 1e-2, 4);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut l = Softmax::new();
        let y =
            l.forward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]), Mode::Eval);
        for i in 0..2 {
            assert!((y.row(i).sum() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_gradcheck() {
        check_layer_gradients(&mut Softmax::new(), &[3, 4], 1e-2, 5);
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Softmax::new().param_count(), 0);
        assert_eq!(Gelu::new().param_count(), 0);
    }

    #[test]
    fn softplus_positive_and_smooth() {
        let mut l = Softplus::new();
        let y = l.forward(&Tensor::from_slice(&[-20.0, 0.0, 20.0]), Mode::Eval);
        assert!(y.as_slice()[0] >= 0.0 && y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 2.0f32.ln()).abs() < 1e-6);
        assert!((y.as_slice()[2] - 20.0).abs() < 1e-4);
        check_layer_gradients(&mut Softplus::new(), &[3, 4], 1e-2, 11);
    }

    #[test]
    fn gelu_matches_known_values_and_gradcheck() {
        let mut l = Gelu::new();
        let y = l.forward(&Tensor::from_slice(&[0.0, 10.0, -10.0]), Mode::Eval);
        assert_eq!(y.as_slice()[0], 0.0);
        assert!((y.as_slice()[1] - 10.0).abs() < 1e-3);
        assert!(y.as_slice()[2].abs() < 1e-3);
        check_layer_gradients(&mut Gelu::new(), &[3, 4], 1e-2, 12);
    }
}
