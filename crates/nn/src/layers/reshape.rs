//! Per-example reshaping (e.g. flattened pixels → image planes).

use crate::layer::{Layer, Mode};
use simpadv_tensor::Tensor;

/// Reshapes `[n, d...]` to `[n, target...]`, preserving the batch axis —
/// the inverse of [`crate::Flatten`]. Typically the first layer of a
/// convolutional network fed from flattened datasets.
#[derive(Debug, Clone)]
pub struct Reshape {
    target: Vec<usize>,
    cached_shape: Vec<usize>,
}

impl Reshape {
    /// Creates a reshape to the given per-example shape.
    ///
    /// # Panics
    ///
    /// Panics if `target` is empty or has zero elements.
    pub fn new(target: &[usize]) -> Self {
        assert!(!target.is_empty(), "reshape target must be non-empty");
        assert!(target.iter().product::<usize>() > 0, "reshape target has zero elements");
        Reshape { target: target.to_vec(), cached_shape: Vec::new() }
    }

    /// The per-example target shape.
    pub fn target(&self) -> &[usize] {
        &self.target
    }
}

impl Layer for Reshape {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert!(input.rank() >= 2, "reshape expects a batched input, got {:?}", input.shape());
        let n = input.shape()[0];
        let d: usize = input.shape()[1..].iter().product();
        let want: usize = self.target.iter().product();
        assert_eq!(d, want, "cannot reshape {d} per-example elements into {:?}", self.target);
        self.cached_shape = input.shape().to_vec();
        let mut shape = vec![n];
        shape.extend_from_slice(&self.target);
        input.reshape(&shape)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.cached_shape.is_empty(), "reshape backward before forward");
        grad_output.reshape(&self.cached_shape)
    }

    fn name(&self) -> &'static str {
        "reshape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_roundtrip() {
        let mut l = Reshape::new(&[1, 4, 4]);
        let x = Tensor::arange(32).reshape(&[2, 16]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 1, 4, 4]);
        let g = l.backward(&y);
        assert_eq!(g.shape(), &[2, 16]);
        assert_eq!(g, x);
        assert_eq!(l.target(), &[1, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn element_count_mismatch_rejected() {
        Reshape::new(&[1, 3, 3]).forward(&Tensor::zeros(&[2, 16]), Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_target_rejected() {
        Reshape::new(&[]);
    }
}
