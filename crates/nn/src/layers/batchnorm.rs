//! 1-D batch normalization.

use crate::layer::{expect_state, Layer, Mode, ParamRef};
use simpadv_tensor::Tensor;

/// Batch normalization over the feature axis of `[n, d]` inputs.
///
/// In [`Mode::Train`] the layer normalizes with batch statistics and updates
/// exponential running statistics; in [`Mode::Eval`] it uses the running
/// statistics, making inference deterministic.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    // backward cache
    cached: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    rstd: Tensor, // 1/sqrt(var+eps), per feature
    train: bool,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `features`-wide inputs with the given
    /// running-statistics momentum (conventionally 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `momentum` is outside `[0, 1]`.
    pub fn new(features: usize, momentum: f32) -> Self {
        assert!(features > 0, "batchnorm needs at least one feature");
        assert!((0.0..=1.0).contains(&momentum), "momentum {momentum} not in [0, 1]");
        BatchNorm1d {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            grad_gamma: Tensor::zeros(&[features]),
            grad_beta: Tensor::zeros(&[features]),
            running_mean: Tensor::zeros(&[features]),
            running_var: Tensor::ones(&[features]),
            momentum,
            eps: 1e-5,
            cached: None,
        }
    }

    /// The running mean estimate.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// The running variance estimate.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm1d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 2, "batchnorm expects [n, d], got {:?}", input.shape());
        assert_eq!(input.shape()[1], self.gamma.len(), "batchnorm feature mismatch");
        let n = input.shape()[0];
        match mode {
            Mode::Train => {
                assert!(n > 1, "batchnorm training needs batch size > 1");
                let mu = input.mean_axis(0); // [d]
                let centered = input.sub(&mu);
                let var = centered.powi(2).mean_axis(0); // population var, [d]
                let rstd = var.add_scalar(self.eps).sqrt().map(|v| 1.0 / v);
                let xhat = centered.mul(&rstd);
                let y = xhat.mul(&self.gamma).add(&self.beta);
                // running <- (1-m)*running + m*batch
                let m = self.momentum;
                self.running_mean = self.running_mean.mul_scalar(1.0 - m).add(&mu.mul_scalar(m));
                self.running_var = self.running_var.mul_scalar(1.0 - m).add(&var.mul_scalar(m));
                self.cached = Some(BnCache { xhat, rstd, train: true });
                y
            }
            Mode::Eval => {
                let rstd = self.running_var.add_scalar(self.eps).sqrt().map(|v| 1.0 / v);
                let xhat = input.sub(&self.running_mean).mul(&rstd);
                let y = xhat.mul(&self.gamma).add(&self.beta);
                self.cached = Some(BnCache { xhat, rstd, train: false });
                y
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cached.as_ref().expect("batchnorm backward before forward");
        let n = grad_output.shape()[0] as f32;
        // dgamma / dbeta are the same in both modes
        self.grad_gamma.add_assign(&grad_output.mul(&cache.xhat).sum_axis(0));
        self.grad_beta.add_assign(&grad_output.sum_axis(0));
        let dxhat = grad_output.mul(&self.gamma);
        if cache.train {
            // dx = rstd/n * (n*dxhat - Σdxhat - xhat * Σ(dxhat ⊙ xhat))
            let sum_dxhat = dxhat.sum_axis(0);
            let sum_dxhat_xhat = dxhat.mul(&cache.xhat).sum_axis(0);
            dxhat
                .mul_scalar(n)
                .sub(&sum_dxhat)
                .sub(&cache.xhat.mul(&sum_dxhat_xhat))
                .mul(&cache.rstd)
                .mul_scalar(1.0 / n)
        } else {
            // eval statistics are constants: dx = dxhat * rstd
            dxhat.mul(&cache.rstd)
        }
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef { value: &mut self.gamma, grad: &mut self.grad_gamma },
            ParamRef { value: &mut self.beta, grad: &mut self.grad_beta },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "batchnorm1d"
    }

    fn state(&self) -> Vec<(String, Tensor)> {
        vec![
            ("gamma".into(), self.gamma.clone()),
            ("beta".into(), self.beta.clone()),
            ("running_mean".into(), self.running_mean.clone()),
            ("running_var".into(), self.running_var.clone()),
        ]
    }

    fn load_state(&mut self, state: &[(String, Tensor)]) {
        self.gamma = expect_state(state, "gamma");
        self.beta = expect_state(state, "beta");
        self.running_mean = expect_state(state, "running_mean");
        self.running_var = expect_state(state, "running_var");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_layer_gradients, check_layer_gradients_mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_output_is_normalized() {
        let mut l = BatchNorm1d::new(3, 0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_uniform(&mut rng, &[64, 3], -5.0, 5.0);
        let y = l.forward(&x, Mode::Train);
        let mu = y.mean_axis(0);
        let var = y.sub(&mu).powi(2).mean_axis(0);
        assert!(mu.abs().max() < 1e-4, "per-feature mean {mu:?}");
        assert!((var.max() - 1.0).abs() < 1e-2, "per-feature var {var:?}");
    }

    #[test]
    fn running_stats_track_batches() {
        let mut l = BatchNorm1d::new(2, 0.5);
        let x = Tensor::from_vec(vec![0.0, 10.0, 2.0, 10.0, 4.0, 10.0, 6.0, 10.0], &[4, 2]);
        let _ = l.forward(&x, Mode::Train);
        // feature 0 batch mean = 3, feature 1 = 10; running = 0.5*0 + 0.5*batch
        assert!((l.running_mean().as_slice()[0] - 1.5).abs() < 1e-6);
        assert!((l.running_mean().as_slice()[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut l = BatchNorm1d::new(1, 1.0); // momentum 1: running = last batch
        let x = Tensor::from_vec(vec![1.0, 3.0], &[2, 1]);
        let _ = l.forward(&x, Mode::Train);
        // running mean = 2, running var = 1
        let y = l.forward(&Tensor::from_vec(vec![2.0], &[1, 1]), Mode::Eval);
        assert!(y.item().abs() < 1e-3);
    }

    #[test]
    fn gradcheck_train_mode() {
        check_layer_gradients(&mut BatchNorm1d::new(4, 0.1), &[8, 4], 2e-2, 21);
    }

    #[test]
    fn gradcheck_eval_mode() {
        let mut l = BatchNorm1d::new(4, 0.5);
        // establish non-trivial running stats first
        let mut rng = StdRng::seed_from_u64(5);
        let warm = Tensor::rand_uniform(&mut rng, &[32, 4], -2.0, 2.0);
        let _ = l.forward(&warm, Mode::Train);
        check_layer_gradients_mode(&mut l, &[6, 4], 1e-2, 22, Mode::Eval);
    }

    #[test]
    fn state_roundtrip() {
        let mut a = BatchNorm1d::new(3, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_uniform(&mut rng, &[16, 3], -1.0, 1.0);
        let _ = a.forward(&x, Mode::Train);
        let mut b = BatchNorm1d::new(3, 0.2);
        b.load_state(&a.state());
        let probe = Tensor::rand_uniform(&mut rng, &[4, 3], -1.0, 1.0);
        assert_eq!(a.forward(&probe, Mode::Eval), b.forward(&probe, Mode::Eval));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn train_rejects_singleton_batch() {
        BatchNorm1d::new(2, 0.1).forward(&Tensor::zeros(&[1, 2]), Mode::Train);
    }
}
