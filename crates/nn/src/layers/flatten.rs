//! Flattening between convolutional and dense stages.

use crate::layer::{Layer, Mode};
use simpadv_tensor::Tensor;

/// Flattens `[n, d1, d2, ...]` to `[n, d1*d2*...]`, preserving the batch
/// axis. Backward restores the original shape.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: Vec::new() }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert!(input.rank() >= 2, "flatten expects a batched input, got {:?}", input.shape());
        self.cached_shape = input.shape().to_vec();
        let n = input.shape()[0];
        let d: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, d])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.cached_shape.is_empty(), "flatten backward before forward");
        grad_output.reshape(&self.cached_shape)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_roundtrip() {
        let mut l = Flatten::new();
        let x = Tensor::arange(24).reshape(&[2, 3, 4]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 12]);
        let g = l.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4]);
        assert_eq!(g, x);
    }

    #[test]
    fn rank4_to_rank2() {
        let mut l = Flatten::new();
        let y = l.forward(&Tensor::zeros(&[5, 1, 28, 28]), Mode::Eval);
        assert_eq!(y.shape(), &[5, 784]);
    }

    #[test]
    #[should_panic(expected = "batched")]
    fn rejects_rank1() {
        Flatten::new().forward(&Tensor::zeros(&[5]), Mode::Eval);
    }
}
