//! Network building blocks: trainable layers, activations and containers.

mod activation;
mod batchnorm;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;
mod reshape;
mod sequential;

pub use activation::{Gelu, LeakyRelu, Relu, Sigmoid, Softmax, Softplus, Tanh};
pub use batchnorm::BatchNorm1d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};
pub use reshape::Reshape;
pub use sequential::Sequential;
