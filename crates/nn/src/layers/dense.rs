//! Fully connected (affine) layer.

use crate::init::WeightInit;
use crate::layer::{expect_state, Layer, Mode, ParamRef};
use rand::Rng;
use simpadv_tensor::Tensor;

/// A fully connected layer computing `y = x W + b`.
///
/// Shapes: input `[n, in_features]`, weight `[in_features, out_features]`,
/// bias `[out_features]`, output `[n, out_features]`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use simpadv_nn::{Dense, Layer, Mode};
/// use simpadv_tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(3, 2, &mut rng);
/// let y = layer.forward(&Tensor::ones(&[4, 3]), Mode::Eval);
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self::with_init(in_features, out_features, WeightInit::default(), rng)
    }

    /// Creates a dense layer with an explicit weight initializer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_init<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        init: WeightInit,
        rng: &mut R,
    ) -> Self {
        assert!(in_features > 0 && out_features > 0, "dense dims must be positive");
        Dense {
            weight: init.sample(rng, &[in_features, out_features], in_features, out_features),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[in_features, out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Immutable access to the weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable access to the bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 2, "dense expects [n, d] input, got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_features(),
            "dense input width {} != {}",
            input.shape()[1],
            self.in_features()
        );
        self.cached_input = Some(input.clone());
        input.matmul(&self.weight).add(&self.bias)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("dense backward called before forward");
        assert_eq!(
            grad_output.shape(),
            &[input.shape()[0], self.out_features()],
            "dense backward shape mismatch"
        );
        // dW += xᵀ g, db += Σ_batch g, dx = g Wᵀ
        self.grad_weight.add_assign(&input.matmul_tn(grad_output));
        self.grad_bias.add_assign(&grad_output.sum_axis(0));
        grad_output.matmul_nt(&self.weight)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef { value: &mut self.weight, grad: &mut self.grad_weight },
            ParamRef { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn state(&self) -> Vec<(String, Tensor)> {
        vec![("weight".into(), self.weight.clone()), ("bias".into(), self.bias.clone())]
    }

    fn load_state(&mut self, state: &[(String, Tensor)]) {
        let w = expect_state(state, "weight");
        let b = expect_state(state, "bias");
        assert_eq!(w.shape(), self.weight.shape(), "dense weight shape mismatch on load");
        assert_eq!(b.shape(), self.bias.shape(), "dense bias shape mismatch on load");
        self.weight = w;
        self.bias = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(7);
        Dense::new(3, 2, &mut rng)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer();
        let y = l.forward(&Tensor::zeros(&[5, 3]), Mode::Eval);
        assert_eq!(y.shape(), &[5, 2]);
        // zero input → output equals bias (zero)
        assert_eq!(y.sum(), 0.0);
    }

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Dense::with_init(2, 2, WeightInit::Constant(1.0), &mut rng);
        let y = l.forward(&Tensor::from_vec(vec![1.0, 2.0], &[1, 2]), Mode::Eval);
        assert_eq!(y.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn backward_accumulates_and_returns_input_grad() {
        let mut l = layer();
        let x = Tensor::ones(&[2, 3]);
        let _ = l.forward(&x, Mode::Train);
        let g = Tensor::ones(&[2, 2]);
        let gx = l.backward(&g);
        assert_eq!(gx.shape(), &[2, 3]);
        // db = sum over batch of g = [2, 2]
        assert_eq!(l.grad_bias.as_slice(), &[2.0, 2.0]);
        // second backward accumulates
        let _ = l.forward(&x, Mode::Train);
        let _ = l.backward(&g);
        assert_eq!(l.grad_bias.as_slice(), &[4.0, 4.0]);
        l.zero_grad();
        assert_eq!(l.grad_bias.sum(), 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        crate::testutil::check_layer_gradients(&mut layer(), &[4, 3], 1e-2, 0xBEEF);
    }

    #[test]
    fn params_order_is_stable() {
        let mut l = layer();
        let p = l.params();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].value.shape(), &[3, 2]);
        assert_eq!(p[1].value.shape(), &[2]);
        assert_eq!(l.param_count(), 8);
    }

    #[test]
    fn state_roundtrip() {
        let mut a = layer();
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = Dense::new(3, 2, &mut rng);
        b.load_state(&a.state());
        let x = Tensor::rand_uniform(&mut rng, &[2, 3], -1.0, 1.0);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn forward_validates_width() {
        layer().forward(&Tensor::zeros(&[1, 4]), Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        layer().backward(&Tensor::zeros(&[1, 2]));
    }
}
