//! The [`Sequential`] container.

use crate::layer::{Layer, Mode, ParamRef};
use simpadv_tensor::Tensor;

/// A feed-forward chain of layers.
///
/// `forward` threads the input through every layer in order; `backward`
/// threads the loss gradient through every layer in reverse, accumulating
/// parameter gradients and returning ∂loss/∂input — the quantity
/// adversarial attacks consume.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use simpadv_nn::{Dense, Layer, Mode, Relu, Sequential};
/// use simpadv_tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new(vec![
///     Box::new(Dense::new(8, 16, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(16, 2, &mut rng)),
/// ]);
/// let y = net.forward(&Tensor::zeros(&[3, 8]), Mode::Eval);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Sequential {
    /// Deep-copies every layer via [`Layer::clone_box`].
    fn clone(&self) -> Self {
        Sequential { layers: self.layers.iter().map(|l| l.clone_box()).collect() }
    }
}

impl Sequential {
    /// Creates a container from an ordered layer list.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty container; add layers with [`Sequential::push`].
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer names, in order (useful for debugging and reports).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl Layer for Sequential {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn state(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            for (k, t) in layer.state() {
                out.push((format!("{i}.{k}"), t));
            }
        }
        out
    }

    fn load_state(&mut self, state: &[(String, Tensor)]) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let prefix = format!("{i}.");
            let sub: Vec<(String, Tensor)> = state
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .map(|(k, t)| (k[prefix.len()..].to_string(), t.clone()))
                .collect();
            if !sub.is_empty() {
                layer.load_state(&sub);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::testutil::check_layer_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 3, &mut rng)),
        ])
    }

    #[test]
    fn forward_chains_layers() {
        let mut net = mlp(0);
        let y = net.forward(&Tensor::zeros(&[2, 4]), Mode::Eval);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(net.layer_names(), vec!["dense", "relu", "dense"]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn gradcheck_full_network() {
        check_layer_gradients(&mut mlp(1), &[3, 4], 2e-2, 31);
    }

    #[test]
    fn params_flattened_in_order() {
        let mut net = mlp(0);
        let p = net.params();
        assert_eq!(p.len(), 4); // two dense layers × (weight, bias)
        assert_eq!(p[0].value.shape(), &[4, 8]);
        assert_eq!(p[3].value.shape(), &[3]);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut net = mlp(0);
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x, Mode::Train);
        let _ = net.backward(&Tensor::ones(y.shape()));
        assert!(net.params().iter().any(|p| p.grad.norm_linf() > 0.0));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad.norm_linf() == 0.0));
    }

    #[test]
    fn state_dict_roundtrip() {
        let mut a = mlp(0);
        let mut b = mlp(99);
        b.load_state(&a.state());
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::rand_uniform(&mut rng, &[2, 4], -1.0, 1.0);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
    }

    #[test]
    fn push_builds_incrementally() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::empty();
        assert!(net.is_empty());
        net.push(Box::new(Dense::new(2, 2, &mut rng)));
        net.push(Box::new(Relu::new()));
        assert_eq!(net.len(), 2);
        let y = net.forward(&Tensor::zeros(&[1, 2]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 2]);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::empty();
        let x = Tensor::arange(4).reshape(&[2, 2]);
        assert_eq!(net.forward(&x, Mode::Eval), x);
        assert_eq!(net.backward(&x), x);
    }
}
