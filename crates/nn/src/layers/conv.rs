//! 2-D convolution via `im2col` lowering.

use crate::init::WeightInit;
use crate::layer::{expect_state, Layer, Mode, ParamRef};
use rand::Rng;
use simpadv_tensor::{col2im, im2col, Conv2dGeometry, Tensor};

/// A 2-D convolution layer over `[n, c_in, h, w]` inputs.
///
/// The weight is stored flattened as `[c_out, c_in * k_h * k_w]` so the
/// forward pass is a single matrix multiplication against the `im2col`
/// patch matrix; the backward pass reuses the cached patches.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use simpadv_nn::{Conv2d, Layer, Mode};
/// use simpadv_tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // 1 input channel, 4 output channels, 3x3 kernel, stride 1, padding 1
/// let mut conv = Conv2d::new(1, 4, 3, 1, 1, 28, 28, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 1, 28, 28]), Mode::Eval);
/// assert_eq!(y.shape(), &[2, 4, 28, 28]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor, // [c_out, c_in*kh*kw]
    bias: Tensor,   // [c_out]
    grad_weight: Tensor,
    grad_bias: Tensor,
    c_in: usize,
    c_out: usize,
    geom: Conv2dGeometry,
    cached_cols: Option<Tensor>,
    cached_batch: usize,
}

impl Conv2d {
    /// Creates a square-kernel convolution with He-uniform weights.
    ///
    /// `in_h`/`in_w` fix the expected input spatial size (the networks in
    /// this project operate on fixed-size images, which lets the layer
    /// validate shapes early and precompute its geometry).
    ///
    /// # Panics
    ///
    /// Panics on zero channel counts or a kernel that does not fit.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut R,
    ) -> Self {
        assert!(c_in > 0 && c_out > 0, "conv channels must be positive");
        let geom = Conv2dGeometry::new(in_h, in_w, kernel, kernel, stride, padding);
        let fan_in = c_in * kernel * kernel;
        let fan_out = c_out * kernel * kernel;
        Conv2d {
            weight: WeightInit::default().sample(rng, &[c_out, fan_in], fan_in, fan_out),
            bias: Tensor::zeros(&[c_out]),
            grad_weight: Tensor::zeros(&[c_out, fan_in]),
            grad_bias: Tensor::zeros(&[c_out]),
            c_in,
            c_out,
            geom,
            cached_cols: None,
            cached_batch: 0,
        }
    }

    /// Output spatial size `(out_h, out_w)`.
    pub fn output_size(&self) -> (usize, usize) {
        (self.geom.out_h(), self.geom.out_w())
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.c_out
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "conv expects [n, c, h, w], got {:?}", input.shape());
        assert_eq!(input.shape()[1], self.c_in, "conv channel mismatch");
        let n = input.shape()[0];
        let cols = im2col(input, self.c_in, &self.geom); // [n*oh*ow, cin*k*k]
        let y_cols = cols.matmul_nt(&self.weight).add(&self.bias); // [n*oh*ow, c_out]
        self.cached_cols = Some(cols);
        self.cached_batch = n;
        let (oh, ow) = (self.geom.out_h(), self.geom.out_w());
        // [n, oh, ow, c_out] -> [n, c_out, oh, ow]
        y_cols.reshape(&[n, oh, ow, self.c_out]).permute(&[0, 3, 1, 2])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cols = self.cached_cols.as_ref().expect("conv backward before forward");
        let n = self.cached_batch;
        let (oh, ow) = (self.geom.out_h(), self.geom.out_w());
        assert_eq!(grad_output.shape(), &[n, self.c_out, oh, ow], "conv backward shape mismatch");
        // [n, c_out, oh, ow] -> [n*oh*ow, c_out]
        let g_cols = grad_output.permute(&[0, 2, 3, 1]).reshape(&[n * oh * ow, self.c_out]);
        // dW += g_colsᵀ @ cols, db += Σ g_cols
        self.grad_weight.add_assign(&g_cols.matmul_tn(cols));
        self.grad_bias.add_assign(&g_cols.sum_axis(0));
        // d_cols = g_cols @ W, then scatter back to image space
        let d_cols = g_cols.matmul(&self.weight);
        col2im(&d_cols, n, self.c_in, &self.geom)
    }

    fn params(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef { value: &mut self.weight, grad: &mut self.grad_weight },
            ParamRef { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn state(&self) -> Vec<(String, Tensor)> {
        vec![("weight".into(), self.weight.clone()), ("bias".into(), self.bias.clone())]
    }

    fn load_state(&mut self, state: &[(String, Tensor)]) {
        let w = expect_state(state, "weight");
        let b = expect_state(state, "bias");
        assert_eq!(w.shape(), self.weight.shape(), "conv weight shape mismatch on load");
        assert_eq!(b.shape(), self.bias.shape(), "conv bias shape mismatch on load");
        self.weight = w;
        self.bias = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 8, 8, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[4, 2, 8, 8]), Mode::Eval);
        assert_eq!(y.shape(), &[4, 3, 8, 8]);
        assert_eq!(conv.output_size(), (8, 8));
        assert_eq!(conv.out_channels(), 3);
    }

    #[test]
    fn stride_reduces_resolution() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 2, 2, 2, 0, 8, 8, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[1, 1, 8, 8]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn averaging_kernel_computes_local_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 3, 3, &mut rng);
        // set kernel to 1/4 everywhere, bias 0
        conv.weight.fill(0.25);
        conv.bias.fill(0.0);
        let x = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let y = conv.forward(&x, Mode::Eval);
        // top-left 2x2 block mean = (0+1+3+4)/4
        assert!((y.at(&[0, 0, 0, 0]) - 2.0).abs() < 1e-6);
        assert!((y.at(&[0, 0, 1, 1]) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck_with_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, 4, 4, &mut rng);
        check_layer_gradients(&mut conv, &[2, 2, 4, 4], 2e-2, 0xC0FFEE);
    }

    #[test]
    fn gradcheck_with_stride() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 2, 2, 2, 0, 4, 4, &mut rng);
        check_layer_gradients(&mut conv, &[2, 1, 4, 4], 2e-2, 0xFACE);
    }

    #[test]
    fn state_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Conv2d::new(1, 2, 3, 1, 1, 5, 5, &mut rng);
        let mut b = Conv2d::new(1, 2, 3, 1, 1, 5, 5, &mut rng);
        b.load_state(&a.state());
        let x = Tensor::rand_uniform(&mut rng, &[1, 1, 5, 5], -1.0, 1.0);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn forward_validates_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        Conv2d::new(2, 2, 3, 1, 1, 4, 4, &mut rng)
            .forward(&Tensor::zeros(&[1, 3, 4, 4]), Mode::Eval);
    }
}
