//! Spatial pooling layers.

use crate::layer::{Layer, Mode};
use simpadv_tensor::Tensor;

/// Max pooling over non-overlapping (or strided) square windows of a
/// `[n, c, h, w]` tensor.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cached_argmax: Option<Vec<usize>>, // flat source index per output element
    cached_in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with `kernel`×`kernel` windows moved by
    /// `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "pool kernel and stride must be positive");
        MaxPool2d { kernel, stride, cached_argmax: None, cached_in_shape: Vec::new() }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(h >= self.kernel && w >= self.kernel, "pool window larger than input");
        ((h - self.kernel) / self.stride + 1, (w - self.kernel) / self.stride + 1)
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "maxpool expects [n, c, h, w], got {:?}", input.shape());
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut arg = vec![0usize; n * c * oh * ow];
        let data = input.as_slice();
        for b in 0..n {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let dst = ((b * c + ch) * oh + oy) * ow + ox;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let src =
                                    plane + (oy * self.stride + ky) * w + ox * self.stride + kx;
                                if data[src] > out[dst] {
                                    out[dst] = data[src];
                                    arg[dst] = src;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cached_argmax = Some(arg);
        self.cached_in_shape = input.shape().to_vec();
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let arg = self.cached_argmax.as_ref().expect("maxpool backward before forward");
        assert_eq!(grad_output.len(), arg.len(), "maxpool backward shape mismatch");
        let mut gin = Tensor::zeros(&self.cached_in_shape);
        let gslice = gin.as_mut_slice();
        for (dst, &src) in arg.iter().enumerate() {
            gslice[src] += grad_output.as_slice()[dst];
        }
        gin
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Average pooling over square windows of a `[n, c, h, w]` tensor.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_in_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "pool kernel and stride must be positive");
        AvgPool2d { kernel, stride, cached_in_shape: Vec::new() }
    }
}

impl Layer for AvgPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "avgpool expects [n, c, h, w], got {:?}", input.shape());
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert!(h >= self.kernel && w >= self.kernel, "pool window larger than input");
        let (oh, ow) = ((h - self.kernel) / self.stride + 1, (w - self.kernel) / self.stride + 1);
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = vec![0.0f32; n * c * oh * ow];
        let data = input.as_slice();
        for b in 0..n {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc += data
                                    [plane + (oy * self.stride + ky) * w + ox * self.stride + kx];
                            }
                        }
                        out[((b * c + ch) * oh + oy) * ow + ox] = acc * norm;
                    }
                }
            }
        }
        self.cached_in_shape = input.shape().to_vec();
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.cached_in_shape.is_empty(), "avgpool backward before forward");
        let (n, c, h, w) = (
            self.cached_in_shape[0],
            self.cached_in_shape[1],
            self.cached_in_shape[2],
            self.cached_in_shape[3],
        );
        let (oh, ow) = ((h - self.kernel) / self.stride + 1, (w - self.kernel) / self.stride + 1);
        assert_eq!(grad_output.shape(), &[n, c, oh, ow], "avgpool backward shape mismatch");
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut gin = Tensor::zeros(&self.cached_in_shape);
        let gslice = gin.as_mut_slice();
        let g = grad_output.as_slice();
        for b in 0..n {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g[((b * c + ch) * oh + oy) * ow + ox] * norm;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                gslice[plane
                                    + (oy * self.stride + ky) * w
                                    + ox * self.stride
                                    + kx] += gv;
                            }
                        }
                    }
                }
            }
        }
        gin
    }

    fn name(&self) -> &'static str {
        "avgpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_layer_gradients;

    #[test]
    fn maxpool_forward_values() {
        let mut l = MaxPool2d::new(2, 2);
        let x = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut l = MaxPool2d::new(2, 2);
        let x = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let _ = l.forward(&x, Mode::Eval);
        let g = l.backward(&Tensor::ones(&[1, 1, 2, 2]));
        // gradient lands only on the 4 max positions
        assert_eq!(g.sum(), 4.0);
        assert_eq!(g.at(&[0, 0, 1, 1]), 1.0); // value 5 was a window max
        assert_eq!(g.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn maxpool_gradcheck() {
        // well-separated values keep finite differences away from argmax
        // switches
        let x = well_separated(&[2, 2, 4, 4], 0x51EE7);
        crate::testutil::check_layer_gradients_with_input(
            &mut MaxPool2d::new(2, 2),
            &x,
            1e-2,
            7,
            Mode::Train,
        );
    }

    /// A tensor whose entries are a shuffled arithmetic progression with
    /// gap 0.1 — far larger than the finite-difference step.
    fn well_separated(shape: &[usize], seed: u64) -> Tensor {
        use rand::{rngs::StdRng, SeedableRng};
        let len: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let order = simpadv_tensor::shuffled_indices(&mut rng, len);
        let data: Vec<f32> = order.iter().map(|&i| i as f32 * 0.1 - (len as f32) * 0.05).collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn avgpool_forward_values() {
        let mut l = AvgPool2d::new(2, 2);
        let x = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avgpool_gradcheck() {
        check_layer_gradients(&mut AvgPool2d::new(2, 2), &[2, 1, 4, 4], 1e-2, 8);
    }

    #[test]
    fn overlapping_windows_supported() {
        let mut l = MaxPool2d::new(2, 1);
        let y = l.forward(&Tensor::arange(9).reshape(&[1, 1, 3, 3]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 5.0, 7.0, 8.0]);
        let x = well_separated(&[1, 1, 4, 4], 0xABCD);
        crate::testutil::check_layer_gradients_with_input(
            &mut MaxPool2d::new(2, 1),
            &x,
            1e-2,
            9,
            Mode::Train,
        );
    }

    #[test]
    #[should_panic(expected = "kernel and stride")]
    fn zero_kernel_rejected() {
        MaxPool2d::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_window_rejected() {
        MaxPool2d::new(5, 1).forward(&Tensor::zeros(&[1, 1, 3, 3]), Mode::Eval);
    }
}
