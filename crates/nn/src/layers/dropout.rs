//! Inverted dropout.

use crate::layer::{Layer, Mode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simpadv_tensor::Tensor;

/// Inverted dropout: during training, zeroes each activation independently
/// with probability `p` and scales survivors by `1/(1-p)` so the expected
/// activation is unchanged; during evaluation it is the identity.
///
/// The layer owns a seeded RNG, so a training run using dropout is exactly
/// reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a private RNG
    /// seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability {p} not in [0, 1)");
        Dropout { p, rng: StdRng::seed_from_u64(seed), cached_mask: None }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval => {
                self.cached_mask = None;
                input.clone()
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask_data: Vec<f32> = (0..input.len())
                    .map(|_| if self.rng.random::<f32>() < keep { scale } else { 0.0 })
                    .collect();
                let mask = Tensor::from_vec(mask_data, input.shape());
                let out = input.mul(&mask);
                self.cached_mask = Some(mask);
                out
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.cached_mask {
            Some(mask) => grad_output.mul(mask),
            None => grad_output.clone(), // eval-mode identity
        }
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut l = Dropout::new(0.5, 0);
        let x = Tensor::arange(10);
        assert_eq!(l.forward(&x, Mode::Eval), x);
        assert_eq!(l.backward(&x), x);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut l = Dropout::new(0.3, 1);
        let x = Tensor::ones(&[10_000]);
        let y = l.forward(&x, Mode::Train);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped fraction {frac}");
        // survivors are scaled by 1/(1-p)
        let survivor = y.as_slice().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.7).abs() < 1e-6);
    }

    #[test]
    fn expected_value_preserved() {
        let mut l = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[50_000]);
        let y = l.forward(&x, Mode::Train);
        assert!((y.mean() - 1.0).abs() < 0.02);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut l = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[100]);
        let y = l.forward(&x, Mode::Train);
        let g = l.backward(&Tensor::ones(&[100]));
        // gradient zero exactly where output zero
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = Dropout::new(0.5, 42);
        let mut b = Dropout::new(0.5, 42);
        let x = Tensor::ones(&[64]);
        assert_eq!(a.forward(&x, Mode::Train), b.forward(&x, Mode::Train));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_p_of_one() {
        Dropout::new(1.0, 0);
    }
}
