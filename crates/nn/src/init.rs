//! Weight initialization schemes.

use rand::Rng;
use simpadv_tensor::Tensor;

/// A weight-initialization scheme.
///
/// The fan-in/fan-out arguments are derived by the layer that owns the
/// weight (for `Dense`, the input and output widths; for `Conv2d`, the
/// receptive-field sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WeightInit {
    /// All zeros (only sensible for biases).
    Zeros,
    /// A constant value.
    Constant(f32),
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Glorot/Xavier normal: `N(0, 2 / (fan_in + fan_out))`.
    XavierNormal,
    /// He/Kaiming uniform (for ReLU nets): `U(-a, a)`, `a = sqrt(6 / fan_in)`.
    HeUniform,
    /// He/Kaiming normal (for ReLU nets): `N(0, 2 / fan_in)`.
    HeNormal,
    /// LeCun normal: `N(0, 1 / fan_in)`.
    LecunNormal,
}

impl Default for WeightInit {
    /// [`WeightInit::HeUniform`] — the standard choice for the ReLU networks
    /// used throughout this project.
    fn default() -> Self {
        WeightInit::HeUniform
    }
}

impl WeightInit {
    /// Samples a tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` or `fan_out` is zero for a scheme that divides by
    /// them.
    pub fn sample<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
    ) -> Tensor {
        match self {
            WeightInit::Zeros => Tensor::zeros(shape),
            WeightInit::Constant(c) => Tensor::full(shape, c),
            WeightInit::XavierUniform => {
                assert!(fan_in + fan_out > 0, "xavier init needs nonzero fans");
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::rand_uniform(rng, shape, -a, a)
            }
            WeightInit::XavierNormal => {
                assert!(fan_in + fan_out > 0, "xavier init needs nonzero fans");
                let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::rand_normal(rng, shape, 0.0, std)
            }
            WeightInit::HeUniform => {
                assert!(fan_in > 0, "he init needs nonzero fan_in");
                let a = (6.0 / fan_in as f32).sqrt();
                Tensor::rand_uniform(rng, shape, -a, a)
            }
            WeightInit::HeNormal => {
                assert!(fan_in > 0, "he init needs nonzero fan_in");
                let std = (2.0 / fan_in as f32).sqrt();
                Tensor::rand_normal(rng, shape, 0.0, std)
            }
            WeightInit::LecunNormal => {
                assert!(fan_in > 0, "lecun init needs nonzero fan_in");
                let std = (1.0 / fan_in as f32).sqrt();
                Tensor::rand_normal(rng, shape, 0.0, std)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(WeightInit::Zeros.sample(&mut rng, &[3], 1, 1).sum(), 0.0);
        assert_eq!(WeightInit::Constant(2.0).sample(&mut rng, &[3], 1, 1).sum(), 6.0);
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = WeightInit::XavierUniform.sample(&mut rng, &[1000], 50, 50);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.norm_linf() <= a);
        assert!(t.norm_linf() > 0.5 * a, "samples should spread across the interval");
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = WeightInit::HeNormal.sample(&mut rng, &[20_000], 100, 10);
        let std = t.std_dev();
        let expect = (2.0f32 / 100.0).sqrt();
        assert!((std - expect).abs() < 0.01, "std {std} vs {expect}");
    }

    #[test]
    fn lecun_normal_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = WeightInit::LecunNormal.sample(&mut rng, &[20_000], 400, 10);
        assert!((t.std_dev() - 0.05).abs() < 0.005);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = WeightInit::HeUniform.sample(&mut r1, &[16], 4, 4);
        let b = WeightInit::HeUniform.sample(&mut r2, &[16], 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fan_in")]
    fn he_rejects_zero_fan() {
        let mut rng = StdRng::seed_from_u64(0);
        WeightInit::HeUniform.sample(&mut rng, &[1], 0, 1);
    }

    #[test]
    fn default_is_he_uniform() {
        assert_eq!(WeightInit::default(), WeightInit::HeUniform);
    }
}
