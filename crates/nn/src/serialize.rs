//! Model persistence: JSON state dictionaries.
//!
//! A state dictionary is the flat `name -> tensor` map produced by
//! [`crate::Layer::state`]. JSON keeps checkpoints human-auditable, which
//! matters more than compactness at this project's model sizes (tens of
//! thousands of parameters).

use serde::{Deserialize, Serialize};
use simpadv_tensor::Tensor;
use std::io::{Read, Write};

/// A serializable snapshot of a network's tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    /// Named tensors in layer order.
    pub entries: Vec<(String, Tensor)>,
}

impl StateDict {
    /// Captures the state of a layer (usually a
    /// [`crate::Sequential`]).
    pub fn capture(layer: &dyn crate::Layer) -> Self {
        StateDict { entries: layer.state() }
    }

    /// Restores this state into a layer.
    ///
    /// # Panics
    ///
    /// Panics if entries are missing or shapes disagree (see
    /// [`crate::Layer::load_state`]).
    pub fn restore(&self, layer: &mut dyn crate::Layer) {
        layer.load_state(&self.entries);
    }
}

/// Writes a layer's state as JSON.
///
/// # Errors
///
/// Returns any underlying I/O or serialization error.
pub fn save_state_dict_json<W: Write>(
    layer: &dyn crate::Layer,
    writer: W,
) -> Result<(), Box<dyn std::error::Error>> {
    serde_json::to_writer(writer, &StateDict::capture(layer))?;
    Ok(())
}

/// Reads a JSON state dictionary and loads it into a layer.
///
/// # Errors
///
/// Returns any underlying I/O or deserialization error.
///
/// # Panics
///
/// Panics if the dictionary is incompatible with the layer (missing entries
/// or shape mismatches).
pub fn load_state_dict_json<R: Read>(
    layer: &mut dyn crate::Layer,
    reader: R,
) -> Result<(), Box<dyn std::error::Error>> {
    let dict: StateDict = serde_json::from_reader(reader)?;
    dict.restore(layer);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm1d, Dense, Relu, Sequential};
    use crate::{Layer, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simpadv_tensor::Tensor;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(3, 8, &mut rng)),
            Box::new(BatchNorm1d::new(8, 0.1)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ])
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let mut a = net(1);
        // give batch-norm non-trivial running stats
        let mut rng = StdRng::seed_from_u64(9);
        let warm = Tensor::rand_uniform(&mut rng, &[32, 3], -2.0, 2.0);
        let _ = a.forward(&warm, Mode::Train);

        let mut buf = Vec::new();
        save_state_dict_json(&a, &mut buf).unwrap();
        let mut b = net(2);
        load_state_dict_json(&mut b, buf.as_slice()).unwrap();

        let probe = Tensor::rand_uniform(&mut rng, &[5, 3], -1.0, 1.0);
        assert_eq!(a.forward(&probe, Mode::Eval), b.forward(&probe, Mode::Eval));
    }

    #[test]
    fn state_dict_capture_restore() {
        let a = net(3);
        let dict = StateDict::capture(&a);
        // dense(2) + batchnorm(4) + dense(2) named tensors
        assert_eq!(dict.entries.len(), 8);
        let mut b = net(4);
        dict.restore(&mut b);
        assert_eq!(StateDict::capture(&b), dict);
    }

    #[test]
    fn corrupt_json_is_an_error() {
        let mut n = net(5);
        let res = load_state_dict_json(&mut n, &b"not json"[..]);
        assert!(res.is_err());
    }
}
