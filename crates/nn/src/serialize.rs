//! Model persistence: JSON state dictionaries.
//!
//! A state dictionary is the flat `name -> tensor` map produced by
//! [`crate::Layer::state`]. JSON keeps checkpoints human-auditable, which
//! matters more than compactness at this project's model sizes (tens of
//! thousands of parameters).

use serde::{Deserialize, Serialize};
use simpadv_resilience::PersistError;
use simpadv_tensor::Tensor;
use std::io::{Read, Write};

/// A serializable snapshot of a network's tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    /// Named tensors in layer order.
    pub entries: Vec<(String, Tensor)>,
}

impl StateDict {
    /// Captures the state of a layer (usually a
    /// [`crate::Sequential`]).
    pub fn capture(layer: &dyn crate::Layer) -> Self {
        StateDict { entries: layer.state() }
    }

    /// Restores this state into a layer.
    ///
    /// # Panics
    ///
    /// Panics if entries are missing or shapes disagree (see
    /// [`crate::Layer::load_state`]).
    pub fn restore(&self, layer: &mut dyn crate::Layer) {
        layer.load_state(&self.entries);
    }

    /// Rejects dictionaries containing NaN or infinite values.
    ///
    /// Persisting a diverged model would poison every later resume, and
    /// JSON renders non-finite floats as `null` (unreadable on load), so
    /// both the save and the restore path call this.
    ///
    /// # Errors
    ///
    /// [`PersistError::NonFinite`] naming the first offending entry.
    pub fn validate_finite(&self) -> Result<(), PersistError> {
        for (name, tensor) in &self.entries {
            if tensor.as_slice().iter().any(|v| !v.is_finite()) {
                return Err(PersistError::NonFinite { name: name.clone() });
            }
        }
        Ok(())
    }
}

/// Writes a layer's state as JSON.
///
/// # Errors
///
/// [`PersistError::NonFinite`] when the state holds NaN/Inf,
/// [`PersistError::Encode`] on serialization failure (which for the JSON
/// backend always surfaces as an IO error from the writer).
pub fn save_state_dict_json<W: Write>(
    layer: &dyn crate::Layer,
    writer: W,
) -> Result<(), PersistError> {
    let dict = StateDict::capture(layer);
    dict.validate_finite()?;
    serde_json::to_writer(writer, &dict).map_err(|e| PersistError::Encode(e.to_string()))
}

/// Reads a JSON state dictionary and loads it into a layer.
///
/// # Errors
///
/// [`PersistError::Decode`] when the stream is not a valid dictionary,
/// [`PersistError::NonFinite`] when it parses but holds NaN/Inf.
///
/// # Panics
///
/// Panics if the dictionary is incompatible with the layer (missing entries
/// or shape mismatches).
pub fn load_state_dict_json<R: Read>(
    layer: &mut dyn crate::Layer,
    reader: R,
) -> Result<(), PersistError> {
    let dict: StateDict =
        serde_json::from_reader(reader).map_err(|e| PersistError::Decode(e.to_string()))?;
    dict.validate_finite()?;
    dict.restore(layer);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm1d, Dense, Relu, Sequential};
    use crate::{Layer, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simpadv_tensor::Tensor;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(3, 8, &mut rng)),
            Box::new(BatchNorm1d::new(8, 0.1)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ])
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let mut a = net(1);
        // give batch-norm non-trivial running stats
        let mut rng = StdRng::seed_from_u64(9);
        let warm = Tensor::rand_uniform(&mut rng, &[32, 3], -2.0, 2.0);
        let _ = a.forward(&warm, Mode::Train);

        let mut buf = Vec::new();
        save_state_dict_json(&a, &mut buf).unwrap();
        let mut b = net(2);
        load_state_dict_json(&mut b, buf.as_slice()).unwrap();

        let probe = Tensor::rand_uniform(&mut rng, &[5, 3], -1.0, 1.0);
        assert_eq!(a.forward(&probe, Mode::Eval), b.forward(&probe, Mode::Eval));
    }

    #[test]
    fn state_dict_capture_restore() {
        let a = net(3);
        let dict = StateDict::capture(&a);
        // dense(2) + batchnorm(4) + dense(2) named tensors
        assert_eq!(dict.entries.len(), 8);
        let mut b = net(4);
        dict.restore(&mut b);
        assert_eq!(StateDict::capture(&b), dict);
    }

    #[test]
    fn corrupt_json_is_an_error() {
        let mut n = net(5);
        let res = load_state_dict_json(&mut n, &b"not json"[..]);
        assert!(matches!(res, Err(PersistError::Decode(_))));
    }

    #[test]
    fn non_finite_state_is_rejected_on_save() {
        let mut a = net(6);
        let mut state = a.state();
        state[0].1.as_mut_slice()[0] = f32::NAN;
        a.load_state(&state);
        let res = save_state_dict_json(&a, Vec::new());
        assert!(matches!(res, Err(PersistError::NonFinite { .. })), "{res:?}");
    }

    #[test]
    fn validate_finite_names_the_offender() {
        let mut dict = StateDict::capture(&net(7));
        dict.entries[2].1.as_mut_slice()[0] = f32::INFINITY;
        let name = dict.entries[2].0.clone();
        match dict.validate_finite() {
            Err(PersistError::NonFinite { name: n }) => assert_eq!(n, name),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }
}
