//! The [`Layer`] trait: the contract every network building block fulfils.

use simpadv_tensor::Tensor;

/// Whether a forward pass is part of training or evaluation.
///
/// Layers with train-time stochasticity or statistics (dropout, batch norm)
/// change behaviour based on this; pure layers ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: dropout active, batch statistics collected.
    Train,
    /// Inference: deterministic, running statistics used.
    Eval,
}

/// A mutable view of one trainable parameter and its gradient accumulator.
///
/// Layers hand these out in a *stable order* so optimizers can maintain
/// per-parameter state (momentum, Adam moments) keyed by position.
#[derive(Debug)]
pub struct ParamRef<'a> {
    /// The parameter values, updated in place by the optimizer.
    pub value: &'a mut Tensor,
    /// The accumulated gradient for this parameter.
    pub grad: &'a mut Tensor,
}

/// A differentiable network building block.
///
/// The contract:
///
/// 1. `forward` consumes an input batch, caches whatever the backward pass
///    needs, and returns the output batch.
/// 2. `backward` must be called after a matching `forward`; it receives
///    ∂loss/∂output, **accumulates** ∂loss/∂parameters into the layer's
///    gradient buffers, and returns ∂loss/∂input.
/// 3. `params` exposes parameters and gradients in a stable order.
///
/// `backward` after `forward(Mode::Eval)` is permitted and must produce the
/// gradients of the *evaluation* function — attacks differentiate the
/// deterministic inference network.
///
/// Layers are `Send + Sync` (they hold plain tensors, scalars, and seeded
/// rngs) so model replicas can cross `simpadv-runtime` worker boundaries,
/// and [`Layer::clone_box`] produces those replicas from behind the trait
/// object.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Runs the layer on `input`, caching state for `backward`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Backpropagates `grad_output` (∂loss/∂output), accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward` or with a
    /// gradient whose shape does not match the last forward output.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Trainable parameters in a stable order. Defaults to none.
    fn params(&mut self) -> Vec<ParamRef<'_>> {
        Vec::new()
    }

    /// Clears accumulated parameter gradients. Defaults to a no-op.
    fn zero_grad(&mut self) {
        // layers without parameters have nothing to clear
    }

    /// A short human-readable layer name (e.g. `"dense"`).
    fn name(&self) -> &'static str;

    /// An independent deep copy of this layer behind a fresh box.
    ///
    /// Replicas carry the full layer state (parameters, buffers, rng
    /// state) and share nothing with the original; data-parallel code
    /// clones a model per worker and discards the replicas afterwards.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Number of trainable scalars in this layer.
    fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Serializable state: named tensors (parameters *and* buffers such as
    /// batch-norm running statistics). Defaults to none.
    fn state(&self) -> Vec<(String, Tensor)> {
        Vec::new()
    }

    /// Restores state saved by [`Layer::state`].
    ///
    /// # Panics
    ///
    /// Implementations may panic when a required entry is missing or has a
    /// mismatched shape.
    fn load_state(&mut self, state: &[(String, Tensor)]) {
        let _ = state;
    }
}

/// Looks up a named tensor in a state list, cloning it.
///
/// # Panics
///
/// Panics when the entry is missing — state dictionaries are produced by
/// [`Layer::state`] and must be complete.
pub(crate) fn expect_state(state: &[(String, Tensor)], key: &str) -> Tensor {
    state
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, t)| t.clone())
        .unwrap_or_else(|| panic!("state entry '{key}' missing"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Identity;
    impl Layer for Identity {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Tensor {
            input.clone()
        }
        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            grad_output.clone()
        }
        fn name(&self) -> &'static str {
            "identity"
        }
        fn clone_box(&self) -> Box<dyn Layer> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn default_impls_are_empty() {
        let mut l = Identity;
        assert!(l.params().is_empty());
        assert_eq!(l.param_count(), 0);
        assert!(l.state().is_empty());
        l.zero_grad(); // no-op
        l.load_state(&[]); // no-op
    }

    #[test]
    fn mode_is_copy_eq() {
        let m = Mode::Train;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(Mode::Train, Mode::Eval);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn expect_state_panics_on_missing() {
        expect_state(&[], "w");
    }
}
