//! Shared test helpers: finite-difference gradient checking.
//!
//! Every layer's analytic backward pass is validated against central finite
//! differences of its forward pass. The scalar objective is a fixed random
//! linear functional of the output, `L(x) = Σ w ⊙ f(x)`, whose gradient with
//! respect to the output is exactly `w`.

use crate::layer::{Layer, Mode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpadv_tensor::Tensor;

/// Samples inputs away from the origin so kinked activations (ReLU, pooling
/// ties) do not sit on their non-differentiable set.
fn sample_input(rng: &mut StdRng, shape: &[usize]) -> Tensor {
    let mag = Tensor::rand_uniform(rng, shape, 0.2, 1.0);
    let sign = Tensor::rand_uniform(rng, shape, -1.0, 1.0).sign();
    mag.mul(&sign)
}

/// Checks ∂L/∂input and ∂L/∂params of `layer` against finite differences.
///
/// # Panics
///
/// Panics (failing the test) when any analytic gradient component deviates
/// from the numeric estimate by more than `tol` (relative, with an absolute
/// floor of `tol`).
pub fn check_layer_gradients(layer: &mut dyn Layer, input_shape: &[usize], tol: f32, seed: u64) {
    check_layer_gradients_mode(layer, input_shape, tol, seed, Mode::Train);
}

/// Like [`check_layer_gradients`] but with an explicit forward [`Mode`].
pub fn check_layer_gradients_mode(
    layer: &mut dyn Layer,
    input_shape: &[usize],
    tol: f32,
    seed: u64,
    mode: Mode,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = sample_input(&mut rng, input_shape);
    check_layer_gradients_with_input(layer, &x, tol, seed, mode);
}

/// Like [`check_layer_gradients_mode`] but with a caller-chosen input —
/// needed for layers whose gradient is only piecewise smooth (max pooling),
/// where random inputs can land two window entries within the
/// finite-difference step of each other.
///
/// # Panics
///
/// Panics when an analytic gradient disagrees with its finite-difference
/// estimate beyond `tol` — this is the assertion the gradient-check tests
/// rely on.
pub fn check_layer_gradients_with_input(
    layer: &mut dyn Layer,
    x: &Tensor,
    tol: f32,
    seed: u64,
    mode: Mode,
) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    let x = x.clone();
    let y = layer.forward(&x, mode);
    let w = Tensor::rand_uniform(&mut rng, y.shape(), -1.0, 1.0);

    layer.zero_grad();
    let gx = layer.backward(&w);
    assert_eq!(gx.shape(), x.shape(), "input-gradient shape mismatch");

    let h = 5e-3f32;
    let loss = |layer: &mut dyn Layer, x: &Tensor| -> f32 {
        let y = layer.forward(x, mode);
        y.as_slice().iter().zip(w.as_slice()).map(|(&a, &b)| a * b).sum()
    };

    // --- input gradient ---
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += h;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= h;
        let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * h);
        let ana = gx.as_slice()[i];
        let denom = 1.0f32.max(num.abs()).max(ana.abs());
        assert!(
            (num - ana).abs() / denom < tol,
            "input grad[{i}]: numeric {num} vs analytic {ana}"
        );
    }

    // --- parameter gradients ---
    // Collect analytic grads first (params() borrows mutably).
    let analytic: Vec<Tensor> = layer.params().iter().map(|p| p.grad.clone()).collect();
    let n_params = analytic.len();
    for pi in 0..n_params {
        let plen = analytic[pi].len();
        for i in 0..plen {
            let orig = {
                let mut ps = layer.params();
                let v = ps[pi].value.as_mut_slice()[i];
                ps[pi].value.as_mut_slice()[i] = v + h;
                v
            };
            let lp = loss(layer, &x);
            {
                let mut ps = layer.params();
                ps[pi].value.as_mut_slice()[i] = orig - h;
            }
            let lm = loss(layer, &x);
            {
                let mut ps = layer.params();
                ps[pi].value.as_mut_slice()[i] = orig;
            }
            let num = (lp - lm) / (2.0 * h);
            let ana = analytic[pi].as_slice()[i];
            let denom = 1.0f32.max(num.abs()).max(ana.abs());
            assert!(
                (num - ana).abs() / denom < tol,
                "param {pi} grad[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }
    // Restore a consistent forward cache for any follow-up assertions.
    let _ = layer.forward(&x, mode);
}
