//! # simpadv-nn
//!
//! A layer-based neural-network library with **exact analytic backprop**,
//! built on [`simpadv_tensor`]. It is the training/inference substrate of
//! the `simpadv` reproduction of *"Using Intuition from Empirical Properties
//! to Simplify Adversarial Training Defense"* (Liu et al., 2019).
//!
//! Design highlights:
//!
//! * Every [`Layer`] caches what its backward pass needs during `forward`
//!   and returns **the gradient with respect to its input** from `backward`.
//!   Chaining backward through [`Sequential`] therefore yields ∂loss/∂input
//!   — exactly the quantity FGSM/BIM-style attacks require — at no extra
//!   cost.
//! * All randomness (init, dropout) is seeded; training runs are exactly
//!   reproducible.
//! * Optimizers operate on a flat, stable ordering of parameters exposed by
//!   [`Layer::params`], so optimizer state never aliases the network.
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use simpadv_nn::{Classifier, Dense, Relu, Sequential, Sgd, SoftmaxCrossEntropy};
//! use simpadv_tensor::Tensor;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 16, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(16, 3, &mut rng)),
//! ]);
//! let mut clf = Classifier::new(net, 3);
//! let x = Tensor::rand_uniform(&mut rng, &[8, 4], 0.0, 1.0);
//! let y = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//! let mut opt = Sgd::new(0.1);
//! let loss0 = clf.train_batch(&x, &y, &mut opt);
//! let loss1 = clf.train_batch(&x, &y, &mut opt);
//! assert!(loss1 < loss0, "training reduces the loss on a fixed batch");
//! ```

mod classifier;
mod init;
mod layer;
pub mod layers;
mod loss;
mod metrics;
mod optim;
mod schedule;
mod serialize;
#[cfg(test)]
pub(crate) mod testutil;

pub use classifier::{Classifier, GradientModel};
pub use init::WeightInit;
pub use layer::{Layer, Mode, ParamRef};
pub use layers::{
    AvgPool2d, BatchNorm1d, Conv2d, Dense, Dropout, Flatten, Gelu, LeakyRelu, MaxPool2d, Relu,
    Reshape, Sequential, Sigmoid, Softmax, Softplus, Tanh,
};
pub use loss::{log_softmax, softmax, Loss, MseLoss, SoftmaxCrossEntropy};
pub use metrics::{accuracy, accuracy_topk, confusion_matrix, ConfusionMatrix};
pub use optim::{clip_grad_norm, AdaGrad, Adam, OptimState, Optimizer, RmsProp, Sgd};
pub use schedule::{ConstantLr, CosineAnnealingLr, ExponentialDecayLr, LrSchedule, StepDecayLr};
pub use serialize::{load_state_dict_json, save_state_dict_json, StateDict};
